#!/usr/bin/env python3
"""Using the circuit substrate directly: devices, netlists, DC and AC analysis.

CAFFEINE only consumes sample tables, but the data has to come from
somewhere; the paper uses SPICE, this library ships a small analog simulator.
This example exercises that substrate on its own:

1. size a MOSFET from an operating point (the operating-point-driven
   formulation used for the OTA's design variables);
2. build and solve a single-transistor common-source amplifier at DC and
   check it against hand analysis;
3. run an AC sweep of the OTA's small-signal netlist and extract gain,
   unity-gain frequency and phase margin, comparing them with the analytic
   operating-point model.

Run with::

    python examples/circuit_simulation.py
"""

from __future__ import annotations


from repro.circuits import (
    Circuit,
    MosfetModel,
    OTA_NOMINAL_POINT,
    SymmetricalOta,
    ac_analysis,
    solve_dc,
    transfer_function,
)
from repro.circuits.ac import logspace_frequencies
from repro.circuits.performance import FrequencyResponse


def operating_point_demo() -> None:
    print("1. Operating-point-driven sizing")
    model = MosfetModel("nmos")
    op = model.from_operating_point(id=50e-6, vgs=1.0, vds=1.5)
    print(f"   NMOS @ id=50uA, vgs=1.0V, vds=1.5V -> W = {op.width_um:.2f} um, "
          f"gm = {op.gm * 1e6:.1f} uS, gds = {op.gds * 1e6:.2f} uS, "
          f"gm/gds = {op.intrinsic_gain:.1f}")


def common_source_demo() -> None:
    print("\n2. Common-source amplifier, DC operating point")
    nmos = MosfetModel("nmos")
    circuit = Circuit("common_source")
    circuit.voltage_source("vdd", "vdd", "0", dc=5.0)
    circuit.voltage_source("vin", "g", "0", dc=1.2, ac=1.0)
    circuit.resistor("rload", "vdd", "d", 20e3)
    circuit.mosfet("m1", "d", "g", "0", nmos, width_um=5.0)

    solution = solve_dc(circuit)
    device = solution.device("m1")
    print(f"   V(d) = {solution.voltage('d'):.3f} V, Id = {device.id * 1e6:.1f} uA, "
          f"region = {device.region}")
    hand_gain = device.gm * (1.0 / (1.0 / 50e3 + device.gds))
    frequencies = logspace_frequencies(10.0, 1e6, 10)
    response = transfer_function(circuit, "vin", "d", frequencies,
                                 dc_solution=solution)
    print(f"   |A| at low frequency: simulated {abs(response[0]):.2f}, "
          f"hand analysis gm*(Rload||ro) = {hand_gain:.2f}")


def ota_demo() -> None:
    print("\n3. OTA small-signal AC analysis vs analytic model")
    ota = SymmetricalOta()
    analytic = ota.performances(OTA_NOMINAL_POINT)
    circuit = ota.small_signal_circuit(OTA_NOMINAL_POINT)
    frequencies = logspace_frequencies(10.0, 1e9, 25)
    sweep = ac_analysis(circuit, frequencies)
    response = FrequencyResponse(frequencies, sweep.voltage("out"))
    print(f"   analytic : ALF = {analytic.alf_db:6.2f} dB, "
          f"fu = {analytic.fu_hz / 1e6:6.2f} MHz, PM = {analytic.pm_degrees:5.1f} deg")
    print(f"   netlist  : ALF = {response.dc_gain_db():6.2f} dB, "
          f"fu = {response.unity_gain_frequency() / 1e6:6.2f} MHz, "
          f"PM = {response.phase_margin():5.1f} deg")
    print(f"   slew rates (analytic): SRp = {analytic.srp_v_per_s / 1e6:.2f} V/us, "
          f"SRn = {analytic.srn_v_per_s / 1e6:.2f} V/us, "
          f"offset = {analytic.voffset_v * 1e3:.2f} mV")


def main() -> None:
    operating_point_demo()
    common_source_demo()
    ota_demo()


if __name__ == "__main__":
    main()
