#!/usr/bin/env python3
"""Quickstart: template-free symbolic regression with CAFFEINE.

This example builds a small synthetic dataset with a known rational ground
truth, runs CAFFEINE with a modest budget, and prints the resulting trade-off
between error and complexity.  CAFFEINE is expected to recover an expression
very close to the generating formula at the accurate end of the trade-off
while also offering simpler, slightly less accurate alternatives.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import CaffeineSettings, Dataset, run_caffeine
from repro.core.report import tradeoff_table


def make_dataset(n_samples: int, seed: int) -> Dataset:
    """Samples of ``y = 3 + 2*a/b + 0.5*c`` on a positive design region."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(0.5, 2.0, size=(n_samples, 3))
    y = 3.0 + 2.0 * X[:, 0] / X[:, 1] + 0.5 * X[:, 2]
    return Dataset(X, y, variable_names=("a", "b", "c"), target_name="y")


def main() -> None:
    train = make_dataset(n_samples=150, seed=0)
    test = make_dataset(n_samples=100, seed=1)

    settings = CaffeineSettings(
        population_size=60,
        n_generations=25,
        max_basis_functions=6,
        random_seed=7,
    )
    result = run_caffeine(train, test, settings)

    print("CAFFEINE quickstart: modeling y = 3 + 2*a/b + 0.5*c")
    print(f"  {result.n_models} models on the error/complexity trade-off "
          f"({result.runtime_seconds:.1f} s)\n")
    print(tradeoff_table(result.tradeoff, title="Trade-off (errors in %):"))

    best = result.best_model()
    print("\nMost accurate model on test data:")
    print(f"  train error {best.train_error_percent:.2f}%  "
          f"test error {best.test_error_percent:.2f}%")
    print(f"  y ~ {best.expression()}")
    print(f"  variables used: {', '.join(best.used_variables())}")


if __name__ == "__main__":
    main()
