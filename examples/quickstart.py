#!/usr/bin/env python3
"""Quickstart: template-free symbolic regression with CAFFEINE.

This example builds a small synthetic dataset with a known rational ground
truth and models it two ways:

1. through :class:`repro.SymbolicRegressor`, the sklearn-style facade
   (``fit(X, y)`` / ``predict(X)`` / ``pareto_front_``);
2. through :class:`repro.Session`, the multi-problem orchestrator, running
   two related targets over one shared column cache;
3. deployment: the fitted trade-off is frozen to a small artifact with
   :func:`repro.save_front`, loaded back as a prediction-only
   :class:`~repro.core.artifact.FrozenFront` (bit-identical predictions),
   and served over HTTP with :mod:`repro.serve` -- the same loop as
   ``python -m repro freeze`` + ``python -m repro serve``.

CAFFEINE is expected to recover an expression very close to the generating
formula at the accurate end of the trade-off while also offering simpler,
slightly less accurate alternatives.

Run with::

    python examples/quickstart.py            # the default budget (~30 s)
    python examples/quickstart.py --quick    # tiny CI-sized budget (~2 s)
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import threading
import urllib.request

import numpy as np

from repro import (CaffeineSettings, Problem, Session, SymbolicRegressor,
                   load_front)
from repro.core.report import tradeoff_table
from repro.serve import make_server


def make_data(n_samples: int, seed: int):
    """Samples of ``y = 3 + 2*a/b + 0.5*c`` on a positive design region."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(0.5, 2.0, size=(n_samples, 3))
    y = 3.0 + 2.0 * X[:, 0] / X[:, 1] + 0.5 * X[:, 2]
    return X, y


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--quick", action="store_true",
                        help="tiny budget for smoke tests (seconds)")
    args = parser.parse_args()

    X, y = make_data(n_samples=150, seed=0)
    X_test, y_test = make_data(n_samples=100, seed=1)

    if args.quick:
        estimator = SymbolicRegressor(population_size=24, n_generations=5,
                                      max_basis_functions=6, random_seed=7,
                                      feature_names=("a", "b", "c"))
    else:
        estimator = SymbolicRegressor(population_size=60, n_generations=25,
                                      max_basis_functions=6, random_seed=7,
                                      feature_names=("a", "b", "c"))

    # ------------------------------------------------------------------
    # 1. The sklearn-style facade: fit, inspect the trade-off, predict.
    # ------------------------------------------------------------------
    estimator.fit(X, y, X_test=X_test, y_test=y_test)
    result = estimator.result_

    print("CAFFEINE quickstart: modeling y = 3 + 2*a/b + 0.5*c")
    print(f"  {result.n_models} models on the error/complexity trade-off "
          f"({result.runtime_seconds:.1f} s)\n")
    print(tradeoff_table(estimator.pareto_front_,
                         title="Trade-off (errors in %):"))

    best = estimator.best_model_
    print("\nMost accurate model on test data:")
    print(f"  train error {best.train_error_percent:.2f}%  "
          f"test error {best.test_error_percent:.2f}%")
    print(f"  y ~ {estimator.expression()}")
    print(f"  variables used: {', '.join(best.used_variables())}")
    print(f"  R^2 on held-out data: {estimator.score(X_test, y_test):.4f}")

    # ------------------------------------------------------------------
    # 2. The Session orchestrator: two targets, one shared column cache.
    # ------------------------------------------------------------------
    settings = CaffeineSettings(
        population_size=estimator.population_size,
        n_generations=estimator.n_generations,
        max_basis_functions=6, random_seed=7)
    problems = [
        Problem.from_arrays(X, y, variable_names=("a", "b", "c"),
                            target_name="smooth"),
        Problem.from_arrays(X, y + 0.2 * X[:, 2] ** 2,
                            variable_names=("a", "b", "c"),
                            target_name="bowed"),
    ]
    outcome = Session(problems, settings=settings).run()
    print(f"\nSession over {len(outcome)} related targets "
          f"({outcome.runtime_seconds:.1f} s total):")
    for name, run in outcome.items():
        chosen = run.best_model()
        print(f"  {name:>7}: {run.n_models} models, best train error "
              f"{chosen.train_error_percent:.2f}%  ->  {chosen.expression()}")

    # ------------------------------------------------------------------
    # 3. Deployment: freeze the trade-off, serve it, query it over HTTP.
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "quickstart.front")
        n_frozen = estimator.save(path)   # == save_front(estimator.result_, path)
        print(f"\nFroze {n_frozen} models to a "
              f"{os.path.getsize(path)}-byte artifact")

        front = load_front(path)          # prediction-only, no engine
        assert np.array_equal(front.predict(X_test),
                              estimator.predict(X_test)), \
            "frozen predictions must be bit-identical to the live estimator"
        print("  load_front round trip: predictions bit-identical")

        # `python -m repro serve quickstart.front` runs this same server as
        # a blocking CLI; here it serves from a background thread instead so
        # the example can query itself and exit.
        server = make_server(path, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            request = urllib.request.Request(
                server.url + "/predict",
                data=json.dumps({"X": X_test[:3].tolist()}).encode(),
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request, timeout=30) as response:
                body = json.loads(response.read())
            print(f"  served /predict at {server.url}: "
                  f"{[round(p, 3) for p in body['predictions']]} "
                  f"(model: {body['model']['expression']})")
        finally:
            server.shutdown()
            server.server_close()


if __name__ == "__main__":
    main()
