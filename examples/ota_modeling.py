#!/usr/bin/env python3
"""Full paper flow: symbolic models of a CMOS OTA's performances.

This example reproduces the paper's end-to-end flow on the library's
simulation substrate:

1. sample the OTA's 13-dimensional operating-point design space with a full
   orthogonal-hypercube DOE (243 training samples at dx = 0.10, 243 testing
   samples at dx = 0.03);
2. extract the six performances (ALF, fu, PM, voffset, SRp, SRn) for every
   sample with the square-law OTA model;
3. run CAFFEINE on a chosen performance and print the error/complexity
   trade-off plus the most interesting (test-trade-off) models.

Run with::

    python examples/ota_modeling.py            # models the phase margin
    python examples/ota_modeling.py ALF        # or any other performance
"""

from __future__ import annotations

import sys

from repro.core import CaffeineSettings
from repro.core.report import models_table, tradeoff_table
from repro.experiments import generate_ota_datasets, run_caffeine_for_target


def main(target: str = "PM") -> None:
    datasets = generate_ota_datasets()
    print(datasets.summary())
    if target not in datasets.performance_names:
        raise SystemExit(f"unknown performance {target!r}; "
                         f"choose from {datasets.performance_names}")

    settings = CaffeineSettings(
        population_size=80,
        n_generations=40,
        random_seed=0,
    )
    print(f"\nRunning CAFFEINE on {target} "
          f"(population {settings.population_size}, "
          f"{settings.n_generations} generations)...")
    result = run_caffeine_for_target(datasets, target, settings)
    print(f"done in {result.runtime_seconds:.1f} s; "
          f"{result.n_models} models in the trade-off\n")

    print(tradeoff_table(result.tradeoff,
                         title=f"{target}: training-error vs complexity trade-off"))
    print()
    print(models_table(result.test_tradeoff,
                       title=f"{target}: models on the testing-error trade-off "
                             "(the most interesting ones)"))

    best = result.best_model()
    print(f"\nBest {target} model by testing error:")
    print(f"  {target} ~ {best.expression()}")
    print(f"  train {best.train_error_percent:.2f}%  "
          f"test {best.test_error_percent:.2f}%  "
          f"uses {len(best.used_variables())} of "
          f"{len(best.variable_names)} design variables")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "PM")
