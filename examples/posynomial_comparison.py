#!/usr/bin/env python3
"""CAFFEINE vs posynomial models (the paper's Figure 4 comparison).

For a selection of OTA performances this example fits the posynomial baseline
(Daems-style fixed monomial template, non-negative least squares) and runs
CAFFEINE, then compares training and testing errors.  The expected outcome,
as in the paper: the template-free CAFFEINE models predict unseen (interpolation)
data substantially better, while being far more compact.

Run with::

    python examples/posynomial_comparison.py
    python examples/posynomial_comparison.py ALF fu PM      # choose targets
"""

from __future__ import annotations

import sys

from repro.core import CaffeineSettings
from repro.experiments import generate_ota_datasets, run_figure4


def main(targets) -> None:
    datasets = generate_ota_datasets()
    settings = CaffeineSettings(population_size=80, n_generations=30, random_seed=1)

    print(f"Comparing CAFFEINE and posynomial models on: {', '.join(targets)}\n")
    comparison = run_figure4(datasets, settings, targets=targets)
    print(comparison.render())

    print("\nModel sizes and expressions:")
    for row in comparison.rows:
        caffeine = row.caffeine_model
        posynomial = row.posynomial_model
        print(f"\n[{row.target}]")
        print(f"  CAFFEINE   ({caffeine.n_bases} bases): {caffeine.expression()}")
        print(f"  posynomial ({posynomial.n_terms} monomials): "
              f"{posynomial.expression(max_terms=6)}")

    wins = comparison.caffeine_wins()
    print(f"\nCAFFEINE has the lower testing error on {len(wins)} of "
          f"{len(comparison.rows)} performances: {', '.join(wins) or 'none'}")


if __name__ == "__main__":
    selected = sys.argv[1:] or ["ALF", "PM", "SRp"]
    main(selected)
