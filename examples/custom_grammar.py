#!/usr/bin/env python3
"""Restricting the grammar: rationals, polynomials and custom operator sets.

The paper stresses that "the designer can turn off any of the rules if they
are considered unwanted or unneeded", e.g. restricting the search to
polynomials or rationals or removing hard-to-interpret functions.  This
example shows the three ways to do that with the library:

1. use one of the provided restricted function sets;
2. build a custom :class:`~repro.core.FunctionSet` directly;
3. write the grammar as text (the paper's own workflow: "the grammar was
   defined in a separate text file and parsed by the CAFFEINE system") and
   derive the function set from it.

Run with::

    python examples/custom_grammar.py
"""

from __future__ import annotations

import numpy as np

from repro import CaffeineSettings, Dataset, run_caffeine
from repro.core import (
    FunctionSet,
    default_function_set,
    function_set_from_grammar,
    grammar_text_for_function_set,
    parse_grammar,
    polynomial_function_set,
    rational_function_set,
)


def make_dataset(n_samples: int, seed: int) -> Dataset:
    """Samples of ``y = 1 + x0^2 / x1 + ln(x2)`` on a positive region."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(0.5, 3.0, size=(n_samples, 3))
    y = 1.0 + X[:, 0] ** 2 / X[:, 1] + np.log(X[:, 2])
    return Dataset(X, y, variable_names=("x0", "x1", "x2"), target_name="y")


def run_with(name: str, function_set: FunctionSet, train: Dataset,
             test: Dataset) -> None:
    settings = CaffeineSettings(
        population_size=50,
        n_generations=20,
        max_basis_functions=5,
        random_seed=11,
        function_set=function_set,
    )
    result = run_caffeine(train, test, settings)
    best = result.best_model()
    print(f"{name:>28}: train {best.train_error_percent:5.2f}%  "
          f"test {best.test_error_percent:5.2f}%   y ~ {best.expression()[:70]}")


def main() -> None:
    train = make_dataset(200, seed=0)
    test = make_dataset(120, seed=1)

    print("Ground truth: y = 1 + x0^2/x1 + ln(x2)\n")

    # 1. provided restricted sets
    run_with("full grammar", default_function_set(), train, test)
    run_with("rationals only", rational_function_set(), train, test)
    run_with("polynomials only", polynomial_function_set(), train, test)

    # 2. a hand-built custom set: logs and division, nothing else
    custom = FunctionSet(unary=("ln", "log10"), binary=("div",))
    run_with("custom (ln, log10, div)", custom, train, test)

    # 3. round-trip through grammar text, as the original tool did
    text = grammar_text_for_function_set(custom)
    print("\nGrammar text generated for the custom set:\n")
    print(text)
    grammar = parse_grammar(text)
    recovered = function_set_from_grammar(grammar)
    print(f"\nOperators recovered from the grammar text: {recovered.names()}")


if __name__ == "__main__":
    main()
