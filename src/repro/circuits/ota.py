"""High-speed CMOS OTA performance model.

This module is the reproduction's stand-in for the paper's SPICE deck.  The
circuit is a symmetrical (current-mirror) OTA with a PMOS input pair in a
0.7 um, 5 V technology driving a 10 pF load -- the same class of circuit as
the paper's Figure 2, described in the operating-point-driven formulation
with 13 design variables (drain currents and transistor drive voltages).

Six performances are produced for every design point, matching the paper:

* ``ALF``      low-frequency gain (dB)
* ``fu``       unity-gain frequency (Hz)
* ``PM``       phase margin (degrees)
* ``voffset``  input-referred offset voltage (V)
* ``SRp``      positive slew rate (V/s)
* ``SRn``      negative slew rate (V/s, negative number)

The mapping uses standard hand-analysis expressions of the symmetrical OTA
evaluated on square-law device models, so the performances have the same
structural dependencies the paper's models discover: gains proportional to
``gm1/gds``, mirror ratios ``id2/id1``, slew rates set by currents over the
load capacitance, drive-voltage ratios of matched devices, and a nearly
constant offset.  A small-signal netlist builder is provided so the analytic
expressions can be cross-validated against the MNA-based AC analysis.

Circuit topology (one half shown; the circuit is symmetrical):

* ``M1a/M1b``  PMOS input differential pair, each carrying ``id1``
* ``M5``       PMOS tail current source carrying ``2*id1``
* ``M2a/M2b``  NMOS first-stage loads / mirror inputs carrying ``id1``
* ``M6``       NMOS output mirror device carrying ``id2`` (ratio ``B=id2/id1``)
* ``M3``       PMOS mirror diode carrying ``id2``
* ``M4``       PMOS mirror output device carrying ``id2``
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.mosfet import MosfetOperatingPoint, Technology
from repro.circuits.netlist import Circuit
from repro.circuits.opformulation import OperatingPointFormulation
from repro.circuits.performance import phase_margin_from_poles

__all__ = [
    "OTA_VARIABLE_NAMES",
    "OTA_NOMINAL_POINT",
    "OTA_PERFORMANCE_NAMES",
    "OtaPerformances",
    "SymmetricalOta",
    "simulate_ota_performances",
]

#: The 13 operating-point design variables (currents in A, voltages in V).
OTA_VARIABLE_NAMES: Tuple[str, ...] = (
    "id1",   # input-pair branch current
    "id2",   # output branch current
    "vsg1",  # PMOS input pair gate drive
    "vsd1",  # PMOS input pair source-drain voltage
    "vgs2",  # NMOS first-stage load gate drive
    "vds2",  # NMOS first-stage load drain-source voltage
    "vsg3",  # PMOS mirror diode gate drive
    "vsd3",  # PMOS mirror diode source-drain voltage
    "vsg4",  # PMOS mirror output gate drive
    "vgs6",  # NMOS output mirror gate drive
    "vds6",  # NMOS output device drain-source voltage
    "vsg5",  # PMOS tail source gate drive
    "vsd5",  # PMOS tail source-drain voltage
)

#: Nominal operating point around which the paper-style DOE is generated.
OTA_NOMINAL_POINT: Dict[str, float] = {
    "id1": 10e-6,
    "id2": 40e-6,
    "vsg1": 1.00,
    "vsd1": 1.20,
    "vgs2": 1.00,
    "vds2": 1.10,
    "vsg3": 1.00,
    "vsd3": 1.10,
    "vsg4": 1.00,
    "vgs6": 1.00,
    "vds6": 2.50,
    "vsg5": 1.05,
    "vsd5": 1.00,
}

#: Names of the six modeled performances, in the paper's order.
OTA_PERFORMANCE_NAMES: Tuple[str, ...] = ("ALF", "fu", "PM", "voffset", "SRp", "SRn")


@dataclasses.dataclass(frozen=True)
class OtaPerformances:
    """The six performance values of one OTA design point."""

    alf_db: float
    fu_hz: float
    pm_degrees: float
    voffset_v: float
    srp_v_per_s: float
    srn_v_per_s: float

    def as_dict(self) -> Dict[str, float]:
        """Map performance names (paper notation) to values."""
        return {
            "ALF": self.alf_db,
            "fu": self.fu_hz,
            "PM": self.pm_degrees,
            "voffset": self.voffset_v,
            "SRp": self.srp_v_per_s,
            "SRn": self.srn_v_per_s,
        }

    def __getitem__(self, name: str) -> float:
        return self.as_dict()[name]


class SymmetricalOta:
    """Symmetrical (current-mirror) OTA in the operating-point formulation."""

    def __init__(self, technology: Optional[Technology] = None,
                 load_capacitance: float = 10e-12,
                 mismatch_offset_v: float = -2.0e-3) -> None:
        self.technology = technology if technology is not None else Technology()
        if load_capacitance <= 0:
            raise ValueError("load capacitance must be positive")
        self.load_capacitance = load_capacitance
        #: constant (random-mismatch) component of the input-referred offset;
        #: the paper's voffset model is dominated by such a constant (-2 mV).
        self.mismatch_offset_v = mismatch_offset_v
        self._formulation = self._build_formulation()

    # ------------------------------------------------------------------
    def _build_formulation(self) -> OperatingPointFormulation:
        vdd = self.technology.vdd
        formulation = OperatingPointFormulation(self.technology)
        formulation.add_device("M1", "pmos", id="id1", vgs="vsg1", vds="vsd1",
                               multiplicity=2)
        formulation.add_device("M2", "nmos", id="id1", vgs="vgs2", vds="vds2",
                               multiplicity=2)
        formulation.add_device("M3", "pmos", id="id2", vgs="vsg3", vds="vsd3")
        formulation.add_device("M4", "pmos", id="id2", vgs="vsg4",
                               vds=lambda p: max(vdd - p["vds6"], 0.2))
        formulation.add_device("M6", "nmos", id="id2", vgs="vgs6", vds="vds6")
        formulation.add_device("M5", "pmos", id=lambda p: 2.0 * p["id1"],
                               vgs="vsg5", vds="vsd5")
        return formulation

    @property
    def formulation(self) -> OperatingPointFormulation:
        """The underlying operating-point formulation (device table)."""
        return self._formulation

    @property
    def variable_names(self) -> Tuple[str, ...]:
        return OTA_VARIABLE_NAMES

    @property
    def nominal_point(self) -> Dict[str, float]:
        return dict(OTA_NOMINAL_POINT)

    # ------------------------------------------------------------------
    def validate_point(self, point: Mapping[str, float]) -> Dict[str, float]:
        """Check a design point and return it as a plain dict.

        Raises ``ValueError`` for missing variables, non-positive currents or
        gate drives below threshold (the analogue of a non-converging SPICE
        run in the paper's flow).
        """
        resolved: Dict[str, float] = {}
        for name in OTA_VARIABLE_NAMES:
            if name not in point:
                raise ValueError(f"design point is missing variable {name!r}")
            value = float(point[name])
            if not math.isfinite(value):
                raise ValueError(f"variable {name!r} is not finite")
            if value <= 0.0:
                raise ValueError(f"variable {name!r} must be positive, got {value}")
            resolved[name] = value
        return resolved

    def device_operating_points(self, point: Mapping[str, float]
                                ) -> Dict[str, MosfetOperatingPoint]:
        """Square-law operating points of all OTA devices at ``point``."""
        return self._formulation.operating_points(self.validate_point(point))

    # ------------------------------------------------------------------
    def performances(self, point: Mapping[str, float]) -> OtaPerformances:
        """Evaluate the six performances at one design point."""
        resolved = self.validate_point(point)
        devices = self._formulation.operating_points(resolved)
        m1 = devices["M1"]
        m2 = devices["M2"]
        m3 = devices["M3"]
        m4 = devices["M4"]
        m6 = devices["M6"]

        mirror_ratio = resolved["id2"] / resolved["id1"]

        # Output node: drains of M4 (PMOS mirror output) and M6 (NMOS output).
        gout = m4.gds + m6.gds
        cout = (self.load_capacitance + m4.cdb + m6.cdb + m4.cgd + m6.cgd)

        # Low-frequency gain: the differential input current gm1*vin is
        # mirrored with ratio B to the output and sees 1/gout.
        gain_linear = mirror_ratio * m1.gm / gout
        alf_db = 20.0 * math.log10(gain_linear)

        # Dominant pole at the output; fu = A0 * p1 (dominant-pole amplifier).
        fu_hz = mirror_ratio * m1.gm / (2.0 * math.pi * cout)

        # Non-dominant poles at the two mirror nodes, plus the mirror zero.
        c_node_nmos = m2.cgs + m6.cgs + m2.cdb + m1.cdb + m1.cgd
        pole_nmos_hz = m2.gm / (2.0 * math.pi * c_node_nmos)
        c_node_pmos = m3.cgs + m4.cgs + m3.cdb + m3.cgd
        pole_pmos_hz = m3.gm / (2.0 * math.pi * c_node_pmos)
        zero_mirror_hz = 2.0 * pole_nmos_hz
        pm_degrees = phase_margin_from_poles(
            fu_hz, [pole_nmos_hz, pole_pmos_hz], zeros_hz=[zero_mirror_hz])

        # Slew rates: the whole tail current (2*id1), scaled by the mirror
        # ratio, is available to charge/discharge the output capacitance.
        # The negative edge additionally has to slew the NMOS mirror node.
        slew_current = 2.0 * resolved["id1"] * mirror_ratio
        srp = slew_current / cout
        srn = -slew_current / (cout + m6.cgs + m2.cgs)

        # Input-referred offset: systematic component from the finite output
        # conductances of imperfectly matched mirror devices, plus a constant
        # random-mismatch term.  It stays in the low-mV range over the design
        # region, which is why the paper's model for voffset is a constant.
        systematic = -(
            m2.gds * (resolved["vds2"] - resolved["vgs6"])
            + m3.gds * (resolved["vsd3"] - resolved["vsg4"]) / mirror_ratio
        ) / m1.gm
        voffset = self.mismatch_offset_v + systematic

        return OtaPerformances(
            alf_db=alf_db,
            fu_hz=fu_hz,
            pm_degrees=pm_degrees,
            voffset_v=voffset,
            srp_v_per_s=srp,
            srn_v_per_s=srn,
        )

    # ------------------------------------------------------------------
    def small_signal_circuit(self, point: Mapping[str, float]) -> Circuit:
        """Small-signal netlist of the OTA at a design point.

        The circuit contains the input voltage source (``vin``, AC magnitude
        1), the gm/gds/C small-signal elements of the signal path and the
        10 pF load; running :func:`repro.circuits.ac.ac_analysis` on it and
        extracting gain / fu / PM from the output node ``out`` reproduces the
        analytic values of :meth:`performances` (cross-validated in the test
        suite).
        """
        resolved = self.validate_point(point)
        devices = self._formulation.operating_points(resolved)
        m1 = devices["M1"]
        m2 = devices["M2"]
        m3 = devices["M3"]
        m4 = devices["M4"]
        m6 = devices["M6"]
        mirror_ratio = resolved["id2"] / resolved["id1"]

        c_node_nmos = m2.cgs + m6.cgs + m2.cdb + m1.cdb + m1.cgd
        c_node_pmos = m3.cgs + m4.cgs + m3.cdb + m3.cgd

        circuit = Circuit(name="ota_small_signal")
        # Differential input drive (full differential voltage on one source).
        circuit.voltage_source("vin", "inp", "0", dc=0.0, ac=1.0)

        # Path A: half the pair current into the NMOS diode at node "n1",
        # mirrored with ratio B straight to the output (sinking).
        circuit.vccs("gm1a", "0", "n1", "inp", "0", 0.5 * m1.gm)
        circuit.vccs("gm2", "n1", "0", "n1", "0", m2.gm)
        circuit.resistor("ro_n1", "n1", "0", 1.0 / (m1.gds + m2.gds))
        circuit.capacitor("c_n1", "n1", "0", c_node_nmos)
        circuit.vccs("gm6", "out", "0", "n1", "0", mirror_ratio * m2.gm)

        # Path B: the other half of the pair current into the NMOS diode at
        # node "n0", mirrored with ratio B into the PMOS diode at node "n2",
        # whose output device M4 sources the current to the output.
        circuit.vccs("gm1b", "n0", "0", "inp", "0", 0.5 * m1.gm)
        circuit.vccs("gm2b", "n0", "0", "n0", "0", m2.gm)
        circuit.resistor("ro_n0", "n0", "0", 1.0 / (m1.gds + m2.gds))
        circuit.capacitor("c_n0", "n0", "0", c_node_nmos)
        circuit.vccs("gm6b", "n2", "0", "n0", "0", mirror_ratio * m2.gm)
        circuit.vccs("gm3", "n2", "0", "n2", "0", m3.gm)
        circuit.resistor("ro_n2", "n2", "0", 1.0 / (m3.gds + m6.gds))
        circuit.capacitor("c_n2", "n2", "0", c_node_pmos)
        circuit.vccs("gm4", "out", "0", "n2", "0", m4.gm)

        # Output node: output conductance and total load capacitance.
        circuit.resistor("rout", "out", "0", 1.0 / (m4.gds + m6.gds))
        circuit.capacitor("cout", "out", "0",
                          self.load_capacitance + m4.cdb + m6.cdb + m4.cgd + m6.cgd)
        return circuit


def simulate_ota_performances(
        points: np.ndarray,
        variable_names: Sequence[str] = OTA_VARIABLE_NAMES,
        ota: Optional[SymmetricalOta] = None) -> Dict[str, np.ndarray]:
    """Evaluate the OTA performances for a matrix of design points.

    Parameters
    ----------
    points:
        Array of shape ``(n_samples, n_variables)`` whose columns follow
        ``variable_names``.
    variable_names:
        Column names; must contain every entry of :data:`OTA_VARIABLE_NAMES`.
    ota:
        Circuit instance; a default :class:`SymmetricalOta` is used if omitted.

    Returns
    -------
    dict
        Maps each performance name (``"ALF"``, ``"fu"``, ...) to an array of
        length ``n_samples``.  Design points where the circuit cannot be
        biased (e.g. a drive voltage below threshold) produce NaN values, the
        analogue of the paper's non-converged SPICE samples.
    """
    ota = ota if ota is not None else SymmetricalOta()
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise ValueError("points must be a 2-D array")
    names = list(variable_names)
    if points.shape[1] != len(names):
        raise ValueError("points and variable_names disagree on dimensionality")
    missing = set(OTA_VARIABLE_NAMES) - set(names)
    if missing:
        raise ValueError(f"missing OTA design variables: {sorted(missing)}")

    results = {name: np.full(points.shape[0], np.nan) for name in OTA_PERFORMANCE_NAMES}
    for row_index in range(points.shape[0]):
        point = dict(zip(names, points[row_index], strict=True))
        try:
            performances = ota.performances(point)
        except (ValueError, KeyError):
            continue  # leave NaN: non-converged sample
        for name, value in performances.as_dict().items():
            results[name][row_index] = value
    return results
