"""Netlist representation for the reproduction's circuit simulator.

A :class:`Circuit` is a list of elements connected between named nodes, with
``"0"`` (or ``"gnd"``) as the reference node.  The element set is the minimum
needed to describe the paper's OTA testbench and the circuits used in the
test suite: resistors, capacitors, independent voltage/current sources,
voltage-controlled current sources and square-law MOSFETs.

The classes here only *describe* the network; analysis lives in
:mod:`repro.circuits.mna`, :mod:`repro.circuits.dc` and
:mod:`repro.circuits.ac`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.circuits.mosfet import MosfetModel

__all__ = [
    "CircuitElement",
    "Resistor",
    "Capacitor",
    "VoltageSource",
    "CurrentSource",
    "VoltageControlledCurrentSource",
    "Mosfet",
    "Circuit",
    "GROUND_NAMES",
]

#: Node names treated as the reference (ground) node.
GROUND_NAMES = frozenset({"0", "gnd", "GND"})


@dataclasses.dataclass(frozen=True)
class CircuitElement:
    """Base class for all netlist elements."""

    name: str

    def nodes(self) -> Tuple[str, ...]:
        """Names of the nodes this element connects to."""
        raise NotImplementedError


@dataclasses.dataclass(frozen=True)
class Resistor(CircuitElement):
    """Linear resistor between ``node_pos`` and ``node_neg``."""

    node_pos: str = "0"
    node_neg: str = "0"
    resistance: float = 1.0

    def __post_init__(self) -> None:
        if self.resistance <= 0:
            raise ValueError(f"resistor {self.name}: resistance must be positive")

    def nodes(self) -> Tuple[str, ...]:
        return (self.node_pos, self.node_neg)

    @property
    def conductance(self) -> float:
        return 1.0 / self.resistance


@dataclasses.dataclass(frozen=True)
class Capacitor(CircuitElement):
    """Linear capacitor between ``node_pos`` and ``node_neg``.

    Open circuit at DC; admittance ``j*omega*C`` in AC analysis.
    """

    node_pos: str = "0"
    node_neg: str = "0"
    capacitance: float = 1e-12

    def __post_init__(self) -> None:
        if self.capacitance < 0:
            raise ValueError(f"capacitor {self.name}: capacitance must be >= 0")

    def nodes(self) -> Tuple[str, ...]:
        return (self.node_pos, self.node_neg)


@dataclasses.dataclass(frozen=True)
class VoltageSource(CircuitElement):
    """Independent voltage source with a DC value and an AC magnitude."""

    node_pos: str = "0"
    node_neg: str = "0"
    dc: float = 0.0
    ac: float = 0.0

    def nodes(self) -> Tuple[str, ...]:
        return (self.node_pos, self.node_neg)


@dataclasses.dataclass(frozen=True)
class CurrentSource(CircuitElement):
    """Independent current source, flowing from ``node_pos`` to ``node_neg``."""

    node_pos: str = "0"
    node_neg: str = "0"
    dc: float = 0.0
    ac: float = 0.0

    def nodes(self) -> Tuple[str, ...]:
        return (self.node_pos, self.node_neg)


@dataclasses.dataclass(frozen=True)
class VoltageControlledCurrentSource(CircuitElement):
    """Current ``gm * (v(ctrl_pos) - v(ctrl_neg))`` from ``node_pos`` to ``node_neg``."""

    node_pos: str = "0"
    node_neg: str = "0"
    ctrl_pos: str = "0"
    ctrl_neg: str = "0"
    transconductance: float = 0.0

    def nodes(self) -> Tuple[str, ...]:
        return (self.node_pos, self.node_neg, self.ctrl_pos, self.ctrl_neg)


@dataclasses.dataclass(frozen=True)
class Mosfet(CircuitElement):
    """Square-law MOSFET instance.

    ``model`` supplies polarity, technology and channel length; ``width_um``
    is the instance width.  Bulk is assumed tied to the source (no body
    effect), which is adequate for the OTA topologies modeled here.
    """

    drain: str = "0"
    gate: str = "0"
    source: str = "0"
    model: MosfetModel = dataclasses.field(default_factory=lambda: MosfetModel("nmos"))
    width_um: float = 10.0

    def __post_init__(self) -> None:
        if self.width_um <= 0:
            raise ValueError(f"mosfet {self.name}: width must be positive")

    def nodes(self) -> Tuple[str, ...]:
        return (self.drain, self.gate, self.source)

    def bias_magnitudes(self, v_drain: float, v_gate: float, v_source: float
                        ) -> Tuple[float, float]:
        """(|vgs|, |vds|) seen by the square-law model for given node voltages."""
        if self.model.polarity == "nmos":
            return v_gate - v_source, v_drain - v_source
        return v_source - v_gate, v_source - v_drain

    def current_direction(self) -> int:
        """+1 if positive drain current flows drain->source (NMOS), else -1."""
        return 1 if self.model.polarity == "nmos" else -1


class Circuit:
    """A named collection of elements plus node bookkeeping."""

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self._elements: List[CircuitElement] = []
        self._names: Dict[str, CircuitElement] = {}

    # ------------------------------------------------------------------
    def add(self, element: CircuitElement) -> CircuitElement:
        """Add an element; element names must be unique within the circuit."""
        if element.name in self._names:
            raise ValueError(f"duplicate element name {element.name!r}")
        self._elements.append(element)
        self._names[element.name] = element
        return element

    def extend(self, elements: Sequence[CircuitElement]) -> None:
        for element in elements:
            self.add(element)

    def __iter__(self) -> Iterator[CircuitElement]:
        return iter(self._elements)

    def __len__(self) -> int:
        return len(self._elements)

    def __getitem__(self, name: str) -> CircuitElement:
        return self._names[name]

    def __contains__(self, name: str) -> bool:
        return name in self._names

    # ------------------------------------------------------------------
    def elements_of_type(self, element_type: type) -> List[CircuitElement]:
        """All elements of a given class, in insertion order."""
        return [e for e in self._elements if isinstance(e, element_type)]

    def node_names(self) -> Tuple[str, ...]:
        """All non-ground node names, in first-appearance order."""
        seen: Dict[str, None] = {}
        for element in self._elements:
            for node in element.nodes():
                if node not in GROUND_NAMES and node not in seen:
                    seen[node] = None
        return tuple(seen.keys())

    def voltage_sources(self) -> List[VoltageSource]:
        return [e for e in self._elements if isinstance(e, VoltageSource)]

    def mosfets(self) -> List[Mosfet]:
        return [e for e in self._elements if isinstance(e, Mosfet)]

    # ------------------------------------------------------------------
    # convenience constructors
    # ------------------------------------------------------------------
    def resistor(self, name: str, node_pos: str, node_neg: str,
                 resistance: float) -> Resistor:
        return self.add(Resistor(name, node_pos, node_neg, resistance))  # type: ignore[return-value]

    def capacitor(self, name: str, node_pos: str, node_neg: str,
                  capacitance: float) -> Capacitor:
        return self.add(Capacitor(name, node_pos, node_neg, capacitance))  # type: ignore[return-value]

    def voltage_source(self, name: str, node_pos: str, node_neg: str,
                       dc: float = 0.0, ac: float = 0.0) -> VoltageSource:
        return self.add(VoltageSource(name, node_pos, node_neg, dc, ac))  # type: ignore[return-value]

    def current_source(self, name: str, node_pos: str, node_neg: str,
                       dc: float = 0.0, ac: float = 0.0) -> CurrentSource:
        return self.add(CurrentSource(name, node_pos, node_neg, dc, ac))  # type: ignore[return-value]

    def vccs(self, name: str, node_pos: str, node_neg: str, ctrl_pos: str,
             ctrl_neg: str, transconductance: float
             ) -> VoltageControlledCurrentSource:
        return self.add(VoltageControlledCurrentSource(
            name, node_pos, node_neg, ctrl_pos, ctrl_neg, transconductance))  # type: ignore[return-value]

    def mosfet(self, name: str, drain: str, gate: str, source: str,
               model: MosfetModel, width_um: float) -> Mosfet:
        return self.add(Mosfet(name, drain, gate, source, model, width_um))  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """Short textual netlist listing, useful for debugging."""
        lines = [f"Circuit {self.name!r}: {len(self)} elements,"
                 f" {len(self.node_names())} nodes"]
        for element in self._elements:
            lines.append(f"  {type(element).__name__} {element.name}"
                         f" @ {', '.join(element.nodes())}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Circuit(name={self.name!r}, elements={len(self)})"
