"""Square-law MOSFET model (SPICE level-1 style) with small-signal parameters.

The paper's data comes from SPICE simulations of a 0.7 um CMOS OTA with a 5 V
supply and nominal threshold voltages of 0.76 V (NMOS) and -0.75 V (PMOS).
This module provides the device model used by the reproduction's simulator:
a long-channel square-law model with channel-length modulation, which is the
standard hand-analysis model for this technology node and captures exactly
the structural dependencies (gm, gds, capacitances vs. bias) that make the
OTA performances nonlinear functions of the operating-point variables.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Literal

__all__ = ["Technology", "MosfetModel", "MosfetOperatingPoint"]

Polarity = Literal["nmos", "pmos"]


@dataclasses.dataclass(frozen=True)
class Technology:
    """Process parameters of a (simplified) 0.7 um CMOS technology.

    Values are representative of the paper's technology: 5 V supply,
    ``Vth = 0.76 V`` (NMOS) / ``-0.75 V`` (PMOS), 10 pF load capacitance in
    the testbench.
    """

    vdd: float = 5.0
    vth_nmos: float = 0.76
    vth_pmos: float = -0.75
    #: transconductance parameters KP = mu * Cox  [A/V^2]
    kp_nmos: float = 100e-6
    kp_pmos: float = 35e-6
    #: channel-length modulation per unit length  [1/(V*um)]
    lambda_per_um_nmos: float = 0.06
    lambda_per_um_pmos: float = 0.08
    #: gate-oxide capacitance per area  [F/um^2]
    cox: float = 2.3e-15
    #: gate-drain/gate-source overlap capacitance per width  [F/um]
    c_overlap: float = 0.2e-15
    #: junction capacitance per width (drain/source to bulk)  [F/um]
    c_junction: float = 0.6e-15
    #: minimum / default channel length  [um]
    l_min: float = 0.7

    def vth(self, polarity: Polarity) -> float:
        """Threshold voltage (signed) for the given polarity."""
        return self.vth_nmos if polarity == "nmos" else self.vth_pmos

    def kp(self, polarity: Polarity) -> float:
        """Process transconductance KP for the given polarity."""
        return self.kp_nmos if polarity == "nmos" else self.kp_pmos

    def channel_length_modulation(self, polarity: Polarity, length_um: float) -> float:
        """Channel-length modulation coefficient lambda for a given L."""
        if length_um <= 0:
            raise ValueError("channel length must be positive")
        per_um = (self.lambda_per_um_nmos if polarity == "nmos"
                  else self.lambda_per_um_pmos)
        return per_um / length_um


@dataclasses.dataclass(frozen=True)
class MosfetOperatingPoint:
    """Bias point and small-signal parameters of one MOSFET.

    All quantities follow the usual sign conventions of hand analysis with
    *magnitudes* for the PMOS drive voltages: ``veff = |vgs| - |vth| > 0`` in
    saturation.
    """

    polarity: Polarity
    id: float
    vgs: float
    vds: float
    veff: float
    region: str
    gm: float
    gds: float
    width_um: float
    length_um: float
    cgs: float
    cgd: float
    cdb: float

    @property
    def gm_over_id(self) -> float:
        """Transconductance efficiency gm/Id (1/V)."""
        return self.gm / self.id if self.id > 0 else 0.0

    @property
    def intrinsic_gain(self) -> float:
        """Intrinsic voltage gain gm/gds."""
        return self.gm / self.gds if self.gds > 0 else float("inf")


class MosfetModel:
    """Square-law MOSFET with channel-length modulation.

    Two usage modes are provided:

    * **Forward** (:meth:`evaluate`): given geometry ``(W, L)`` and terminal
      voltages, compute the drain current and small-signal parameters --
      used by the MNA/Newton DC solver.
    * **Operating-point driven** (:meth:`from_operating_point`): given the
      design variables of the paper's formulation (drain current and gate
      drive voltage, plus drain-source voltage), compute the implied device
      geometry and small-signal parameters -- used by the OTA performance
      model and mirrors the operating-point-driven sizing of Leyn et al.
    """

    def __init__(self, polarity: Polarity, technology: Technology | None = None,
                 length_um: float | None = None) -> None:
        if polarity not in ("nmos", "pmos"):
            raise ValueError(f"polarity must be 'nmos' or 'pmos', got {polarity!r}")
        self.polarity: Polarity = polarity
        self.technology = technology if technology is not None else Technology()
        self.length_um = float(length_um if length_um is not None
                               else self.technology.l_min)
        if self.length_um <= 0:
            raise ValueError("channel length must be positive")

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @property
    def vth_magnitude(self) -> float:
        """Magnitude of the threshold voltage."""
        return abs(self.technology.vth(self.polarity))

    @property
    def kp(self) -> float:
        return self.technology.kp(self.polarity)

    @property
    def lam(self) -> float:
        """Channel-length modulation coefficient for this device's length."""
        return self.technology.channel_length_modulation(self.polarity, self.length_um)

    def _capacitances(self, width_um: float) -> tuple[float, float, float]:
        """(cgs, cgd, cdb) for a device of the given width in saturation."""
        tech = self.technology
        cgs = (2.0 / 3.0) * width_um * self.length_um * tech.cox \
            + width_um * tech.c_overlap
        cgd = width_um * tech.c_overlap
        cdb = width_um * tech.c_junction
        return cgs, cgd, cdb

    # ------------------------------------------------------------------
    # forward model: geometry + voltages -> current
    # ------------------------------------------------------------------
    def drain_current(self, width_um: float, vgs: float, vds: float) -> float:
        """Drain current magnitude for the given geometry and bias magnitudes.

        ``vgs`` and ``vds`` are magnitudes (positive for a conducting device
        of either polarity).  Cut-off, triode and saturation are handled; the
        triode/saturation boundary is the usual ``vds = veff``.
        """
        if width_um <= 0:
            raise ValueError("width must be positive")
        veff = vgs - self.vth_magnitude
        if veff <= 0.0:
            return 0.0
        beta = self.kp * width_um / self.length_um
        vds = max(vds, 0.0)
        if vds < veff:  # triode
            return beta * (veff * vds - 0.5 * vds * vds) * (1.0 + self.lam * vds)
        return 0.5 * beta * veff * veff * (1.0 + self.lam * vds)

    def conductances(self, width_um: float, vgs: float, vds: float
                     ) -> tuple[float, float]:
        """Small-signal ``(gm, gds)`` for the given geometry and bias magnitudes."""
        veff = vgs - self.vth_magnitude
        if veff <= 0.0:
            # Sub-threshold devices are treated as off with a tiny leakage
            # conductance for numerical robustness of the Newton solver.
            return 0.0, 1e-12
        beta = self.kp * width_um / self.length_um
        vds = max(vds, 0.0)
        if vds < veff:  # triode
            gm = beta * vds * (1.0 + self.lam * vds)
            gds = beta * (veff - vds) * (1.0 + self.lam * vds) \
                + beta * (veff * vds - 0.5 * vds * vds) * self.lam
        else:  # saturation
            gm = beta * veff * (1.0 + self.lam * vds)
            gds = 0.5 * beta * veff * veff * self.lam
        return gm, max(gds, 1e-12)

    def evaluate(self, width_um: float, vgs: float, vds: float
                 ) -> MosfetOperatingPoint:
        """Full operating point from geometry and bias magnitudes."""
        veff = vgs - self.vth_magnitude
        current = self.drain_current(width_um, vgs, vds)
        gm, gds = self.conductances(width_um, vgs, vds)
        if veff <= 0:
            region = "cutoff"
        elif vds < veff:
            region = "triode"
        else:
            region = "saturation"
        cgs, cgd, cdb = self._capacitances(width_um)
        return MosfetOperatingPoint(
            polarity=self.polarity, id=current, vgs=vgs, vds=vds, veff=veff,
            region=region, gm=gm, gds=gds, width_um=width_um,
            length_um=self.length_um, cgs=cgs, cgd=cgd, cdb=cdb,
        )

    # ------------------------------------------------------------------
    # operating-point-driven model: (id, vgs, vds) -> geometry + small signal
    # ------------------------------------------------------------------
    def width_for_operating_point(self, id: float, vgs: float, vds: float) -> float:
        """Device width (um) that carries ``id`` at the given bias in saturation."""
        if id <= 0:
            raise ValueError("drain current must be positive")
        veff = vgs - self.vth_magnitude
        if veff <= 0:
            raise ValueError(
                f"gate drive {vgs:.3f} V does not exceed |Vth|={self.vth_magnitude:.3f} V"
            )
        vds_sat = max(vds, veff)  # operating-point formulation keeps devices saturated
        denom = 0.5 * self.kp * veff * veff * (1.0 + self.lam * vds_sat)
        return id * self.length_um / denom

    def from_operating_point(self, id: float, vgs: float, vds: float
                             ) -> MosfetOperatingPoint:
        """Operating point from the paper's design variables.

        Given the drain current ``id`` and gate drive ``vgs`` (both magnitudes,
        as in the operating-point-driven formulation), plus the drain-source
        voltage magnitude ``vds``, compute the device width that realizes this
        bias and the resulting small-signal parameters.  The device is assumed
        saturated; if ``vds`` is below ``veff`` the saturation value is used
        for the current equation (the paper's formulation enforces saturation
        by construction).
        """
        if id <= 0:
            raise ValueError("drain current must be positive")
        veff = vgs - self.vth_magnitude
        if veff <= 0:
            raise ValueError(
                f"gate drive {vgs:.3f} V does not exceed |Vth|={self.vth_magnitude:.3f} V"
            )
        width = self.width_for_operating_point(id, vgs, vds)
        vds_eff = max(vds, veff)
        gm = 2.0 * id / veff
        gds = self.lam * id / (1.0 + self.lam * vds_eff)
        cgs, cgd, cdb = self._capacitances(width)
        region = "saturation" if vds >= veff else "saturation (forced)"
        return MosfetOperatingPoint(
            polarity=self.polarity, id=id, vgs=vgs, vds=vds, veff=veff,
            region=region, gm=gm, gds=max(gds, 1e-12), width_um=width,
            length_um=self.length_um, cgs=cgs, cgd=cgd, cdb=cdb,
        )

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MosfetModel({self.polarity}, L={self.length_um:.2f}um, "
            f"KP={self.kp:.3g}, |Vth|={self.vth_magnitude:.2f}V)"
        )


def thermal_voltage(temperature_kelvin: float = 300.0) -> float:
    """kT/q at the given temperature; used for mismatch/offset modeling."""
    boltzmann = 1.380649e-23
    electron_charge = 1.602176634e-19
    return boltzmann * temperature_kelvin / electron_charge


def gm_over_id_saturation(veff: float) -> float:
    """Square-law transconductance efficiency ``2 / veff`` in saturation."""
    if veff <= 0:
        raise ValueError("effective gate drive must be positive in saturation")
    return 2.0 / veff


def required_veff(id: float, beta: float) -> float:
    """Effective gate drive needed for current ``id`` with gain factor ``beta``."""
    if id < 0 or beta <= 0:
        raise ValueError("id must be >= 0 and beta > 0")
    return math.sqrt(2.0 * id / beta)
