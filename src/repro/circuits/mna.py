"""Modified nodal analysis (MNA) system assembly.

MNA builds a linear system ``A @ x = z`` where the unknowns ``x`` are the
node voltages plus one branch current per independent voltage source.  The
functions here stamp the linear elements; nonlinear MOSFETs are stamped by
the Newton iteration in :mod:`repro.circuits.dc` using their linearized
companion model (``gm``, ``gds`` and an equivalent current source), and by
:mod:`repro.circuits.ac` using the small-signal parameters at the DC
operating point.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

import numpy as np

from repro.circuits.netlist import (
    Capacitor,
    Circuit,
    CurrentSource,
    GROUND_NAMES,
    Resistor,
    VoltageControlledCurrentSource,
    VoltageSource,
)

__all__ = ["MnaIndex", "stamp_conductance", "stamp_current",
           "stamp_vccs", "stamp_voltage_source", "build_linear_system"]


@dataclasses.dataclass(frozen=True)
class MnaIndex:
    """Mapping from node / source names to MNA unknown indices.

    Ground nodes map to ``-1`` and are skipped when stamping.
    """

    node_index: Dict[str, int]
    source_index: Dict[str, int]

    @property
    def n_nodes(self) -> int:
        return len(self.node_index)

    @property
    def n_sources(self) -> int:
        return len(self.source_index)

    @property
    def size(self) -> int:
        """Total number of MNA unknowns."""
        return self.n_nodes + self.n_sources

    def node(self, name: str) -> int:
        """Index of a node, or -1 for ground."""
        if name in GROUND_NAMES:
            return -1
        return self.node_index[name]

    def source(self, name: str) -> int:
        """Row/column index of a voltage-source branch current."""
        return self.n_nodes + self.source_index[name]

    @classmethod
    def from_circuit(cls, circuit: Circuit) -> "MnaIndex":
        nodes = {name: i for i, name in enumerate(circuit.node_names())}
        sources = {vs.name: i for i, vs in enumerate(circuit.voltage_sources())}
        return cls(node_index=nodes, source_index=sources)


def stamp_conductance(matrix: np.ndarray, i: int, j: int, g: complex) -> None:
    """Stamp a conductance ``g`` between unknowns ``i`` and ``j`` (-1 = ground)."""
    if i >= 0:
        matrix[i, i] += g
    if j >= 0:
        matrix[j, j] += g
    if i >= 0 and j >= 0:
        matrix[i, j] -= g
        matrix[j, i] -= g


def stamp_current(rhs: np.ndarray, i: int, j: int, current: complex) -> None:
    """Stamp a current ``current`` flowing from unknown ``i`` into unknown ``j``."""
    if i >= 0:
        rhs[i] -= current
    if j >= 0:
        rhs[j] += current


def stamp_vccs(matrix: np.ndarray, out_pos: int, out_neg: int,
               ctrl_pos: int, ctrl_neg: int, gm: complex) -> None:
    """Stamp a voltage-controlled current source.

    Current ``gm * (v(ctrl_pos) - v(ctrl_neg))`` flows from ``out_pos`` to
    ``out_neg`` (i.e. out of node ``out_pos``).
    """
    for out_node, sign_out in ((out_pos, 1.0), (out_neg, -1.0)):
        if out_node < 0:
            continue
        if ctrl_pos >= 0:
            matrix[out_node, ctrl_pos] += sign_out * gm
        if ctrl_neg >= 0:
            matrix[out_node, ctrl_neg] -= sign_out * gm


def stamp_voltage_source(matrix: np.ndarray, rhs: np.ndarray, branch: int,
                         node_pos: int, node_neg: int, value: complex) -> None:
    """Stamp an independent voltage source with its branch-current unknown."""
    if node_pos >= 0:
        matrix[node_pos, branch] += 1.0
        matrix[branch, node_pos] += 1.0
    if node_neg >= 0:
        matrix[node_neg, branch] -= 1.0
        matrix[branch, node_neg] -= 1.0
    rhs[branch] += value


def build_linear_system(circuit: Circuit, index: MnaIndex,
                        omega: float = 0.0, use_ac_values: bool = False,
                        dtype: type = float) -> Tuple[np.ndarray, np.ndarray]:
    """Assemble the MNA matrix and right-hand side for the *linear* elements.

    Parameters
    ----------
    omega:
        Angular frequency; capacitors contribute ``j*omega*C`` when non-zero
        (requires ``dtype=complex``), and are open circuits at DC.
    use_ac_values:
        When True, independent sources are stamped with their AC magnitudes
        (small-signal excitation); otherwise with their DC values.
    """
    n = index.size
    matrix = np.zeros((n, n), dtype=dtype)
    rhs = np.zeros(n, dtype=dtype)

    for element in circuit:
        if isinstance(element, Resistor):
            stamp_conductance(matrix,
                              index.node(element.node_pos),
                              index.node(element.node_neg),
                              element.conductance)
        elif isinstance(element, Capacitor):
            if omega > 0.0:
                admittance = 1j * omega * element.capacitance
                stamp_conductance(matrix,
                                  index.node(element.node_pos),
                                  index.node(element.node_neg),
                                  admittance)
            # open circuit at DC: no stamp
        elif isinstance(element, CurrentSource):
            value = element.ac if use_ac_values else element.dc
            stamp_current(rhs,
                          index.node(element.node_pos),
                          index.node(element.node_neg),
                          value)
        elif isinstance(element, VoltageControlledCurrentSource):
            stamp_vccs(matrix,
                       index.node(element.node_pos),
                       index.node(element.node_neg),
                       index.node(element.ctrl_pos),
                       index.node(element.ctrl_neg),
                       element.transconductance)
        elif isinstance(element, VoltageSource):
            value = element.ac if use_ac_values else element.dc
            stamp_voltage_source(matrix, rhs,
                                 index.source(element.name),
                                 index.node(element.node_pos),
                                 index.node(element.node_neg),
                                 value)
        # Mosfets are stamped by the DC / AC analyses.
    return matrix, rhs
