"""Small-signal AC analysis.

Given a circuit and its DC operating point, every MOSFET is replaced by its
small-signal model (a VCCS of value ``gm``, an output conductance ``gds`` and
the gate/junction capacitances), and the resulting linear complex-valued MNA
system is solved over a list of frequencies.  The OTA performance extraction
(:mod:`repro.circuits.performance`) consumes the resulting frequency response.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Sequence

import numpy as np

from repro.circuits.dc import DCSolution, solve_dc
from repro.circuits.mna import (
    MnaIndex,
    build_linear_system,
    stamp_conductance,
    stamp_vccs,
)
from repro.circuits.netlist import Circuit

__all__ = ["ACSweep", "ac_analysis", "transfer_function", "logspace_frequencies"]


@dataclasses.dataclass(frozen=True)
class ACSweep:
    """Result of an AC analysis: complex node voltages per frequency."""

    frequencies_hz: np.ndarray
    node_voltages: Dict[str, np.ndarray]

    def voltage(self, node: str) -> np.ndarray:
        """Complex voltage phasor at a node across the sweep."""
        if node in ("0", "gnd", "GND"):
            return np.zeros_like(self.frequencies_hz, dtype=complex)
        return self.node_voltages[node]

    @property
    def n_points(self) -> int:
        return int(self.frequencies_hz.shape[0])


def logspace_frequencies(f_start: float = 1.0, f_stop: float = 1e9,
                         points_per_decade: int = 20) -> np.ndarray:
    """Logarithmically spaced frequency grid, SPICE ``.AC DEC`` style."""
    if f_start <= 0 or f_stop <= f_start:
        raise ValueError("need 0 < f_start < f_stop")
    if points_per_decade < 1:
        raise ValueError("points_per_decade must be >= 1")
    decades = np.log10(f_stop / f_start)
    n_points = max(2, int(round(decades * points_per_decade)) + 1)
    return np.logspace(np.log10(f_start), np.log10(f_stop), n_points)


def _stamp_mosfet_small_signal(circuit: Circuit, index: MnaIndex,
                               matrix: np.ndarray, omega: float,
                               dc_solution: DCSolution) -> None:
    """Stamp the small-signal model of every MOSFET at angular frequency omega."""
    for mosfet in circuit.mosfets():
        op = dc_solution.device(mosfet.name)
        d = index.node(mosfet.drain)
        g = index.node(mosfet.gate)
        s = index.node(mosfet.source)
        if mosfet.model.polarity == "nmos":
            ctrl_pos, ctrl_neg = g, s
            out_pos, out_neg = d, s
        else:
            ctrl_pos, ctrl_neg = s, g
            out_pos, out_neg = s, d
        stamp_vccs(matrix, out_pos, out_neg, ctrl_pos, ctrl_neg, op.gm)
        stamp_conductance(matrix, out_pos, out_neg, op.gds)
        if omega > 0.0:
            stamp_conductance(matrix, g, s, 1j * omega * op.cgs)
            stamp_conductance(matrix, g, d, 1j * omega * op.cgd)
            stamp_conductance(matrix, d, -1, 1j * omega * op.cdb)


def ac_analysis(circuit: Circuit, frequencies_hz: Sequence[float],
                dc_solution: Optional[DCSolution] = None) -> ACSweep:
    """Run an AC sweep of ``circuit`` over the given frequencies.

    The DC operating point is computed first (or reused if provided).  The AC
    excitation comes from the ``ac`` values of the independent sources.
    """
    if dc_solution is None:
        dc_solution = solve_dc(circuit)
    index = MnaIndex.from_circuit(circuit)
    freqs = np.asarray(list(frequencies_hz), dtype=float)
    if freqs.ndim != 1 or freqs.size == 0:
        raise ValueError("frequencies_hz must be a non-empty 1-D sequence")
    if np.any(freqs < 0):
        raise ValueError("frequencies must be non-negative")

    voltages = {name: np.zeros(freqs.size, dtype=complex)
                for name in index.node_index}
    for k, frequency in enumerate(freqs):
        omega = 2.0 * np.pi * frequency
        matrix, rhs = build_linear_system(circuit, index, omega=omega,
                                          use_ac_values=True, dtype=complex)
        _stamp_mosfet_small_signal(circuit, index, matrix, omega, dc_solution)
        x = np.linalg.solve(matrix, rhs)
        for name, i in index.node_index.items():
            voltages[name][k] = x[i]
    return ACSweep(frequencies_hz=freqs, node_voltages=voltages)


def transfer_function(circuit: Circuit, input_source: str, output_node: str,
                      frequencies_hz: Sequence[float],
                      dc_solution: Optional[DCSolution] = None) -> np.ndarray:
    """Complex transfer function ``V(output_node) / AC(input_source)``.

    ``input_source`` must be the name of a voltage or current source whose
    ``ac`` value is non-zero.
    """
    if input_source not in circuit:
        raise KeyError(f"no element named {input_source!r} in circuit")
    source = circuit[input_source]
    excitation = getattr(source, "ac", 0.0)
    if excitation == 0.0:
        raise ValueError(
            f"source {input_source!r} has zero AC magnitude; set ac=1.0 to probe"
        )
    sweep = ac_analysis(circuit, frequencies_hz, dc_solution=dc_solution)
    return sweep.voltage(output_node) / excitation
