"""Newton-Raphson DC operating-point analysis.

Solves the nonlinear MNA system of a :class:`~repro.circuits.netlist.Circuit`
containing square-law MOSFETs.  Each Newton iteration stamps every MOSFET
with its linearized companion model at the current voltage estimate:
a transconductance ``gm`` (gate-source controlled), an output conductance
``gds`` (drain-source) and an equivalent current source so that the
linearized device carries exactly the nonlinear current at the expansion
point.  Source stepping is used as a fallback homotopy when plain Newton
fails to converge -- the same strategy SPICE uses.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from repro.circuits.mna import MnaIndex, build_linear_system, stamp_conductance, \
    stamp_current, stamp_vccs
from repro.circuits.mosfet import MosfetOperatingPoint
from repro.circuits.netlist import Circuit, Mosfet

__all__ = ["DCSolution", "ConvergenceError", "solve_dc"]


class ConvergenceError(RuntimeError):
    """Raised when the Newton iteration fails to converge.

    The paper notes that some of its 243 SPICE samples "did not converge";
    the reproduction's data-generation code treats this exception the same
    way (the sample's performance values become NaN and are filtered out).
    """


@dataclasses.dataclass(frozen=True)
class DCSolution:
    """Result of a DC operating-point analysis."""

    node_voltages: Dict[str, float]
    source_currents: Dict[str, float]
    device_operating_points: Dict[str, MosfetOperatingPoint]
    iterations: int

    def voltage(self, node: str) -> float:
        """Voltage of a node (0.0 for ground)."""
        if node in ("0", "gnd", "GND"):
            return 0.0
        return self.node_voltages[node]

    def device(self, name: str) -> MosfetOperatingPoint:
        """Operating point of a MOSFET by element name."""
        return self.device_operating_points[name]


def _device_voltages(mosfet: Mosfet, voltages: Dict[str, float]) -> tuple[float, float]:
    """(|vgs|, |vds|) for a MOSFET given the node-voltage dictionary."""
    def v(node: str) -> float:
        return 0.0 if node in ("0", "gnd", "GND") else voltages.get(node, 0.0)
    return mosfet.bias_magnitudes(v(mosfet.drain), v(mosfet.gate), v(mosfet.source))


def _stamp_mosfets(circuit: Circuit, index: MnaIndex, matrix: np.ndarray,
                   rhs: np.ndarray, voltages: Dict[str, float],
                   gmin: float) -> None:
    """Stamp every MOSFET's linearized companion model at ``voltages``."""
    for mosfet in circuit.mosfets():
        vgs, vds = _device_voltages(mosfet, voltages)
        current = mosfet.model.drain_current(mosfet.width_um, vgs, max(vds, 0.0))
        gm, gds = mosfet.model.conductances(mosfet.width_um, vgs, max(vds, 0.0))
        gds += gmin

        d = index.node(mosfet.drain)
        g = index.node(mosfet.gate)
        s = index.node(mosfet.source)

        if mosfet.model.polarity == "nmos":
            ctrl_pos, ctrl_neg = g, s
            out_pos, out_neg = d, s
            signed_current = current
        else:
            # For PMOS, vgs_magnitude = v(s) - v(g) and current flows source->drain.
            ctrl_pos, ctrl_neg = s, g
            out_pos, out_neg = s, d
            signed_current = current

        # Companion model: i = I0 + gm * dVctrl + gds * dVout
        stamp_vccs(matrix, out_pos, out_neg, ctrl_pos, ctrl_neg, gm)
        stamp_conductance(matrix, out_pos, out_neg, gds)

        def node_voltage(name: str) -> float:
            return 0.0 if name in ("0", "gnd", "GND") else voltages.get(name, 0.0)

        if mosfet.model.polarity == "nmos":
            v_ctrl = node_voltage(mosfet.gate) - node_voltage(mosfet.source)
            v_out = node_voltage(mosfet.drain) - node_voltage(mosfet.source)
        else:
            v_ctrl = node_voltage(mosfet.source) - node_voltage(mosfet.gate)
            v_out = node_voltage(mosfet.source) - node_voltage(mosfet.drain)
        equivalent = signed_current - gm * v_ctrl - gds * v_out
        stamp_current(rhs, out_pos, out_neg, equivalent)


def _voltages_from_solution(index: MnaIndex, x: np.ndarray) -> Dict[str, float]:
    return {name: float(x[i]) for name, i in index.node_index.items()}


def solve_dc(circuit: Circuit, max_iterations: int = 200,
             tolerance: float = 1e-9, gmin: float = 1e-12,
             initial_voltages: Optional[Dict[str, float]] = None,
             source_steps: int = 10) -> DCSolution:
    """Compute the DC operating point of ``circuit``.

    Plain Newton-Raphson is attempted first; if it fails, source stepping
    (ramping all independent sources from 0 to their full value) is used.
    Raises :class:`ConvergenceError` if both fail.
    """
    index = MnaIndex.from_circuit(circuit)

    def newton(scale: float, start: Dict[str, float]) -> Dict[str, float]:
        voltages = dict(start)
        previous = None
        for _iteration in range(max_iterations):
            matrix, rhs = build_linear_system(circuit, index, omega=0.0)
            matrix *= 1.0  # keep dtype float
            rhs *= scale
            # scale also the voltage-source rows stamped inside build_linear_system
            _stamp_mosfets(circuit, index, matrix, rhs, voltages, gmin)
            try:
                x = np.linalg.solve(matrix, rhs)
            except np.linalg.LinAlgError as exc:
                raise ConvergenceError(f"singular MNA matrix: {exc}") from exc
            new_voltages = _voltages_from_solution(index, x)
            if previous is not None:
                delta = max((abs(new_voltages[k] - previous[k])
                             for k in new_voltages), default=0.0)
                if delta < tolerance:
                    return new_voltages
            previous = new_voltages
            # Damped update for robustness.
            voltages = {
                k: 0.5 * voltages.get(k, 0.0) + 0.5 * v
                for k, v in new_voltages.items()
            }
        raise ConvergenceError(
            f"Newton iteration did not converge in {max_iterations} iterations"
        )

    start = dict(initial_voltages or {})
    for name in index.node_index:
        start.setdefault(name, 0.0)

    try:
        final_voltages = newton(1.0, start)
        converged_via = "newton"
    except ConvergenceError:
        # Source stepping homotopy.
        voltages = dict(start)
        final_voltages = None
        for step in range(1, source_steps + 1):
            scale = step / source_steps
            voltages = newton(scale, voltages)
            final_voltages = voltages
        converged_via = "source-stepping"
        if final_voltages is None:  # pragma: no cover - defensive
            raise

    # Final assembly to recover branch currents and device operating points.
    matrix, rhs = build_linear_system(circuit, index, omega=0.0)
    _stamp_mosfets(circuit, index, matrix, rhs, final_voltages, gmin)
    x = np.linalg.solve(matrix, rhs)

    source_currents = {
        name: float(x[index.source(name)]) for name in index.source_index
    }
    device_ops: Dict[str, MosfetOperatingPoint] = {}
    for mosfet in circuit.mosfets():
        vgs, vds = _device_voltages(mosfet, final_voltages)
        device_ops[mosfet.name] = mosfet.model.evaluate(
            mosfet.width_um, vgs, max(vds, 0.0))

    iterations = max_iterations if converged_via == "source-stepping" else 0
    return DCSolution(
        node_voltages=final_voltages,
        source_currents=source_currents,
        device_operating_points=device_ops,
        iterations=iterations,
    )
