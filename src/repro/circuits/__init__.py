"""Analog-circuit simulation substrate.

The paper trains CAFFEINE on SPICE simulation data of a high-speed CMOS OTA
in a 0.7 um technology.  SPICE and the authors' proprietary deck are not
available here, so this package provides the closest equivalent that
exercises the same code paths:

* a **device level**: square-law (SPICE level-1 style) MOSFET model with
  channel-length modulation, small-signal parameters and capacitances
  (:mod:`repro.circuits.mosfet`);
* a **network level**: netlists, modified nodal analysis, Newton-Raphson DC
  operating-point solving and complex-valued AC small-signal analysis
  (:mod:`repro.circuits.netlist`, :mod:`repro.circuits.mna`,
  :mod:`repro.circuits.dc`, :mod:`repro.circuits.ac`);
* a **circuit level**: the operating-point-driven formulation of the OTA and
  extraction of the six performances modeled in the paper -- low-frequency
  gain ``ALF``, unity-gain frequency ``fu``, phase margin ``PM``,
  input-referred offset ``voffset`` and the slew rates ``SRp`` / ``SRn``
  (:mod:`repro.circuits.ota`, :mod:`repro.circuits.performance`,
  :mod:`repro.circuits.opformulation`).

The experiments use the fast analytic operating-point model of the OTA to
generate the 243-sample training and testing tables; the netlist/MNA engine
is cross-validated against it in the test suite and is available for users
who want to model other circuits.
"""

from repro.circuits.mosfet import MosfetModel, MosfetOperatingPoint, Technology
from repro.circuits.netlist import (
    Capacitor,
    Circuit,
    CurrentSource,
    Mosfet,
    Resistor,
    VoltageControlledCurrentSource,
    VoltageSource,
)
from repro.circuits.dc import DCSolution, solve_dc
from repro.circuits.ac import ACSweep, ac_analysis, transfer_function
from repro.circuits.performance import (
    FrequencyResponse,
    gain_db,
    phase_margin,
    unity_gain_frequency,
)
from repro.circuits.ota import (
    OTA_NOMINAL_POINT,
    OTA_VARIABLE_NAMES,
    OtaPerformances,
    SymmetricalOta,
    simulate_ota_performances,
)
from repro.circuits.opformulation import OperatingPointFormulation

__all__ = [
    "MosfetModel",
    "MosfetOperatingPoint",
    "Technology",
    "Circuit",
    "Resistor",
    "Capacitor",
    "VoltageSource",
    "CurrentSource",
    "VoltageControlledCurrentSource",
    "Mosfet",
    "DCSolution",
    "solve_dc",
    "ACSweep",
    "ac_analysis",
    "transfer_function",
    "FrequencyResponse",
    "gain_db",
    "unity_gain_frequency",
    "phase_margin",
    "OTA_VARIABLE_NAMES",
    "OTA_NOMINAL_POINT",
    "OtaPerformances",
    "SymmetricalOta",
    "simulate_ota_performances",
    "OperatingPointFormulation",
]
