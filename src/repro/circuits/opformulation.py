"""Operating-point-driven circuit formulation.

The paper samples the OTA's design space in the *operating-point-driven
formulation* of Leyn et al. (ICCAD'98): the design variables are drain
currents and transistor drive voltages rather than device sizes.  Given a
design point in those variables, every device's geometry and small-signal
parameters follow directly from the square-law model
(:meth:`repro.circuits.mosfet.MosfetModel.from_operating_point`).

:class:`OperatingPointFormulation` is the generic machinery: it maps named
design variables onto per-device ``(id, vgs, vds)`` triples, optionally
through arbitrary expressions of the design point (e.g. "the tail device
carries ``2 * id1``"), and produces a dictionary of device operating points.
The OTA-specific wiring lives in :mod:`repro.circuits.ota`.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.circuits.mosfet import MosfetModel, MosfetOperatingPoint, Technology

__all__ = ["DeviceSpec", "OperatingPointFormulation"]

#: A quantity is either the name of a design variable or a callable computing
#: it from the full design point.
Quantity = "str | Callable[[Mapping[str, float]], float]"


@dataclasses.dataclass(frozen=True)
class DeviceSpec:
    """How one transistor's bias derives from the design variables.

    Each of ``id``, ``vgs`` and ``vds`` is either the name of a design
    variable or a callable mapping the design-point dictionary to a value.
    ``multiplicity`` is the number of identical parallel devices (e.g. 2 for
    a differential pair counted as one spec).
    """

    name: str
    polarity: str
    id: object
    vgs: object
    vds: object
    multiplicity: int = 1
    length_um: Optional[float] = None

    def resolve(self, point: Mapping[str, float]) -> Tuple[float, float, float]:
        """Resolve ``(id, vgs, vds)`` values for a concrete design point."""
        def value(quantity: object, label: str) -> float:
            if callable(quantity):
                return float(quantity(point))
            if isinstance(quantity, str):
                if quantity not in point:
                    raise KeyError(
                        f"device {self.name!r}: design point has no variable "
                        f"{quantity!r} (needed for {label})"
                    )
                return float(point[quantity])
            return float(quantity)  # numeric literal

        return (value(self.id, "id"), value(self.vgs, "vgs"),
                value(self.vds, "vds"))


class OperatingPointFormulation:
    """Maps design points (currents / drive voltages) to device operating points."""

    def __init__(self, technology: Optional[Technology] = None) -> None:
        self.technology = technology if technology is not None else Technology()
        self._specs: Dict[str, DeviceSpec] = {}

    # ------------------------------------------------------------------
    def add_device(self, name: str, polarity: str, id: object, vgs: object,
                   vds: object, multiplicity: int = 1,
                   length_um: Optional[float] = None) -> DeviceSpec:
        """Register a device; returns its spec.

        ``id``, ``vgs`` and ``vds`` may be design-variable names, numeric
        constants, or callables of the design-point dictionary.
        """
        if name in self._specs:
            raise ValueError(f"duplicate device name {name!r}")
        if polarity not in ("nmos", "pmos"):
            raise ValueError(f"polarity must be 'nmos' or 'pmos', got {polarity!r}")
        if multiplicity < 1:
            raise ValueError("multiplicity must be >= 1")
        spec = DeviceSpec(name=name, polarity=polarity, id=id, vgs=vgs, vds=vds,
                          multiplicity=multiplicity, length_um=length_um)
        self._specs[name] = spec
        return spec

    @property
    def device_names(self) -> Tuple[str, ...]:
        return tuple(self._specs.keys())

    def spec(self, name: str) -> DeviceSpec:
        return self._specs[name]

    # ------------------------------------------------------------------
    def operating_points(self, point: Mapping[str, float]
                         ) -> Dict[str, MosfetOperatingPoint]:
        """Operating points of all registered devices at a design point.

        Raises ``ValueError`` if any device would be biased below threshold or
        with a non-positive current -- the analogue of a non-converging SPICE
        sample in the paper's data-generation flow.
        """
        result: Dict[str, MosfetOperatingPoint] = {}
        for name, spec in self._specs.items():
            id_value, vgs_value, vds_value = spec.resolve(point)
            model = MosfetModel(spec.polarity, technology=self.technology,
                                length_um=spec.length_um)
            result[name] = model.from_operating_point(id_value, vgs_value, vds_value)
        return result

    def total_current(self, point: Mapping[str, float]) -> float:
        """Total supply current implied by a design point (sums multiplicities)."""
        total = 0.0
        for spec in self._specs.values():
            id_value, _, _ = spec.resolve(point)
            total += spec.multiplicity * id_value
        return total

    def widths_um(self, point: Mapping[str, float]) -> Dict[str, float]:
        """Device widths (um) implied by a design point -- the sizing view."""
        return {name: op.width_um
                for name, op in self.operating_points(point).items()}
