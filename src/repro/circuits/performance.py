"""Performance extraction from small-signal frequency responses.

The paper models six OTA performances; three of them (``ALF``, ``fu``,
``PM``) are properties of the open-loop gain's frequency response.  This
module extracts them from either a sampled :class:`FrequencyResponse`
(produced by the MNA AC analysis) or from an analytic pole description
(produced by the operating-point OTA model).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Sequence

import numpy as np

__all__ = [
    "FrequencyResponse",
    "gain_db",
    "unity_gain_frequency",
    "phase_margin",
    "phase_margin_from_poles",
    "unity_gain_frequency_from_poles",
]


def gain_db(magnitude: float) -> float:
    """Magnitude in decibels, ``20*log10(|H|)``."""
    if magnitude <= 0:
        return float("-inf")
    return 20.0 * math.log10(magnitude)


@dataclasses.dataclass(frozen=True)
class FrequencyResponse:
    """A sampled complex transfer function ``H(f)``."""

    frequencies_hz: np.ndarray
    response: np.ndarray

    def __post_init__(self) -> None:
        freqs = np.asarray(self.frequencies_hz, dtype=float)
        resp = np.asarray(self.response, dtype=complex)
        if freqs.ndim != 1 or resp.ndim != 1 or freqs.shape != resp.shape:
            raise ValueError("frequencies and response must be 1-D of equal length")
        if freqs.size < 2:
            raise ValueError("need at least two frequency points")
        if np.any(np.diff(freqs) <= 0):
            raise ValueError("frequencies must be strictly increasing")
        object.__setattr__(self, "frequencies_hz", freqs)
        object.__setattr__(self, "response", resp)

    @property
    def magnitude(self) -> np.ndarray:
        return np.abs(self.response)

    @property
    def phase_degrees(self) -> np.ndarray:
        """Unwrapped phase in degrees."""
        return np.degrees(np.unwrap(np.angle(self.response)))

    # ------------------------------------------------------------------
    def dc_gain(self) -> float:
        """Low-frequency gain magnitude (first point of the sweep)."""
        return float(self.magnitude[0])

    def dc_gain_db(self) -> float:
        """Low-frequency gain in dB -- the paper's ``ALF``."""
        return gain_db(self.dc_gain())

    def unity_gain_frequency(self) -> float:
        """Frequency where ``|H|`` crosses 1 -- the paper's ``fu``.

        Uses log-log interpolation between the bracketing samples.  Returns
        NaN if the magnitude never crosses unity inside the sweep.
        """
        mag = self.magnitude
        freqs = self.frequencies_hz
        if mag[0] <= 1.0:
            return float("nan")
        below = np.flatnonzero(mag <= 1.0)
        if below.size == 0:
            return float("nan")
        hi = int(below[0])
        lo = hi - 1
        # Log-log linear interpolation of the crossing.
        m_lo, m_hi = mag[lo], mag[hi]
        f_lo, f_hi = freqs[lo], freqs[hi]
        if m_lo == m_hi:
            return float(f_lo)
        t = (0.0 - math.log10(m_lo)) / (math.log10(m_hi) - math.log10(m_lo))
        return float(10 ** (math.log10(f_lo) + t * (math.log10(f_hi) - math.log10(f_lo))))

    def phase_at(self, frequency_hz: float) -> float:
        """Unwrapped phase (degrees) interpolated at ``frequency_hz``."""
        phases = self.phase_degrees
        return float(np.interp(math.log10(frequency_hz),
                               np.log10(self.frequencies_hz), phases))

    def phase_margin(self) -> float:
        """Phase margin in degrees -- the paper's ``PM``.

        Defined as ``180 + phase(H(fu))`` where ``fu`` is the unity-gain
        frequency; NaN when there is no unity-gain crossing in the sweep.
        """
        fu = self.unity_gain_frequency()
        if math.isnan(fu):
            return float("nan")
        # Normalize so that DC phase of a non-inverting gain is 0 degrees.
        phase_dc = self.phase_degrees[0]
        phase_fu = self.phase_at(fu) - phase_dc
        return 180.0 + phase_fu


def unity_gain_frequency(frequencies_hz: Sequence[float],
                         response: Sequence[complex]) -> float:
    """Functional wrapper around :meth:`FrequencyResponse.unity_gain_frequency`."""
    return FrequencyResponse(np.asarray(frequencies_hz),
                             np.asarray(response)).unity_gain_frequency()


def phase_margin(frequencies_hz: Sequence[float],
                 response: Sequence[complex]) -> float:
    """Functional wrapper around :meth:`FrequencyResponse.phase_margin`."""
    return FrequencyResponse(np.asarray(frequencies_hz),
                             np.asarray(response)).phase_margin()


# ----------------------------------------------------------------------
# Analytic (pole-based) expressions, used by the operating-point OTA model
# ----------------------------------------------------------------------
def unity_gain_frequency_from_poles(dc_gain: float, dominant_pole_hz: float) -> float:
    """Unity-gain frequency of a dominant-pole amplifier, ``A0 * p1``.

    Valid when the non-dominant poles lie well above the unity-gain
    frequency, which holds for the OTA design space sampled in the paper.
    """
    if dc_gain <= 0 or dominant_pole_hz <= 0:
        raise ValueError("dc_gain and dominant_pole_hz must be positive")
    return dc_gain * dominant_pole_hz


def phase_margin_from_poles(unity_gain_hz: float,
                            nondominant_poles_hz: Sequence[float],
                            zeros_hz: Sequence[float] = ()) -> float:
    """Phase margin of a dominant-pole amplifier with extra poles and zeros.

    ``PM = 90 - sum(atan(fu/p_i)) + sum(atan(fu/z_i))`` in degrees.  Positive
    (left-half-plane) zeros add phase; this matches the standard hand
    analysis of current-mirror OTAs where the mirror pole/zero pair limits
    the phase margin.
    """
    if unity_gain_hz <= 0:
        raise ValueError("unity_gain_hz must be positive")
    margin = 90.0
    for pole in nondominant_poles_hz:
        if pole <= 0:
            raise ValueError("non-dominant poles must be positive frequencies")
        margin -= math.degrees(math.atan(unity_gain_hz / pole))
    for zero in zeros_hz:
        if zero <= 0:
            raise ValueError("zeros must be positive frequencies")
        margin += math.degrees(math.atan(unity_gain_hz / zero))
    return margin
