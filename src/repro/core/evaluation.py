"""Batch population evaluation with basis-column caching.

CAFFEINE's runtime is dominated by re-evaluating evolved basis-function
trees on the training matrix: every generation evaluates ``population_size``
offspring of up to ``max_basis_functions`` trees each, node by node, in pure
Python.  Crossover and cloning copy subtrees verbatim, so the *same* basis
function (by structural key, see
:func:`repro.core.expression.structural_key`) is evaluated over and over on
the *same* dataset.  This module removes that redundancy:

* :class:`BasisColumnCache` -- an LRU cache mapping a basis function's
  structural key to its evaluated column on one dataset;
* :class:`PopulationEvaluator` -- evaluates whole populations: it collects
  the unique uncached basis functions across all individuals, computes their
  columns once (serially or on a thread/process pool, selected by
  ``CaffeineSettings.evaluation_backend``), then assembles each individual's
  basis matrix from cached columns and runs the linear fits; a second,
  individual-level LRU (keyed by the ordered tuple of basis keys) short-cuts
  the fit itself for structurally identical individuals;
* :class:`GramPool` -- a cross-generation pool of normal-equation scalars
  (column sums, column--target dots and pairwise column dot products, all by
  structural key) that turns each linear fit into a small
  ``(k+1) x (k+1)`` gather-and-solve with no per-fit pass over
  ``n_samples`` beyond the final residual step; offspring that differ from a
  parent by one basis function cost ``k`` fresh pair dots instead of a full
  ``k^2`` gram (the incremental, "rank-1" regime);
* :func:`evaluate_individual_inplace` -- the one-individual path that
  ``Individual.evaluate`` wraps for backward compatibility.

Correctness invariant: a cache hit returns the exact array a fresh
evaluation would produce (both go through
:func:`repro.core.individual.evaluate_basis_column`, and the structural key
encodes the exact floating-point recipe), and a gram-pool fit returns the
exact :class:`~repro.regression.least_squares.LinearFit` a direct
:func:`~repro.regression.least_squares.fit_linear` would (both build their
normal equations from the canonical
:func:`~repro.regression.least_squares.pair_dots` recipe) -- so cached,
uncached, serial, parallel, gram-pooled and direct evaluation are all
bit-for-bit identical: a fixed seed produces the same trade-off set
regardless of these settings.

Column-cache keys carry a :func:`dataset_fingerprint` prefix, so one
:class:`BasisColumnCache` can safely be shared by evaluators bound to
different targets: the six OTA performances of the paper's experiments all
evaluate on the *same* ``X``, and a shared cache makes the column side of a
multi-target experiment driver roughly six times cheaper (see
``repro.experiments.setup.run_caffeine_for_target``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import pickle
import warnings
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import faults
from repro.core.compile import TreeCompiler, cached_skeleton_and_params
from repro.core.complexity import basis_function_complexity, model_complexity
from repro.core.expression import ProductTerm, cached_structural_key
from repro.core.individual import (
    Individual,
    evaluate_basis_column,
    evaluate_basis_matrix,
)
from repro.core.registry import get_backend
from repro.core.settings import CaffeineSettings
from repro.data.metrics import (
    error_normalization,
    relative_rmse,
    relative_rmse_rows,
)
from repro.regression.least_squares import (
    LinearFit,
    fit_linear,
    fit_linear_from_gram,
    fit_linear_from_gram_batch,
    pair_dots,
    predict_linear_batch,
)

__all__ = [
    "CacheStats",
    "BasisColumnCache",
    "GramPool",
    "PopulationEvaluator",
    "InterpColumnBackend",
    "CompiledColumnBackend",
    "DirectFitBackend",
    "GramFitBackend",
    "ScalarResidualBackend",
    "BatchedResidualBackend",
    "dataset_fingerprint",
    "evaluate_individual_inplace",
]


def dataset_fingerprint(X: np.ndarray) -> str:
    """Content hash of a sample matrix, used to namespace shared caches.

    Two evaluators whose ``X`` matrices are byte-identical produce the same
    fingerprint and can therefore share evaluated basis columns through one
    :class:`BasisColumnCache`; any difference in shape or data yields a
    different prefix, so a shared cache can never serve a column evaluated
    on other data.
    """
    arr = np.ascontiguousarray(np.asarray(X, dtype=float))
    digest = hashlib.sha1()
    digest.update(str(arr.shape).encode("ascii"))
    digest.update(arr.tobytes())
    return digest.hexdigest()


def function_set_fingerprint(function_set) -> Tuple:
    """Identity of a function set's operator *implementations*.

    Structural keys identify operators by name only, which is unambiguous
    within one function set but not across sets: two runs could both name an
    operator ``"inv"`` yet bind different implementations.  A shared column
    cache therefore namespaces by this fingerprint too -- operator names
    plus the module/qualname of their implementations -- so runs only share
    columns when same-named operators mean the same computation.  (Thin
    wrapper around :meth:`repro.core.functions.FunctionSet.fingerprint`,
    which the persistent :class:`~repro.core.cache_store.ColumnCacheStore`
    also keys by.)
    """
    return function_set.fingerprint()


@dataclasses.dataclass
class CacheStats:
    """Hit/miss counters of a :class:`BasisColumnCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when untouched)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "hit_rate": self.hit_rate}


class BasisColumnCache:
    """LRU cache of evaluated basis-function columns for one dataset.

    Keys are structural keys (:func:`~repro.core.expression.structural_key`)
    of :class:`~repro.core.expression.ProductTerm` trees; values are the
    evaluated (and magnitude-clipped) columns.  Stored arrays are treated as
    immutable -- callers must not write into a returned column.

    ``max_entries == 0`` disables the cache (every lookup misses, nothing is
    stored), which keeps the calling code branch-free.
    """

    def __init__(self, max_entries: int = 20000) -> None:
        if max_entries < 0:
            raise ValueError("max_entries must be non-negative")
        self.max_entries = int(max_entries)
        self.stats = CacheStats()
        self._columns: "OrderedDict[Tuple, np.ndarray]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._columns)

    def __contains__(self, key: Tuple) -> bool:
        """Membership test without touching recency or the hit/miss stats."""
        return key in self._columns

    def items(self):
        """Snapshot of ``(key, column)`` entries in LRU order (oldest first),
        without touching recency or the hit/miss stats.  This is what the
        persistent :class:`~repro.core.cache_store.ColumnCacheStore`
        serializes."""
        return list(self._columns.items())

    def get(self, key: Tuple) -> Optional[np.ndarray]:
        """The cached column for ``key``, or None (counts a hit/miss)."""
        column = self._columns.get(key)
        if column is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._columns.move_to_end(key)
        return column

    def put(self, key: Tuple, column: np.ndarray) -> None:
        """Insert a column, evicting least-recently-used entries as needed."""
        if self.max_entries == 0:
            return
        if key in self._columns:
            self._columns.move_to_end(key)
            return
        self._columns[key] = column
        while len(self._columns) > self.max_entries:
            self._columns.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        self._columns.clear()


class GramPool:
    """Cross-generation pool of canonical normal-equation scalars.

    Per basis column (identified by structural key) the pool caches the
    column sum, the column--target dot and a finiteness flag; per unordered
    *pair* of columns it caches the dot product (diagonal pairs double as
    the squared norms the fit's column scaling needs).  Every scalar is
    computed through :func:`repro.regression.least_squares.pair_dots` --
    whose batched results are bit-for-bit independent of batch composition
    -- so a gram gathered here is exactly the gram ``fit_linear`` would
    compute from the assembled basis matrix, no matter when or in which
    batch each entry was first produced.

    Crossover and mutation mostly reshuffle existing basis functions, so
    after warm-up the pool serves nearly all pair lookups from cache; an
    offspring that differs from its parent by one column needs only ``k``
    fresh pair dots (new column x each retained column) rather than a full
    ``k^2`` gram -- the incremental "rank-1 update" regime, realized as
    cache hits instead of explicit factor updates.

    Column identities are interned to integer ids so pair keys stay small;
    evicting a column orphans its pairs, which then age out of the pair LRU
    naturally.
    """

    def __init__(self, y: np.ndarray, max_pairs: int = 200000) -> None:
        if max_pairs < 0:
            raise ValueError("max_pairs must be non-negative")
        y = np.ascontiguousarray(np.asarray(y, dtype=float).ravel())
        self._y_row = y[None, :]
        self.max_pairs = int(max_pairs)
        #: columns are cheap (four scalars each) -- cap them at the pair
        #: budget so the two LRUs age out together
        self.max_columns = max(1, int(max_pairs))
        #: structural key -> [id, colsum, ydot, finite]
        self._columns: "OrderedDict[Tuple, list]" = OrderedDict()
        self._pairs: "OrderedDict[Tuple[int, int], float]" = OrderedDict()
        self._next_id = 0
        self.n_singles_computed = 0
        self.n_pairs_computed = 0
        self.n_pair_requests = 0

    def __len__(self) -> int:
        return len(self._pairs)

    @property
    def pair_hit_rate(self) -> float:
        """Fraction of pair lookups served without a fresh dot product."""
        if self.n_pair_requests == 0:
            return 0.0
        # repro-lint: allow[errstate] -- scalar int hit-rate statistic, no column arrays
        return 1.0 - self.n_pairs_computed / self.n_pair_requests

    # ------------------------------------------------------------------
    def prepare(self, individuals_columns: Sequence[Sequence[Tuple[Tuple, np.ndarray]]]
                ) -> None:
        """Batch-compute every scalar the given individuals will need.

        ``individuals_columns`` holds, per individual, its ``(structural
        key, evaluated column)`` sequence.  Missing column stats and missing
        pair dots across the whole batch are each computed in a single
        vectorized :func:`pair_dots`-recipe call -- the generation-level
        GEMM-like step that replaces per-fit passes over ``n_samples``.
        """
        missing: "OrderedDict[Tuple, np.ndarray]" = OrderedDict()
        for columns in individuals_columns:
            for key, column in columns:
                if key not in self._columns and key not in missing:
                    missing[key] = column
        if missing:
            self._compute_singles(missing)

        pair_keys: List[Tuple[int, int]] = []
        rows_a: List[np.ndarray] = []
        rows_b: List[np.ndarray] = []
        queued = set()
        # Recency refreshes are LRU hygiene: they only matter once the pool
        # could actually evict.  Below half capacity (the steady state for
        # default sizes) they are tens of thousands of pure-overhead
        # OrderedDict moves per generation, so skip them.
        refresh_columns = len(self._columns) > self.max_columns // 2
        refresh_pairs = len(self._pairs) > self.max_pairs // 2
        for columns in individuals_columns:
            ids = []
            for key, column in columns:
                entry = self._columns.get(key)
                if entry is None:
                    # Evicted within this very batch (pool smaller than the
                    # batch's unique columns): recompute and re-register so
                    # the pairs queued below stay reachable at gather time
                    # (an anonymous id would orphan them in the pair LRU).
                    entry = self._single_statistics(column)
                    self._columns[key] = entry
                    while len(self._columns) > self.max_columns:
                        self._columns.popitem(last=False)
                elif refresh_columns:
                    self._columns.move_to_end(key)
                ids.append((entry[0], column))
            for a, (id_a, col_a) in enumerate(ids):
                for id_b, col_b in ids[a:]:
                    pair = (id_a, id_b) if id_a <= id_b else (id_b, id_a)
                    if pair in self._pairs:
                        if refresh_pairs:
                            # Refresh recency so a nearly-full pool never
                            # evicts the batch's own working set while
                            # inserting its fresh pairs.
                            self._pairs.move_to_end(pair)
                        continue
                    if pair in queued:
                        continue
                    queued.add(pair)
                    pair_keys.append(pair)
                    rows_a.append(col_a)
                    rows_b.append(col_b)
        if pair_keys:
            dots = pair_dots(np.stack(rows_a), np.stack(rows_b))
            self.n_pairs_computed += len(pair_keys)
            for pair, value in zip(pair_keys, dots, strict=True):
                self._pairs[pair] = float(value)
            while len(self._pairs) > self.max_pairs:
                self._pairs.popitem(last=False)

    def statistics_for(self, columns: Sequence[Tuple[Tuple, np.ndarray]]
                       ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, bool]:
        """``(gram, colsums, ydots, all_finite)`` for one individual.

        Missing scalars are computed (and cached) on demand, so this is
        correct standalone; inside ``evaluate_population`` the batched
        :meth:`prepare` has already run and this is a pure gather.  The
        gathered gram is bit-for-bit the raw gram of the stacked columns.
        """
        k = len(columns)
        gram = np.empty((k, k))
        colsums = np.empty(k)
        ydots = np.empty(k)
        finite = self.gather_into(columns, gram, colsums, ydots)
        return gram, colsums, ydots, finite

    def gather_into(self, columns: Sequence[Tuple[Tuple, np.ndarray]],
                    gram_out: np.ndarray, colsums_out: np.ndarray,
                    ydots_out: np.ndarray) -> bool:
        """Gather one individual's statistics into preallocated arrays.

        Returns whether every column is finite.  ``gram_out`` may be one
        slice of a same-width group's ``(m, k, k)`` stack, which is how the
        batched fit path avoids a copy per individual.  Missing scalars are
        computed (and cached) inline with the canonical recipe, so the
        gather is correct even without a prior :meth:`prepare`.  LRU
        recency is deliberately *not* refreshed here: in the batched path
        :meth:`prepare` just touched every entry this gather reads, and the
        (rare) standalone path tolerates insertion-order aging.
        """
        k = len(columns)
        ids = []
        finite = True
        for position, (key, column) in enumerate(columns):
            entry = self._columns.get(key)
            if entry is None:
                # Unseen (standalone call) or evicted column: compute with
                # the same canonical recipe -- the value is identical either
                # way -- and cache it for the next lookup.
                entry = self._single_statistics(column)
                self._columns[key] = entry
                while len(self._columns) > self.max_columns:
                    self._columns.popitem(last=False)
            ids.append(entry[0])
            colsums_out[position] = entry[1]
            ydots_out[position] = entry[2]
            finite = finite and entry[3]
        pairs = self._pairs
        self.n_pair_requests += k * (k + 1) // 2
        for a in range(k):
            id_a = ids[a]
            for b in range(a, k):
                id_b = ids[b]
                pair = (id_a, id_b) if id_a <= id_b else (id_b, id_a)
                value = pairs.get(pair)
                if value is None:
                    value = float(pair_dots(columns[a][1][None, :],
                                            columns[b][1][None, :])[0])
                    self.n_pairs_computed += 1
                    pairs[pair] = value
                    while len(pairs) > self.max_pairs:
                        pairs.popitem(last=False)
                gram_out[a, b] = value
                gram_out[b, a] = value
        return finite

    # ------------------------------------------------------------------
    def _single_statistics(self, column: np.ndarray) -> list:
        """Uncached per-column stats (canonical recipe, fresh id)."""
        row = column[None, :]
        entry = [self._next_id, float(row.sum(axis=1)[0]),
                 float((row * self._y_row).sum(axis=1)[0]),
                 bool(np.isfinite(row).all(axis=1)[0])]
        self._next_id += 1
        self.n_singles_computed += 1
        return entry

    def _compute_singles(self, missing: "OrderedDict[Tuple, np.ndarray]") -> None:
        rows = np.stack(list(missing.values()))
        colsums = rows.sum(axis=1)
        ydots = (rows * self._y_row).sum(axis=1)
        finite = np.isfinite(rows).all(axis=1)
        self.n_singles_computed += len(missing)
        for position, key in enumerate(missing):
            self._columns[key] = [self._next_id, float(colsums[position]),
                                  float(ydots[position]), bool(finite[position])]
            self._next_id += 1
        while len(self._columns) > self.max_columns:
            self._columns.popitem(last=False)


def evaluate_individual_inplace(individual: Individual, X: np.ndarray,
                                y: np.ndarray, settings: CaffeineSettings,
                                basis_matrix: Optional[np.ndarray] = None,
                                normalization: Optional[float] = None,
                                complexity: Optional[float] = None) -> None:
    """Fit one individual's linear weights and set both objectives in place.

    This is the single implementation behind ``Individual.evaluate`` and the
    batch evaluator; ``basis_matrix``/``normalization``/``complexity`` let
    callers that already hold those (the evaluator, with cached columns and
    per-basis complexities) skip recomputing them.
    """
    y = np.asarray(y, dtype=float)
    individual.complexity = (complexity if complexity is not None
                             else model_complexity(individual.bases, settings))
    individual.normalization = (normalization if normalization is not None
                                else error_normalization(y))
    if basis_matrix is None:
        basis_matrix = evaluate_basis_matrix(individual.bases, X)
    fit = fit_linear(basis_matrix, y)
    if fit is None:
        individual.fit = None
        individual.error = float("inf")
        return
    individual.fit = fit
    predictions = fit.predict(basis_matrix)
    individual.error = relative_rmse(y, predictions, individual.normalization)


class InterpColumnBackend:
    """Reference column backend: node-by-node tree interpretation.

    This is the ``"interp"`` entry of the ``"column"`` backend registry;
    basis keys are plain structural keys and every evaluation walks the
    tree through :func:`~repro.core.individual.evaluate_basis_column`.
    """

    name = "interp"
    #: no :class:`~repro.core.compile.TreeCompiler` behind this backend
    compiler: Optional[TreeCompiler] = None

    def __init__(self, X: np.ndarray,
                 settings: Optional[CaffeineSettings] = None) -> None:
        self.X = X

    def basis_key(self, basis: ProductTerm) -> Tuple:
        """The exact evaluation-recipe identity used as the cache key.

        Served from the node's memoized key when the variation layer has
        already computed it (shared-genome trees are never mutated in place
        after canonicalization, so the memo cannot go stale; see
        :func:`repro.core.expression.cached_structural_key`).
        """
        return cached_structural_key(basis)

    def evaluate(self, basis: ProductTerm, key: Tuple) -> np.ndarray:
        """Compute one column; ``key`` is the caller's precomputed key."""
        return evaluate_basis_column(basis, self.X)

    def column(self, basis: ProductTerm) -> np.ndarray:
        """Key + evaluate in one call (the worker-process entry point)."""
        return evaluate_basis_column(basis, self.X)


class CompiledColumnBackend:
    """Fused-tape column backend (``"compiled"``, the default).

    Basis keys are ``(skeleton, params)`` pairs -- the same one-walk-per-tree
    exact evaluation-recipe identity as a structural key, but directly
    reusable as the compiler's kernel-cache key, so cache misses never
    re-walk the tree.  Bit-for-bit identical to the interpreter (see
    :mod:`repro.core.compile`).
    """

    name = "compiled"

    def __init__(self, X: np.ndarray,
                 settings: Optional[CaffeineSettings] = None) -> None:
        # The kernel budget adapts to population_size (worker processes,
        # which get settings=None, keep the class default).
        self.compiler = TreeCompiler(
            X, max_kernels=(settings.resolved_kernel_cache_size()
                            if settings is not None
                            else CaffeineSettings.kernel_cache_size))

    def basis_key(self, basis: ProductTerm) -> Tuple:
        # Memoized on the root node: offspring share untouched basis trees
        # with their parents, so most keys per generation are cache hits.
        return cached_skeleton_and_params(basis)

    def evaluate(self, basis: ProductTerm, key: Tuple) -> np.ndarray:
        skeleton, params = key
        return self.compiler.column_from_key(skeleton, params, basis)

    def column(self, basis: ProductTerm) -> np.ndarray:
        return self.compiler.column(basis)


class ScalarResidualBackend:
    """Reference residual backend: one prediction/residual pass per fit.

    This is the ``"scalar"`` entry of the ``"residual"`` backend registry.
    A residual backend's contract: ``error(fit, basis_matrix)`` returns the
    individual's ``relative_rmse`` against the bound target, and
    ``errors(fits, basis_matrices)`` scores a *same-width* group (every fit
    has the same number of terms).  Both built-ins compute predictions by
    the canonical left-to-right accumulation
    (:func:`~repro.regression.least_squares.predict_linear`), so scalar and
    batched scoring are bit-for-bit identical by construction.
    """

    name = "scalar"

    def __init__(self, y: np.ndarray, normalization: float) -> None:
        self.y = np.ascontiguousarray(np.asarray(y, dtype=float).ravel())
        self.normalization = float(normalization)

    def error(self, fit: LinearFit, basis_matrix: np.ndarray) -> float:
        """One individual's relative RMS error (the paper's qwc/qtc shape)."""
        return relative_rmse(self.y, fit.predict(basis_matrix),
                             self.normalization)

    def errors(self, fits: Sequence[LinearFit],
               basis_matrices: Sequence[np.ndarray]) -> List[float]:
        """A same-width group, scored one individual at a time."""
        return [self.error(fit, basis_matrix)
                for fit, basis_matrix in zip(fits, basis_matrices, strict=True)]


class BatchedResidualBackend:
    """Generation-batched residual backend (``"batched"``, the default).

    Whole same-width groups are scored in one stacked pass: predictions via
    :func:`~repro.regression.least_squares.predict_linear_batch` (the
    canonical accumulation run over an ``(m, n, k)`` stack -- purely
    elementwise, so batch composition cannot change a bit) and residual
    reduction via :func:`~repro.data.metrics.relative_rmse_rows` (a
    contiguous-last-axis pairwise summation whose per-row results are
    independent of the stack, the ``pair_dots`` argument transplanted to
    the prediction side).  ``error``/``errors`` here are bit-for-bit
    :class:`ScalarResidualBackend`'s, enforced by hypothesis property tests
    and fixed-seed engine equality.
    """

    name = "batched"

    def __init__(self, y: np.ndarray, normalization: float) -> None:
        self.y = np.ascontiguousarray(np.asarray(y, dtype=float).ravel())
        self.normalization = float(normalization)
        #: stacked-pass accounting (benchmarks read these)
        self.n_batched_passes = 0
        self.n_batched_fits = 0

    def error(self, fit: LinearFit, basis_matrix: np.ndarray) -> float:
        """One individual: no batch to exploit, same canonical recipe."""
        return relative_rmse(self.y, fit.predict(basis_matrix),
                             self.normalization)

    def errors(self, fits: Sequence[LinearFit],
               basis_matrices: Sequence[np.ndarray]) -> List[float]:
        """One stacked prediction/residual pass over a same-width group."""
        if not fits:
            return []
        if len(fits) == 1:
            return [self.error(fits[0], basis_matrices[0])]
        intercepts = np.array([fit.intercept for fit in fits])
        coefficient_rows = np.stack([fit.coefficients for fit in fits])
        stacked = np.stack([np.asarray(m, dtype=float)
                            for m in basis_matrices])
        predictions = predict_linear_batch(intercepts, coefficient_rows,
                                           stacked)
        self.n_batched_passes += 1
        self.n_batched_fits += len(fits)
        return [float(value) for value in
                relative_rmse_rows(self.y, predictions, self.normalization)]


#: per-process column backend, installed once per worker by
#: :func:`_init_worker` so tasks ship only the basis trees, not X
_WORKER_BACKEND = None

#: sentinel cached by :meth:`PopulationEvaluator._get_executor` when an
#: evaluation-backend factory declines pooling (returns None), so the
#: factory is called once, not once per batch
_EXECUTOR_DECLINED = object()


def _init_worker(X: np.ndarray, column_backend: str = "interp") -> None:
    global _WORKER_BACKEND
    # Workers rebuild the configured column backend by registry name; column
    # factories must therefore accept ``settings=None`` (both built-ins do).
    _WORKER_BACKEND = get_backend("column", column_backend)(X, None)


def _column_task(basis: ProductTerm) -> np.ndarray:
    """Picklable worker: evaluate one basis function on the installed matrix."""
    return _WORKER_BACKEND.column(basis)


class PopulationEvaluator:
    """Evaluates populations of individuals against one fixed dataset.

    One evaluator is bound to one ``(X, y)`` pair (the engine holds one for
    its training data), so cache keys need no dataset component and the error
    normalization (the training-data range, the paper's qwc denominator) is
    computed once.

    The parallel backends only parallelize the *uncached column*
    computations; cache bookkeeping, matrix assembly and the linear fits stay
    on the calling thread in deterministic population order, which is how
    results remain independent of scheduling.
    """

    def __init__(self, X: np.ndarray, y: np.ndarray,
                 settings: Optional[CaffeineSettings] = None,
                 cache: Optional[BasisColumnCache] = None) -> None:
        self.X = np.asarray(X, dtype=float)
        self.y = np.asarray(y, dtype=float)
        if self.X.ndim != 2:
            raise ValueError("X must be 2-D (n_samples, n_variables)")
        if self.X.shape[0] != self.y.shape[0]:
            raise ValueError("X and y disagree on the number of samples")
        self.settings = settings if settings is not None else CaffeineSettings()
        # The default budget adapts to population_size (see
        # CaffeineSettings.resolved_basis_cache_size); explicit sizes and
        # externally shared caches are honored exactly.
        self.cache = cache if cache is not None \
            else BasisColumnCache(self.settings.resolved_basis_cache_size())
        self.normalization = error_normalization(self.y)
        self._backend = self.settings.evaluation_backend
        #: miss-path column computation, resolved through the ``"column"``
        #: backend registry: a fused-tape compiler (``"compiled"``, the
        #: default) or the node-by-node interpreter (``"interp"``) -- or any
        #: backend registered by name.  The backend object also owns the
        #: basis-key recipe, so its keys and its evaluations always agree.
        self._column_backend = get_backend(
            "column", self.settings.column_backend)(self.X, self.settings)
        self._basis_key = self._column_backend.basis_key
        #: the backend's TreeCompiler when it has one (introspection only)
        self._compiler: Optional[TreeCompiler] = getattr(
            self._column_backend, "compiler", None)
        #: column-cache key prefix: evaluators on byte-identical X *and* an
        #: implementation-identical function set share cached columns
        #: through a common cache; different data or differently-bound
        #: operator names never collide (see :func:`dataset_fingerprint`
        #: and :func:`function_set_fingerprint`)
        self.dataset_key = (dataset_fingerprint(self.X),
                            function_set_fingerprint(
                                self.settings.function_set))
        #: how the post-fit prediction/residual step runs, resolved through
        #: the ``"residual"`` registry: one stacked pass per basis width and
        #: generation (``"batched"``, the default) or per individual
        #: (``"scalar"``) -- bit-for-bit identical either way.
        self._residual_backend = get_backend(
            "residual", self.settings.residual_backend)(
                self.y, self.normalization)
        #: how fits are produced, resolved through the ``"fit"`` registry:
        #: gram-pool gather-and-solve (``"gram"``, the default; a zero pool
        #: size degrades to direct) or per-individual ``fit_linear``
        #: (``"direct"``) -- every registered backend must set the same
        #: fields on the individual (see :class:`DirectFitBackend`).
        self._fit_backend = get_backend(
            "fit", self.settings.fit_backend)(self)
        #: total number of individual evaluations performed (for benchmarks)
        self.n_evaluated = 0
        #: column-level accounting: how many basis-column lookups were made
        #: and how many had to be computed (the gap is the cache's work saved)
        self.n_column_requests = 0
        self.n_columns_computed = 0
        #: fit-level accounting: a whole individual whose exact sequence of
        #: basis keys was fitted before reuses that fit, error and complexity
        self.n_fit_requests = 0
        self.n_fits_computed = 0
        self._fit_cache: "OrderedDict[Tuple, Tuple]" = OrderedDict()
        #: keys prefilled by the current batch; their first assembly lookup is
        #: accounted as a computation, not a cache hit (see _column_for)
        self._fresh_keys: set = set()
        #: batch-local precomputed gram fits keyed by basis-key tuple (or
        #: individual id when the fit cache is off); filled by
        #: :meth:`GramFitBackend.prepare_batch`
        self._batch_fit_results: Dict = {}
        #: batch-local overlay of prefilled columns, consulted before the LRU
        #: so that a cache smaller than one batch (or a disabled cache) never
        #: forces recomputation within the batch that just computed a column
        self._batch_columns: Dict[Tuple, np.ndarray] = {}
        #: per-basis complexity by structural key (complexity is additive
        #: over bases and fully determined by the key + settings, so the sum
        #: over cached terms is bit-identical to model_complexity)
        self._complexity_cache: Dict[Tuple, float] = {}
        self._executor = None

    # ------------------------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        return self.cache.stats

    @property
    def gram_pool(self) -> Optional["GramPool"]:
        """The fit backend's scalar pool (None when fits are direct)."""
        return getattr(self._fit_backend, "pool", None)

    @property
    def residual_backend(self):
        """The configured residual backend (introspection/benchmarks)."""
        return self._residual_backend

    @property
    def column_hit_rate(self) -> float:
        """Fraction of basis-column lookups served without re-evaluation."""
        if self.n_column_requests == 0:
            return 0.0
        # repro-lint: allow[errstate] -- scalar int hit-rate statistic, no column arrays
        return 1.0 - self.n_columns_computed / self.n_column_requests

    @property
    def fit_hit_rate(self) -> float:
        """Fraction of individual evaluations served entirely from cache."""
        if self.n_fit_requests == 0:
            return 0.0
        # repro-lint: allow[errstate] -- scalar int hit-rate statistic, no column arrays
        return 1.0 - self.n_fits_computed / self.n_fit_requests

    def basis_column(self, basis: ProductTerm) -> np.ndarray:
        """The (cached) evaluated column of one basis function."""
        return self._column_for(self._basis_key(basis), basis)

    def basis_matrix(self, bases: Sequence[ProductTerm]) -> np.ndarray:
        """Assemble an ``(n_samples, n_bases)`` matrix from cached columns."""
        return self._matrix_from_keys([self._basis_key(b) for b in bases], bases)

    # ------------------------------------------------------------------
    def evaluate_individual(self, individual: Individual) -> Individual:
        """Evaluate one individual through the caches (in place)."""
        basis_keys = [self._basis_key(b) for b in individual.bases]
        return self._evaluate_with_keys(individual, basis_keys)

    def evaluate_population(self, individuals: Sequence[Individual]
                            ) -> Sequence[Individual]:
        """Evaluate a whole population (in place), batching uncached columns.

        Individuals whose exact basis sequence was fitted before are served
        from the fit cache.  For the rest, the unique uncached basis columns
        are computed once -- in parallel when a thread/process backend is
        configured -- then each matrix is assembled from the cache and fitted
        in population order (deterministic regardless of backend).

        Structural keys are computed exactly once per basis per call and
        threaded through every stage; hashing the trees is otherwise the
        single largest cost of a fully cached evaluation.

        With ``basis_cache_size=0`` nothing persists across calls, but the
        unique columns of *this* batch are still computed once (and through
        the configured parallel backend) via a batch-local overlay.
        """
        # Recovery-test hook: a batch whose fit machinery blows up
        # (singular solve, backend bug, OOM) must surface as a structured
        # per-problem failure upstream, never abort a whole sweep.
        faults.raise_point("fit.exception", n=len(individuals))
        keyed = [(individual, [self._basis_key(b) for b in individual.bases])
                 for individual in individuals]
        if self.cache.max_entries > 0:
            pending = [(individual, keys) for individual, keys in keyed
                       if tuple(keys) not in self._fit_cache]
        else:
            pending = keyed
        try:
            self._prefill_columns(pending)
            if pending:
                # The fit backend batch-precomputes whatever the coming
                # evaluations need (the gram backend: every missing
                # normal-equation scalar in one vectorized pass, then one
                # stacked LAPACK call per basis width; the direct backend:
                # nothing).  The per-individual loop below only distributes
                # precomputed results.
                self._fit_backend.prepare_batch(pending)
            for individual, keys in keyed:
                self._evaluate_with_keys(individual, keys)
        finally:
            # Clear even on a mid-batch exception: leftover fresh keys would
            # corrupt the hit-rate accounting of the next batch, and leftover
            # overlay columns would outlive the 'nothing persists across
            # calls' guarantee of a disabled cache.
            self._fresh_keys.clear()
            self._batch_columns.clear()
            self._batch_fit_results.clear()
        return individuals

    # ------------------------------------------------------------------
    def _column_for(self, key: Tuple, basis: ProductTerm) -> np.ndarray:
        self.n_column_requests += 1
        column = self._batch_columns.get(key)
        if column is not None:
            if key in self._fresh_keys:
                # First assembly lookup of a column the batch prefill just
                # computed: real work happened this batch, so it counts as a
                # computation, not as cache reuse.
                self._fresh_keys.discard(key)
                self.n_columns_computed += 1
            return column
        column = self.cache.get((self.dataset_key, key))
        if column is None:
            column = self._evaluate_column(basis, key)
            self.n_columns_computed += 1
            self.cache.put((self.dataset_key, key), column)
        return column

    def _evaluate_column(self, basis: ProductTerm, key: Tuple) -> np.ndarray:
        """Compute one basis column through the configured column backend.

        ``key`` is the caller's already-computed basis key; under the
        compiled backend it *is* the ``(skeleton, params)`` pair, handed to
        the compiler so a miss never re-walks the tree.
        """
        return self._column_backend.evaluate(basis, key)

    def _matrix_from_keys(self, keys: List[Tuple],
                          bases: Sequence[ProductTerm]) -> np.ndarray:
        if not bases:
            return np.zeros((self.X.shape[0], 0))
        return np.column_stack([self._column_for(key, basis)
                                for key, basis in zip(keys, bases, strict=True)])

    def _complexity_from_keys(self, keys: List[Tuple],
                              bases: Sequence[ProductTerm]) -> float:
        """Model complexity from per-basis cached terms (order-preserving sum,
        so bit-identical to :func:`~repro.core.complexity.model_complexity`)."""
        total = []
        for key, basis in zip(keys, bases, strict=True):
            term = self._complexity_cache.get(key)
            if term is None:
                term = basis_function_complexity(
                    basis, self.settings.basis_function_cost,
                    self.settings.vc_exponent_cost)
                if self.cache.max_entries > 0:
                    if len(self._complexity_cache) >= self.cache.max_entries:
                        self._complexity_cache.clear()
                    self._complexity_cache[key] = term
            total.append(term)
        return float(sum(total))

    def _evaluate_with_keys(self, individual: Individual,
                            basis_keys: List[Tuple]) -> Individual:
        # Column order determines which coefficient belongs to which basis,
        # so the individual-level key is the ordered tuple of basis keys.
        fit_key = tuple(basis_keys) if self.cache.max_entries > 0 else None
        self.n_evaluated += 1
        self.n_fit_requests += 1
        if fit_key is not None:
            cached = self._fit_cache.get(fit_key)
            if cached is not None:
                self._fit_cache.move_to_end(fit_key)
                fit, error, complexity = cached
                # LinearFit is frozen and treated as immutable, so sharing
                # one instance across structurally identical individuals is
                # safe -- exactly what SymbolicModel.from_individual already
                # does between an individual and its frozen model.
                individual.fit = fit
                individual.error = error
                individual.complexity = complexity
                individual.normalization = self.normalization
                return individual
        self.n_fits_computed += 1
        self._fit_backend.evaluate(individual, basis_keys)
        if fit_key is not None:
            self._fit_cache[fit_key] = (individual.fit, individual.error,
                                        individual.complexity)
            while len(self._fit_cache) > self.cache.max_entries:
                self._fit_cache.popitem(last=False)
        return individual

    # ------------------------------------------------------------------
    def _prefill_columns(self, keyed: Sequence[Tuple[Individual, List[Tuple]]]
                         ) -> None:
        """Compute every column the given individuals will need, once.

        Results land in the batch-local overlay (always) and the LRU (when
        enabled), so assembly never recomputes a column this batch produced --
        even when the LRU is smaller than the batch or disabled entirely.
        """
        missing: "OrderedDict[Tuple, ProductTerm]" = OrderedDict()
        for individual, keys in keyed:
            for key, basis in zip(keys, individual.bases, strict=True):
                if key not in missing and key not in self._batch_columns \
                        and (self.dataset_key, key) not in self.cache:
                    missing[key] = basis
        if not missing:
            return
        keys = list(missing.keys())
        bases = list(missing.values())
        columns = self._compute_columns(keys, bases)
        # No counter bumps here: the assembly pass accounts each of these
        # keys as a computation on its first lookup (via _fresh_keys), so a
        # basis occurrence is counted exactly once per evaluation.
        self._fresh_keys.update(keys)
        for key, column in zip(keys, columns, strict=True):
            self._batch_columns[key] = column
            self.cache.put((self.dataset_key, key), column)

    def _compute_columns(self, keys: List[Tuple],
                         bases: List[ProductTerm]) -> List[np.ndarray]:
        if self._backend == "serial" or len(bases) < 2:
            return [self._evaluate_column(basis, key)
                    for key, basis in zip(keys, bases, strict=True)]
        if self._get_executor() is None:
            # A registered backend may decline pooling (factory returned
            # None): run on the calling thread, exactly like "serial".
            return [self._evaluate_column(basis, key)
                    for key, basis in zip(keys, bases, strict=True)]
        if self._backend == "process":
            # map() preserves input order, so results line up with `bases`
            # regardless of completion order.  Pickling failures (custom
            # function sets built from lambdas cannot cross a process
            # boundary; the default set pickles fine) degrade permanently to
            # the thread backend; a genuine worker-side error of the same
            # exception type is disambiguated by probing picklability
            # directly and re-raised unmasked.
            try:
                return list(self._get_executor().map(_column_task, bases))
            except (pickle.PicklingError, TypeError, AttributeError):
                try:
                    for basis in bases:
                        pickle.dumps(basis)
                    trees_picklable = True
                except Exception:
                    trees_picklable = False
                if trees_picklable:
                    raise
                warnings.warn(
                    "evaluation_backend='process' requires picklable "
                    "expression trees (custom operators built from lambdas "
                    "are not); falling back to the thread backend",
                    RuntimeWarning, stacklevel=4)
                self._shutdown_executor()
                self._backend = "thread"
        # Threads share self.X directly -- nothing is serialized (and the
        # compiler, when configured, is thread-safe by design).
        return list(self._get_executor().map(
            lambda pair: self._evaluate_column(pair[1], pair[0]),
            zip(keys, bases, strict=True)))

    def _get_executor(self):
        """The evaluator's long-lived worker pool (created lazily once).

        Pool startup costs milliseconds; an engine calls _compute_columns
        every generation, so the pool is reused across batches and torn down
        only by :meth:`shutdown` (or interpreter exit).
        """
        if self._executor is None:
            workers = self.settings.evaluation_workers
            if workers == 0:
                import os
                workers = os.cpu_count() or 1
            workers = max(1, workers)
            # Resolved through the ``"evaluation"`` registry; the column
            # backend *name* rides along so process-pool workers can rebuild
            # their per-process state (see _init_worker).  A factory that
            # declines pooling (returns None) is remembered via a sentinel
            # so it is not re-invoked every batch.
            resolved = get_backend("evaluation", self._backend)(
                workers, self.X, self.settings.column_backend)
            self._executor = (resolved if resolved is not None
                              else _EXECUTOR_DECLINED)
        if self._executor is _EXECUTOR_DECLINED:
            return None
        return self._executor

    def _shutdown_executor(self) -> None:
        if self._executor is not None:
            if self._executor is not _EXECUTOR_DECLINED:
                self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def shutdown(self) -> None:
        """Release the worker pool (idempotent; pools also die with the
        interpreter, so calling this is optional for short-lived scripts).
        The evaluator remains usable afterwards -- a pool is recreated
        lazily on the next parallel batch."""
        self._shutdown_executor()

    def __enter__(self) -> "PopulationEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


class DirectFitBackend:
    """Reference fit backend: one full ``fit_linear`` per individual.

    This is the ``"direct"`` entry of the ``"fit"`` backend registry.  A fit
    backend's contract: ``prepare_batch(pending)`` may batch-precompute
    anything the coming evaluations need, and ``evaluate(individual,
    basis_keys)`` must set ``fit``, ``error``, ``complexity`` and
    ``normalization`` on the individual in place -- bit-for-bit what
    :func:`evaluate_individual_inplace` would set, unless the backend is
    documented as approximate.
    """

    name = "direct"

    def __init__(self, evaluator: PopulationEvaluator) -> None:
        self.evaluator = evaluator

    def prepare_batch(self, pending: Sequence[Tuple[Individual, List[Tuple]]]
                      ) -> None:
        """Direct fits need no batch precomputation."""

    def evaluate(self, individual: Individual,
                 basis_keys: List[Tuple]) -> None:
        ev = self.evaluator
        evaluate_individual_inplace(
            individual, ev.X, ev.y, ev.settings,
            basis_matrix=ev._matrix_from_keys(basis_keys, individual.bases),
            normalization=ev.normalization,
            complexity=ev._complexity_from_keys(basis_keys, individual.bases),
        )


class GramFitBackend:
    """Gram-pool fit backend (``"gram"``, the default).

    Fits gather canonical normal-equation scalars from a cross-generation
    :class:`GramPool` instead of re-reducing ``n_samples``-long columns, and
    whole batches solve in stacked LAPACK calls.  Bit-for-bit identical to
    :class:`DirectFitBackend` (the scalars come from the same
    :func:`~repro.regression.least_squares.pair_dots` recipe no matter when
    or in which batch they were first computed).
    """

    name = "gram"

    def __init__(self, evaluator: PopulationEvaluator) -> None:
        self.evaluator = evaluator
        #: the cross-generation scalar pool (``evaluator.gram_pool``); the
        #: default budget adapts to population_size so large-population runs
        #: do not evict a generation's pairs before the next can reuse them
        self.pool = GramPool(evaluator.y,
                             evaluator.settings.resolved_gram_pool_size())
        self._y_sum = float(evaluator.y.sum())
        self._y_finite = bool(np.isfinite(evaluator.y).all())

    # ------------------------------------------------------------------
    def evaluate(self, individual: Individual,
                 basis_keys: List[Tuple]) -> None:
        ev = self.evaluator
        batch_key = tuple(basis_keys) if ev.cache.max_entries > 0 \
            else id(individual)
        precomputed = ev._batch_fit_results.get(batch_key)
        if precomputed is not None:
            # Sharing one frozen LinearFit across structurally identical
            # individuals mirrors what the fit cache already does.
            fit, error = precomputed
            individual.complexity = ev._complexity_from_keys(
                basis_keys, individual.bases)
            individual.normalization = ev.normalization
            individual.fit = fit
            individual.error = error
            return
        self._evaluate_with_gram(individual, basis_keys)

    def _evaluate_with_gram(self, individual: Individual,
                            basis_keys: List[Tuple]) -> Individual:
        """Gram-pool fit: gather normal equations, small solve, score.

        Mirrors :func:`evaluate_individual_inplace` step for step -- same
        complexity, normalization, feasibility decision, fit and error, each
        produced by a bit-for-bit equivalent recipe -- but the only
        ``n_samples``-long work left is assembling the basis matrix for the
        final prediction/residual pass.
        """
        ev = self.evaluator
        bases = individual.bases
        individual.complexity = ev._complexity_from_keys(basis_keys, bases)
        individual.normalization = ev.normalization
        columns = [ev._column_for(key, basis)
                   for key, basis in zip(basis_keys, bases, strict=True)]
        gram, colsums, ydots, finite = self.pool.statistics_for(
            list(zip(basis_keys, columns, strict=True)))
        if not (finite and self._y_finite):
            # Exactly fit_linear's non-finite rejection, decided from the
            # pool's per-column finite flags instead of a full-matrix scan.
            individual.fit = None
            individual.error = float("inf")
            return individual
        if columns:
            basis_matrix = np.column_stack(columns)
        else:
            basis_matrix = np.zeros((ev.X.shape[0], 0))
        fit = fit_linear_from_gram(gram, colsums, ydots, self._y_sum,
                                   basis_matrix, ev.y)
        if fit is None:
            individual.fit = None
            individual.error = float("inf")
            return individual
        individual.fit = fit
        individual.error = ev._residual_backend.error(fit, basis_matrix)
        return individual

    # ------------------------------------------------------------------
    def prepare_batch(self, pending: Sequence[Tuple[Individual, List[Tuple]]]
                      ) -> None:
        """Solve the batch's unique fresh fits in stacked LAPACK calls.

        Pending individuals are deduplicated by basis-key tuple (duplicates
        share one fit, exactly as the fit cache would have arranged) and
        their ``(key, column)`` sequences are built once -- shared by the
        pool's batched :meth:`GramPool.prepare` and the per-group gathers
        below.  Each same-basis-count group's normal equations are then
        solved by one
        :func:`~repro.regression.least_squares.fit_linear_from_gram_batch`
        call.  Results land in the evaluator's ``_batch_fit_results`` for
        the per-individual loop to distribute -- every value bit-for-bit
        what the scalar path would have produced.
        """
        ev = self.evaluator
        groups: Dict[int, List[Tuple]] = {}
        queued = set()
        prepared_columns = []
        for individual, keys in pending:
            batch_key = tuple(keys) if ev.cache.max_entries > 0 \
                else id(individual)
            if batch_key in queued or not keys:
                # Duplicates share the first occurrence's fit; empty
                # individuals take the (cheap) scalar intercept-only path.
                continue
            queued.add(batch_key)
            keyed_columns = [(key, ev._column_for(key, basis))
                             for key, basis in zip(keys, individual.bases, strict=True)]
            prepared_columns.append(keyed_columns)
            groups.setdefault(len(keys), []).append(
                (batch_key, keyed_columns))
        if not groups:
            return
        self.pool.prepare(prepared_columns)
        for n_bases, items in groups.items():
            n_items = len(items)
            grams = np.empty((n_items, n_bases, n_bases))
            colsums = np.empty((n_items, n_bases))
            ydots = np.empty((n_items, n_bases))
            basis_matrices = []
            finite_rows = np.empty(n_items, dtype=bool)
            for position, (_batch_key, keyed_columns) in enumerate(items):
                finite_rows[position] = self.pool.gather_into(
                    keyed_columns, grams[position], colsums[position],
                    ydots[position])
                basis_matrices.append(np.column_stack(
                    [column for _key, column in keyed_columns]))
            if not self._y_finite:
                finite_rows[:] = False
            if finite_rows.all():
                solvable = np.arange(n_items)
            else:
                # Non-finite items would poison the stacked LAPACK calls;
                # they are infeasible by fit_linear's rules anyway.
                solvable = np.flatnonzero(finite_rows)
                for position in np.flatnonzero(~finite_rows):
                    ev._batch_fit_results[items[position][0]] = \
                        (None, float("inf"))
                if solvable.size == 0:
                    continue
                grams = grams[solvable]
                colsums = colsums[solvable]
                ydots = ydots[solvable]
            solvable_matrices = [basis_matrices[i] for i in solvable]
            fits = fit_linear_from_gram_batch(grams, colsums, ydots,
                                              self._y_sum, solvable_matrices,
                                              ev.y)
            # The group's prediction/residual step runs through the
            # configured residual backend: "batched" scores the whole
            # same-width group in one stacked pass, "scalar" one fit at a
            # time -- identical bits either way (the canonical recipes are
            # batch-shape independent).
            scored_positions = []
            scored_fits: List[LinearFit] = []
            scored_matrices = []
            for position, fit, basis_matrix in zip(solvable, fits,
                                                   solvable_matrices, strict=True):
                if fit is None:
                    ev._batch_fit_results[items[position][0]] = \
                        (None, float("inf"))
                    continue
                scored_positions.append(position)
                scored_fits.append(fit)
                scored_matrices.append(basis_matrix)
            if not scored_fits:
                continue
            errors = ev._residual_backend.errors(scored_fits, scored_matrices)
            for position, fit, error in zip(scored_positions, scored_fits,
                                            errors, strict=True):
                ev._batch_fit_results[items[position][0]] = (fit, error)
