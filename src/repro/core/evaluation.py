"""Batch population evaluation with basis-column caching.

CAFFEINE's runtime is dominated by re-evaluating evolved basis-function
trees on the training matrix: every generation evaluates ``population_size``
offspring of up to ``max_basis_functions`` trees each, node by node, in pure
Python.  Crossover and cloning copy subtrees verbatim, so the *same* basis
function (by structural key, see
:func:`repro.core.expression.structural_key`) is evaluated over and over on
the *same* dataset.  This module removes that redundancy:

* :class:`BasisColumnCache` -- an LRU cache mapping a basis function's
  structural key to its evaluated column on one dataset;
* :class:`PopulationEvaluator` -- evaluates whole populations: it collects
  the unique uncached basis functions across all individuals, computes their
  columns once (serially or on a thread/process pool, selected by
  ``CaffeineSettings.evaluation_backend``), then assembles each individual's
  basis matrix from cached columns and runs the linear fits; a second,
  individual-level LRU (keyed by the ordered tuple of basis keys) short-cuts
  the fit itself for structurally identical individuals;
* :func:`evaluate_individual_inplace` -- the one-individual path that
  ``Individual.evaluate`` wraps for backward compatibility.

Correctness invariant: a cache hit returns the exact array a fresh
evaluation would produce (both go through
:func:`repro.core.individual.evaluate_basis_column`, and the structural key
encodes the exact floating-point recipe), so cached, uncached, serial and
parallel evaluation are all bit-for-bit identical -- a fixed seed produces
the same trade-off set regardless of these settings.
"""

from __future__ import annotations

import dataclasses
import pickle
import warnings
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.complexity import basis_function_complexity, model_complexity
from repro.core.expression import ProductTerm, structural_key
from repro.core.individual import (
    Individual,
    evaluate_basis_column,
    evaluate_basis_matrix,
)
from repro.core.settings import CaffeineSettings
from repro.data.metrics import error_normalization, relative_rmse
from repro.regression.least_squares import fit_linear

__all__ = [
    "CacheStats",
    "BasisColumnCache",
    "PopulationEvaluator",
    "evaluate_individual_inplace",
]


@dataclasses.dataclass
class CacheStats:
    """Hit/miss counters of a :class:`BasisColumnCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when untouched)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "hit_rate": self.hit_rate}


class BasisColumnCache:
    """LRU cache of evaluated basis-function columns for one dataset.

    Keys are structural keys (:func:`~repro.core.expression.structural_key`)
    of :class:`~repro.core.expression.ProductTerm` trees; values are the
    evaluated (and magnitude-clipped) columns.  Stored arrays are treated as
    immutable -- callers must not write into a returned column.

    ``max_entries == 0`` disables the cache (every lookup misses, nothing is
    stored), which keeps the calling code branch-free.
    """

    def __init__(self, max_entries: int = 20000) -> None:
        if max_entries < 0:
            raise ValueError("max_entries must be non-negative")
        self.max_entries = int(max_entries)
        self.stats = CacheStats()
        self._columns: "OrderedDict[Tuple, np.ndarray]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._columns)

    def __contains__(self, key: Tuple) -> bool:
        """Membership test without touching recency or the hit/miss stats."""
        return key in self._columns

    def get(self, key: Tuple) -> Optional[np.ndarray]:
        """The cached column for ``key``, or None (counts a hit/miss)."""
        column = self._columns.get(key)
        if column is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._columns.move_to_end(key)
        return column

    def put(self, key: Tuple, column: np.ndarray) -> None:
        """Insert a column, evicting least-recently-used entries as needed."""
        if self.max_entries == 0:
            return
        if key in self._columns:
            self._columns.move_to_end(key)
            return
        self._columns[key] = column
        while len(self._columns) > self.max_entries:
            self._columns.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        self._columns.clear()


def evaluate_individual_inplace(individual: Individual, X: np.ndarray,
                                y: np.ndarray, settings: CaffeineSettings,
                                basis_matrix: Optional[np.ndarray] = None,
                                normalization: Optional[float] = None,
                                complexity: Optional[float] = None) -> None:
    """Fit one individual's linear weights and set both objectives in place.

    This is the single implementation behind ``Individual.evaluate`` and the
    batch evaluator; ``basis_matrix``/``normalization``/``complexity`` let
    callers that already hold those (the evaluator, with cached columns and
    per-basis complexities) skip recomputing them.
    """
    y = np.asarray(y, dtype=float)
    individual.complexity = (complexity if complexity is not None
                             else model_complexity(individual.bases, settings))
    individual.normalization = (normalization if normalization is not None
                                else error_normalization(y))
    if basis_matrix is None:
        basis_matrix = evaluate_basis_matrix(individual.bases, X)
    fit = fit_linear(basis_matrix, y)
    if fit is None:
        individual.fit = None
        individual.error = float("inf")
        return
    individual.fit = fit
    predictions = fit.predict(basis_matrix)
    individual.error = relative_rmse(y, predictions, individual.normalization)


#: per-process copy of the sample matrix, installed once per worker by
#: :func:`_init_worker` so tasks ship only the basis trees, not X
_WORKER_X: Optional[np.ndarray] = None


def _init_worker(X: np.ndarray) -> None:
    global _WORKER_X
    _WORKER_X = X


def _column_task(basis: ProductTerm) -> np.ndarray:
    """Picklable worker: evaluate one basis function on the installed matrix."""
    return evaluate_basis_column(basis, _WORKER_X)


class PopulationEvaluator:
    """Evaluates populations of individuals against one fixed dataset.

    One evaluator is bound to one ``(X, y)`` pair (the engine holds one for
    its training data), so cache keys need no dataset component and the error
    normalization (the training-data range, the paper's qwc denominator) is
    computed once.

    The parallel backends only parallelize the *uncached column*
    computations; cache bookkeeping, matrix assembly and the linear fits stay
    on the calling thread in deterministic population order, which is how
    results remain independent of scheduling.
    """

    def __init__(self, X: np.ndarray, y: np.ndarray,
                 settings: Optional[CaffeineSettings] = None,
                 cache: Optional[BasisColumnCache] = None) -> None:
        self.X = np.asarray(X, dtype=float)
        self.y = np.asarray(y, dtype=float)
        if self.X.ndim != 2:
            raise ValueError("X must be 2-D (n_samples, n_variables)")
        if self.X.shape[0] != self.y.shape[0]:
            raise ValueError("X and y disagree on the number of samples")
        self.settings = settings if settings is not None else CaffeineSettings()
        self.cache = cache if cache is not None \
            else BasisColumnCache(self.settings.basis_cache_size)
        self.normalization = error_normalization(self.y)
        self._backend = self.settings.evaluation_backend
        #: total number of individual evaluations performed (for benchmarks)
        self.n_evaluated = 0
        #: column-level accounting: how many basis-column lookups were made
        #: and how many had to be computed (the gap is the cache's work saved)
        self.n_column_requests = 0
        self.n_columns_computed = 0
        #: fit-level accounting: a whole individual whose exact sequence of
        #: basis keys was fitted before reuses that fit, error and complexity
        self.n_fit_requests = 0
        self.n_fits_computed = 0
        self._fit_cache: "OrderedDict[Tuple, Tuple]" = OrderedDict()
        #: keys prefilled by the current batch; their first assembly lookup is
        #: accounted as a computation, not a cache hit (see _column_for)
        self._fresh_keys: set = set()
        #: batch-local overlay of prefilled columns, consulted before the LRU
        #: so that a cache smaller than one batch (or a disabled cache) never
        #: forces recomputation within the batch that just computed a column
        self._batch_columns: Dict[Tuple, np.ndarray] = {}
        #: per-basis complexity by structural key (complexity is additive
        #: over bases and fully determined by the key + settings, so the sum
        #: over cached terms is bit-identical to model_complexity)
        self._complexity_cache: Dict[Tuple, float] = {}
        self._executor = None

    # ------------------------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        return self.cache.stats

    @property
    def column_hit_rate(self) -> float:
        """Fraction of basis-column lookups served without re-evaluation."""
        if self.n_column_requests == 0:
            return 0.0
        return 1.0 - self.n_columns_computed / self.n_column_requests

    @property
    def fit_hit_rate(self) -> float:
        """Fraction of individual evaluations served entirely from cache."""
        if self.n_fit_requests == 0:
            return 0.0
        return 1.0 - self.n_fits_computed / self.n_fit_requests

    def basis_column(self, basis: ProductTerm) -> np.ndarray:
        """The (cached) evaluated column of one basis function."""
        return self._column_for(structural_key(basis), basis)

    def basis_matrix(self, bases: Sequence[ProductTerm]) -> np.ndarray:
        """Assemble an ``(n_samples, n_bases)`` matrix from cached columns."""
        return self._matrix_from_keys([structural_key(b) for b in bases], bases)

    # ------------------------------------------------------------------
    def evaluate_individual(self, individual: Individual) -> Individual:
        """Evaluate one individual through the caches (in place)."""
        basis_keys = [structural_key(b) for b in individual.bases]
        return self._evaluate_with_keys(individual, basis_keys)

    def evaluate_population(self, individuals: Sequence[Individual]
                            ) -> Sequence[Individual]:
        """Evaluate a whole population (in place), batching uncached columns.

        Individuals whose exact basis sequence was fitted before are served
        from the fit cache.  For the rest, the unique uncached basis columns
        are computed once -- in parallel when a thread/process backend is
        configured -- then each matrix is assembled from the cache and fitted
        in population order (deterministic regardless of backend).

        Structural keys are computed exactly once per basis per call and
        threaded through every stage; hashing the trees is otherwise the
        single largest cost of a fully cached evaluation.

        With ``basis_cache_size=0`` nothing persists across calls, but the
        unique columns of *this* batch are still computed once (and through
        the configured parallel backend) via a batch-local overlay.
        """
        keyed = [(individual, [structural_key(b) for b in individual.bases])
                 for individual in individuals]
        if self.cache.max_entries > 0:
            pending = [(individual, keys) for individual, keys in keyed
                       if tuple(keys) not in self._fit_cache]
        else:
            pending = keyed
        try:
            self._prefill_columns(pending)
            for individual, keys in keyed:
                self._evaluate_with_keys(individual, keys)
        finally:
            # Clear even on a mid-batch exception: leftover fresh keys would
            # corrupt the hit-rate accounting of the next batch, and leftover
            # overlay columns would outlive the 'nothing persists across
            # calls' guarantee of a disabled cache.
            self._fresh_keys.clear()
            self._batch_columns.clear()
        return individuals

    # ------------------------------------------------------------------
    def _column_for(self, key: Tuple, basis: ProductTerm) -> np.ndarray:
        self.n_column_requests += 1
        column = self._batch_columns.get(key)
        if column is not None:
            if key in self._fresh_keys:
                # First assembly lookup of a column the batch prefill just
                # computed: real work happened this batch, so it counts as a
                # computation, not as cache reuse.
                self._fresh_keys.discard(key)
                self.n_columns_computed += 1
            return column
        column = self.cache.get(key)
        if column is None:
            column = evaluate_basis_column(basis, self.X)
            self.n_columns_computed += 1
            self.cache.put(key, column)
        return column

    def _matrix_from_keys(self, keys: List[Tuple],
                          bases: Sequence[ProductTerm]) -> np.ndarray:
        if not bases:
            return np.zeros((self.X.shape[0], 0))
        return np.column_stack([self._column_for(key, basis)
                                for key, basis in zip(keys, bases)])

    def _complexity_from_keys(self, keys: List[Tuple],
                              bases: Sequence[ProductTerm]) -> float:
        """Model complexity from per-basis cached terms (order-preserving sum,
        so bit-identical to :func:`~repro.core.complexity.model_complexity`)."""
        total = []
        for key, basis in zip(keys, bases):
            term = self._complexity_cache.get(key)
            if term is None:
                term = basis_function_complexity(
                    basis, self.settings.basis_function_cost,
                    self.settings.vc_exponent_cost)
                if self.cache.max_entries > 0:
                    if len(self._complexity_cache) >= self.cache.max_entries:
                        self._complexity_cache.clear()
                    self._complexity_cache[key] = term
            total.append(term)
        return float(sum(total))

    def _evaluate_with_keys(self, individual: Individual,
                            basis_keys: List[Tuple]) -> Individual:
        # Column order determines which coefficient belongs to which basis,
        # so the individual-level key is the ordered tuple of basis keys.
        fit_key = tuple(basis_keys) if self.cache.max_entries > 0 else None
        self.n_evaluated += 1
        self.n_fit_requests += 1
        if fit_key is not None:
            cached = self._fit_cache.get(fit_key)
            if cached is not None:
                self._fit_cache.move_to_end(fit_key)
                fit, error, complexity = cached
                # LinearFit is frozen and treated as immutable, so sharing
                # one instance across structurally identical individuals is
                # safe -- exactly what SymbolicModel.from_individual already
                # does between an individual and its frozen model.
                individual.fit = fit
                individual.error = error
                individual.complexity = complexity
                individual.normalization = self.normalization
                return individual
        self.n_fits_computed += 1
        evaluate_individual_inplace(
            individual, self.X, self.y, self.settings,
            basis_matrix=self._matrix_from_keys(basis_keys, individual.bases),
            normalization=self.normalization,
            complexity=self._complexity_from_keys(basis_keys, individual.bases),
        )
        if fit_key is not None:
            self._fit_cache[fit_key] = (individual.fit, individual.error,
                                        individual.complexity)
            while len(self._fit_cache) > self.cache.max_entries:
                self._fit_cache.popitem(last=False)
        return individual

    # ------------------------------------------------------------------
    def _prefill_columns(self, keyed: Sequence[Tuple[Individual, List[Tuple]]]
                         ) -> None:
        """Compute every column the given individuals will need, once.

        Results land in the batch-local overlay (always) and the LRU (when
        enabled), so assembly never recomputes a column this batch produced --
        even when the LRU is smaller than the batch or disabled entirely.
        """
        missing: "OrderedDict[Tuple, ProductTerm]" = OrderedDict()
        for individual, keys in keyed:
            for key, basis in zip(keys, individual.bases):
                if key not in missing and key not in self._batch_columns \
                        and key not in self.cache:
                    missing[key] = basis
        if not missing:
            return
        keys = list(missing.keys())
        bases = list(missing.values())
        columns = self._compute_columns(bases)
        # No counter bumps here: the assembly pass accounts each of these
        # keys as a computation on its first lookup (via _fresh_keys), so a
        # basis occurrence is counted exactly once per evaluation.
        self._fresh_keys.update(keys)
        for key, column in zip(keys, columns):
            self._batch_columns[key] = column
            self.cache.put(key, column)

    def _compute_columns(self, bases: List[ProductTerm]) -> List[np.ndarray]:
        if self._backend == "serial" or len(bases) < 2:
            return [evaluate_basis_column(basis, self.X) for basis in bases]
        if self._backend == "process":
            # map() preserves input order, so results line up with `bases`
            # regardless of completion order.  Pickling failures (the default
            # function set stores lambdas, which cannot cross a process
            # boundary) degrade permanently to the thread backend; a genuine
            # worker-side error of the same exception type is disambiguated
            # by probing picklability directly and re-raised unmasked.
            try:
                return list(self._get_executor().map(_column_task, bases))
            except (pickle.PicklingError, TypeError, AttributeError):
                try:
                    for basis in bases:
                        pickle.dumps(basis)
                    trees_picklable = True
                except Exception:
                    trees_picklable = False
                if trees_picklable:
                    raise
                warnings.warn(
                    "evaluation_backend='process' requires picklable "
                    "expression trees (the default function set uses "
                    "lambdas); falling back to the thread backend",
                    RuntimeWarning, stacklevel=4)
                self._shutdown_executor()
                self._backend = "thread"
        # Threads share self.X directly -- nothing is serialized.
        return list(self._get_executor().map(
            lambda basis: evaluate_basis_column(basis, self.X), bases))

    def _get_executor(self):
        """The evaluator's long-lived worker pool (created lazily once).

        Pool startup costs milliseconds; an engine calls _compute_columns
        every generation, so the pool is reused across batches and torn down
        only by :meth:`shutdown` (or interpreter exit).
        """
        if self._executor is None:
            import concurrent.futures

            workers = self.settings.evaluation_workers
            if workers == 0:
                import os
                workers = os.cpu_count() or 1
            workers = max(1, workers)
            if self._backend == "process":
                # X is shipped once per worker via the initializer; tasks
                # then carry only the basis trees.
                self._executor = concurrent.futures.ProcessPoolExecutor(
                    max_workers=workers, initializer=_init_worker,
                    initargs=(self.X,))
            else:
                self._executor = concurrent.futures.ThreadPoolExecutor(
                    max_workers=workers)
        return self._executor

    def _shutdown_executor(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def shutdown(self) -> None:
        """Release the worker pool (idempotent; pools also die with the
        interpreter, so calling this is optional for short-lived scripts).
        The evaluator remains usable afterwards -- a pool is recreated
        lazily on the next parallel batch."""
        self._shutdown_executor()

    def __enter__(self) -> "PopulationEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
