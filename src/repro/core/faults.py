"""Deterministic fault injection: named failure points for recovery testing.

Fault tolerance that is never exercised is fault tolerance that does not
work.  This module gives the test suite (and CI) a way to *deterministically*
trigger every failure mode the engine, session and cache-store layers claim
to survive -- a worker killed mid-run, a fit that raises, a cache file that
corrupts on disk, a lock that times out, a problem that stalls -- without
monkeypatching internals or relying on timing races.

The production code declares **fault points**: named places where a failure
may be injected.  Each point is a single cheap call into this module that is
a no-op unless a matching :class:`FaultSpec` is active:

========================  ==================================================
point                     effect when armed (and where it is declared)
========================  ==================================================
``worker.kill``           ``SIGKILL`` to the current process -- a session
                          worker dying without cleanup
                          (:func:`repro.core.session._worker_main`)
``worker.exception``      raise :class:`InjectedFault` before the run starts
                          (:func:`repro.core.session._worker_main`)
``problem.stall``         sleep for the spec's ``delay`` seconds -- a hung
                          problem (:func:`repro.core.session._worker_main`)
``fit.exception``         raise :class:`InjectedFault` inside population
                          evaluation (:meth:`PopulationEvaluator.
                          evaluate_population`)
``lock.timeout``          raise :class:`TimeoutError` as if the advisory
                          file lock were contended past its deadline
                          (:meth:`repro.core.cache_store.FileLock.acquire`)
``store.kill-mid-save``   ``SIGKILL`` between writing the temp file and the
                          atomic ``os.replace`` -- a crash mid-save
                          (:meth:`_VersionedFileStore._write_document`)
``store.corrupt``         truncate the just-written store file -- on-disk
                          corruption (:meth:`_VersionedFileStore.
                          _write_document`)
========================  ==================================================

Specs are activated two ways, both reaching worker processes:

* the ``REPRO_FAULTS`` environment variable (inherited by fork- and
  spawn-started workers alike), e.g.::

      REPRO_FAULTS="worker.kill:problem=PM:attempt=0, problem.stall:delay=30"

* ``CaffeineSettings.fault_injection`` with the same syntax -- installed
  when an engine (or session worker) is constructed from those settings,
  which travels with per-problem settings through process pools.

Each comma-separated spec is ``point[:key=value]...``.  The reserved keys
``times`` (how often the spec may fire; default 1; ``inf`` = unlimited) and
``delay`` (seconds, for ``problem.stall``) configure the spec itself; every
other ``key=value`` pair is a *condition* matched against the context the
fault point supplies (``problem``, ``attempt``, ``path``, ...) -- a spec
fires only when all its conditions match, which is what makes scenarios
like "kill the PM worker, but only on its first attempt" deterministic.

Fire counts are **per process**: a retried worker is a fresh process and
starts its counts at zero, so attempt-conditioned specs (not ``times``)
are the way to distinguish attempts across process boundaries.  A given
spec string installs at most once per process
(:func:`install_from_string` is idempotent), so serial sweeps that build
one engine per problem from the same settings do not stack duplicates.

The module is inert by default: with no env var and no installed specs a
fault point costs one function call and one list check.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

__all__ = ["InjectedFault", "FaultSpec", "parse_faults", "install",
           "install_from_string", "clear", "active_specs", "fire",
           "kill_point", "raise_point", "stall_point", "timeout_point",
           "corrupt_file_point", "ENV_VAR", "KNOWN_FAULT_POINTS"]

#: environment variable holding a fault-spec string (see module docstring)
ENV_VAR = "REPRO_FAULTS"

#: every fault point the production code declares (the table above, in the
#: same order).  An armed spec naming anything else never fires -- which is
#: why the ``fault-spec`` lint rule checks spec literals against this tuple.
KNOWN_FAULT_POINTS = ("worker.kill", "worker.exception", "problem.stall",
                      "fit.exception", "lock.timeout", "store.kill-mid-save",
                      "store.corrupt")

#: spec keys that configure the spec rather than matching context
_RESERVED_KEYS = ("times", "delay")


class InjectedFault(RuntimeError):
    """The exception raised by exception-type fault points."""


@dataclasses.dataclass
class FaultSpec:
    """One armed fault: a point name, match conditions and a fire budget."""

    point: str
    #: context conditions; every pair must match (string-compared) to fire
    conditions: Dict[str, str] = dataclasses.field(default_factory=dict)
    #: how many times this spec may fire in this process (None = unlimited)
    times: Optional[int] = 1
    #: seconds to sleep, for stall-type points
    delay: float = 0.0
    #: how often this spec has fired (per process)
    fired: int = 0

    def matches(self, point: str, context: Dict[str, object]) -> bool:
        if self.point != point:
            return False
        if self.times is not None and self.fired >= self.times:
            return False
        for key, expected in self.conditions.items():
            if key not in context or str(context[key]) != expected:
                return False
        return True

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [self.point]
        parts += [f"{k}={v}" for k, v in sorted(self.conditions.items())]
        if self.times != 1:
            parts.append(f"times={'inf' if self.times is None else self.times}")
        if self.delay:
            parts.append(f"delay={self.delay}")
        return ":".join(parts)


_LOCK = threading.Lock()
_SPECS: List[FaultSpec] = []
_INSTALLED_STRINGS: set = set()
_ENV_LOADED = False


def parse_faults(text: str) -> List[FaultSpec]:
    """Parse a spec string (see module docstring); raises ``ValueError``.

    Parsing never arms anything -- :func:`install_from_string` does -- so
    settings validation can use this to reject malformed strings early.
    """
    specs: List[FaultSpec] = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        tokens = chunk.split(":")
        point = tokens[0].strip()
        if not point:
            raise ValueError(f"fault spec {chunk!r} has an empty point name")
        conditions: Dict[str, str] = {}
        times: Optional[int] = 1
        delay = 0.0
        for token in tokens[1:]:
            if "=" not in token:
                raise ValueError(
                    f"fault spec {chunk!r}: expected key=value, got {token!r}")
            key, _, value = token.partition("=")
            key, value = key.strip(), value.strip()
            if key == "times":
                times = None if value in ("inf", "*") else int(value)
                if times is not None and times < 1:
                    raise ValueError(
                        f"fault spec {chunk!r}: times must be >= 1 or 'inf'")
            elif key == "delay":
                delay = float(value)
                if delay < 0:
                    raise ValueError(
                        f"fault spec {chunk!r}: delay must be non-negative")
            elif not key:
                raise ValueError(f"fault spec {chunk!r} has an empty key")
            else:
                conditions[key] = value
        specs.append(FaultSpec(point=point, conditions=conditions,
                               times=times, delay=delay))
    return specs


def install(point: str, *, times: Optional[int] = 1, delay: float = 0.0,
            **conditions: object) -> FaultSpec:
    """Arm one fault programmatically; returns the (mutable) spec."""
    spec = FaultSpec(point=point,
                     conditions={k: str(v) for k, v in conditions.items()},
                     times=times, delay=delay)
    with _LOCK:
        _load_env_locked()
        _SPECS.append(spec)
    return spec


def install_from_string(text: str) -> List[FaultSpec]:
    """Arm every spec in ``text`` (idempotent per exact string, per process)."""
    specs = parse_faults(text)
    with _LOCK:
        _load_env_locked()
        if text in _INSTALLED_STRINGS:
            return []
        _INSTALLED_STRINGS.add(text)
        _SPECS.extend(specs)
    return specs


def clear() -> None:
    """Disarm every fault and forget the env var (it is re-read on next use)."""
    global _ENV_LOADED
    with _LOCK:
        _SPECS.clear()
        _INSTALLED_STRINGS.clear()
        _ENV_LOADED = False


def active_specs() -> Tuple[FaultSpec, ...]:
    """Snapshot of the currently armed specs (env var included)."""
    with _LOCK:
        _load_env_locked()
        return tuple(_SPECS)


def _load_env_locked() -> None:
    global _ENV_LOADED
    if _ENV_LOADED:
        return
    _ENV_LOADED = True
    text = os.environ.get(ENV_VAR, "")
    if text:
        _INSTALLED_STRINGS.add(text)
        _SPECS.extend(parse_faults(text))


def fire(point: str, **context: object) -> Optional[FaultSpec]:
    """Consume and return the first armed spec matching ``point``/context.

    Returns None -- at the cost of one list check -- when nothing matches,
    which is the permanent fast path of production runs.
    """
    if not _ENV_LOADED and ENV_VAR not in os.environ and not _SPECS:
        return None  # cold fast path: nothing armed, nothing to load
    with _LOCK:
        _load_env_locked()
        for spec in _SPECS:
            if spec.matches(point, context):
                spec.fired += 1
                return spec
    return None


# ----------------------------------------------------------------------
# Effect helpers -- what the production fault points actually call.  The
# *site* names the point and supplies context; the helper applies the
# effect iff a spec matches.
# ----------------------------------------------------------------------
def kill_point(point: str, **context: object) -> None:
    """SIGKILL the current process if a matching spec is armed."""
    if fire(point, **context) is not None:
        os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover - process dies


def raise_point(point: str, **context: object) -> None:
    """Raise :class:`InjectedFault` if a matching spec is armed."""
    spec = fire(point, **context)
    if spec is not None:
        raise InjectedFault(f"injected fault at {point} "
                            f"(spec {spec}, context {context})")


def timeout_point(point: str, **context: object) -> None:
    """Raise :class:`TimeoutError` if a matching spec is armed."""
    spec = fire(point, **context)
    if spec is not None:
        raise TimeoutError(f"injected timeout at {point} "
                           f"(spec {spec}, context {context})")


def stall_point(point: str, **context: object) -> None:
    """Sleep for the matching spec's ``delay`` seconds, if one is armed."""
    spec = fire(point, **context)
    if spec is not None and spec.delay > 0:
        time.sleep(spec.delay)


def corrupt_file_point(point: str, path: Union[str, os.PathLike],
                       **context: object) -> bool:
    """Truncate ``path`` to half its size if a matching spec is armed.

    Truncation is the canonical corruption: it defeats the payload checksum
    (or the header parse, for small files) exactly like a torn write or a
    filesystem that lost the tail of the file.  Returns True if applied.
    """
    spec = fire(point, path=str(path), **context)
    if spec is None:
        return False
    target = Path(path)
    try:
        size = target.stat().st_size
        with open(target, "r+b") as handle:
            handle.truncate(size // 2)
        return True
    except OSError:  # pragma: no cover - injection best-effort
        return False
