"""Random generation of canonical-form expressions.

Random generation must follow the grammar's derivation rules; because the
typed AST of :mod:`repro.core.expression` encodes the canonical form, the
generator below produces only grammar-conforming trees.  Shape and size are
controlled by :class:`~repro.core.settings.CaffeineSettings`: the probability
of attaching a variable combo, of multiplying in (further) nonlinear operator
factors, of adding extra terms inside operator arguments, and the maximum
tree depth (the paper uses depth 8).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.compile import canonicalize_factors
from repro.core.expression import (
    BinaryOpTerm,
    ConditionalOpTerm,
    OpTerm,
    ProductTerm,
    UnaryOpTerm,
    WeightedSum,
    WeightedTerm,
)
from repro.core.functions import Operator
from repro.core.settings import CaffeineSettings
from repro.core.variable_combo import VariableCombo
from repro.core.weights import Weight

__all__ = ["ExpressionGenerator"]

#: pseudo-operator record used by conditional nodes
_LTE_OPERATOR = Operator("lte", 2, lambda a, b: a, "lte({0}, {1})", "LTE")


class ExpressionGenerator:
    """Generates random canonical-form trees for a fixed problem dimension."""

    def __init__(self, n_variables: int, settings: CaffeineSettings,
                 rng: Optional[np.random.Generator] = None) -> None:
        if n_variables < 1:
            raise ValueError("n_variables must be >= 1")
        self.n_variables = n_variables
        self.settings = settings
        self.rng = rng if rng is not None else np.random.default_rng(settings.random_seed)

    # ------------------------------------------------------------------
    # terminals
    # ------------------------------------------------------------------
    def random_weight(self) -> Weight:
        """A random ``W`` terminal within the configured exponent bound."""
        return Weight.random(self.rng, self.settings.weight_exponent_bound)

    def small_weight(self) -> Weight:
        """A weight whose interpreted value is of order one.

        Used for offsets inside operator arguments so that freshly generated
        expressions are numerically tame more often than not.
        """
        stored = self.rng.normal(loc=0.0, scale=1.0)
        sign = 1.0 if self.rng.random() < 0.5 else -1.0
        return Weight(stored=sign * (self.settings.weight_exponent_bound + stored),
                      exponent_bound=self.settings.weight_exponent_bound)

    def random_variable_combo(self) -> VariableCombo:
        """A random ``VC`` terminal."""
        return VariableCombo.random(
            self.n_variables, self.rng,
            max_exponent=min(2, self.settings.max_vc_exponent),
            expected_active=self.settings.expected_vc_variables,
            allow_negative=self.settings.allow_negative_exponents,
        )

    # ------------------------------------------------------------------
    # nonterminals
    # ------------------------------------------------------------------
    def random_weighted_sum(self, depth_budget: int) -> WeightedSum:
        """A random ``W + REPADD``: offset plus at least one weighted term."""
        terms: List[WeightedTerm] = [
            WeightedTerm(weight=self.small_weight(),
                         term=self.random_product_term(depth_budget - 1))
        ]
        while (len(terms) < 4
               and self.rng.random() < self.settings.p_extra_sum_term):
            terms.append(WeightedTerm(weight=self.small_weight(),
                                      term=self.random_product_term(depth_budget - 1)))
        return WeightedSum(offset=self.small_weight(), terms=terms)

    def random_op_term(self, depth_budget: int) -> OpTerm:
        """A random ``REPOP``: one nonlinear operator application."""
        function_set = self.settings.function_set
        choices: List[str] = []
        if function_set.unary:
            choices.append("unary")
        if function_set.binary:
            choices.append("binary")
        if self.settings.enable_conditionals:
            choices.append("conditional")
        if not choices:
            raise ValueError(
                "cannot generate an operator term: the function set is empty")
        kind = choices[int(self.rng.integers(len(choices)))]
        if kind == "unary":
            operator = function_set.unary[int(self.rng.integers(len(function_set.unary)))]
            return UnaryOpTerm(op=operator,
                               argument=self.random_weighted_sum(depth_budget - 1))
        if kind == "binary":
            operator = function_set.binary[int(self.rng.integers(len(function_set.binary)))]
            expression_arg = self.random_weighted_sum(depth_budget - 1)
            other_arg = (self.small_weight() if self.rng.random() < 0.5
                         else self.random_weighted_sum(depth_budget - 1))
            if self.rng.random() < 0.5:
                return BinaryOpTerm(op=operator, left=expression_arg, right=other_arg)
            return BinaryOpTerm(op=operator, left=other_arg, right=expression_arg)
        return ConditionalOpTerm(
            op=_LTE_OPERATOR,
            test=self.random_weighted_sum(depth_budget - 1),
            threshold=self.small_weight(),
            if_true=self.random_weighted_sum(depth_budget - 1),
            if_false=self.random_weighted_sum(depth_budget - 1),
        )

    def random_product_term(self, depth_budget: Optional[int] = None) -> ProductTerm:
        """A random ``REPVC`` -- the start symbol, i.e. one basis function."""
        if depth_budget is None:
            depth_budget = self.settings.max_tree_depth
        # An operator factor adds at least three levels below the product term
        # (operator -> weighted sum -> product term), so a budget below four
        # forces a VC-only term.
        can_use_operators = (depth_budget >= 4
                             and (self.settings.function_set.has_nonlinear_operators
                                  or self.settings.enable_conditionals))

        use_vc = self.rng.random() < self.settings.p_variable_combo
        ops: List[OpTerm] = []
        if can_use_operators:
            while (len(ops) < 3
                   and self.rng.random() < self.settings.p_operator_factor):
                ops.append(self.random_op_term(depth_budget - 1))
        if not use_vc and not ops:
            # REPVC must derive to at least a VC or an operator factor.
            if can_use_operators and self.rng.random() < 0.5:
                ops.append(self.random_op_term(depth_budget - 1))
            else:
                use_vc = True
        term = ProductTerm(vc=self.random_variable_combo() if use_vc else None,
                           ops=ops)
        # Fresh trees are born canonical: commutative factor lists are
        # sorted so order-variants of one product share a structural key
        # and a compiled kernel (see repro.core.compile.canonicalize_factors).
        # Canonicalization also seeds the on-node structural-key memos that
        # the shared-genome variation layer and the evaluation cache reuse;
        # generated trees are never mutated in place afterwards (variation
        # path-copies), so the memos stay valid for the tree's lifetime.
        canonicalize_factors(term)
        return term

    # ------------------------------------------------------------------
    def random_basis_functions(self, n_bases: Optional[int] = None
                               ) -> List[ProductTerm]:
        """A fresh list of basis functions for a new individual."""
        if n_bases is None:
            n_bases = int(self.rng.integers(
                1, self.settings.max_initial_basis_functions + 1))
        if n_bases < 1:
            raise ValueError("n_bases must be >= 1")
        n_bases = min(n_bases, self.settings.max_basis_functions)
        return [self.random_product_term() for _ in range(n_bases)]
