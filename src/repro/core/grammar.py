"""The CAFFEINE canonical-form grammar.

The paper defines its grammar in a separate text file which the tool parses;
this module does the same.  :data:`CAFFEINE_GRAMMAR_TEXT` is the default
grammar in the paper's notation, :func:`parse_grammar` turns such text into a
:class:`Grammar` object (non-terminals, derivation rules, terminals), and
:func:`function_set_from_grammar` extracts the enabled operator set so the
typed expression generator stays consistent with the declared grammar.

The typed AST classes in :mod:`repro.core.expression` satisfy this grammar by
construction; :func:`validate_expression` double-checks a tree against a
(possibly user-edited) grammar -- it verifies that every operator used is
declared and that the structural constraints of the canonical form hold.
This is what lets a designer "turn off any of the rules": delete an operator
from the grammar text and every generated or validated expression respects
the restriction.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Dict, List, Sequence, Tuple

from repro.core.expression import (
    BinaryOpTerm,
    ConditionalOpTerm,
    ExpressionNode,
    ProductTerm,
    UnaryOpTerm,
    WeightedSum,
    iter_nodes,
)
from repro.core.functions import (
    BINARY_OPERATORS,
    FunctionSet,
    UNARY_OPERATORS,
)

__all__ = [
    "GrammarRule",
    "Grammar",
    "GrammarError",
    "CAFFEINE_GRAMMAR_TEXT",
    "parse_grammar",
    "default_grammar",
    "grammar_text_for_function_set",
    "function_set_from_grammar",
    "validate_expression",
]


class GrammarError(ValueError):
    """Raised for malformed grammar text or expressions violating the grammar."""


#: The default CAFFEINE grammar, in the notation of the paper (Section 5).
CAFFEINE_GRAMMAR_TEXT = """
# CAFFEINE canonical-form grammar.
# Terminal symbols are quoted; nonterminals are bare upper-case words.
# The start symbol is REPVC; one tree is used per basis function and basis
# functions are linearly weighted by least-squares learning.

REPVC   => 'VC' | REPVC '*' REPOP | REPOP
REPOP   => REPOP '*' REPOP | 1OP '(' 'W' '+' REPADD ')' | 2OP '(' 2ARGS ')' | 4OP '(' 4ARGS ')'
2ARGS   => 'W' '+' REPADD ',' MAYBEW | MAYBEW ',' 'W' '+' REPADD
4ARGS   => 'W' '+' REPADD ',' MAYBEW ',' 'W' '+' REPADD ',' 'W' '+' REPADD
MAYBEW  => 'W' | 'W' '+' REPADD
REPADD  => 'W' '*' REPVC | REPADD '+' REPADD
1OP     => 'SQRT' | 'LOGE' | 'LOG10' | 'INV' | 'ABS' | 'SQUARE' | 'SIN' | 'COS' | 'TAN' | 'MAX0' | 'MIN0' | 'POW2' | 'POW10'
2OP     => 'DIVIDE' | 'POW' | 'MAX' | 'MIN'
4OP     => 'LTE'
"""


@dataclasses.dataclass(frozen=True)
class GrammarRule:
    """One derivation rule: a nonterminal and its alternative productions.

    Each production is a tuple of symbols; terminal symbols carry their
    quotes stripped and are flagged in :attr:`Grammar.terminals`.
    """

    nonterminal: str
    productions: Tuple[Tuple[str, ...], ...]


class Grammar:
    """A parsed context-free grammar with CAFFEINE's conventions."""

    def __init__(self, rules: Sequence[GrammarRule], start_symbol: str = "REPVC") -> None:
        self._rules: Dict[str, GrammarRule] = {}
        for rule in rules:
            if rule.nonterminal in self._rules:
                raise GrammarError(f"duplicate rule for {rule.nonterminal!r}")
            self._rules[rule.nonterminal] = rule
        if start_symbol not in self._rules:
            raise GrammarError(f"start symbol {start_symbol!r} has no rule")
        self.start_symbol = start_symbol

    # ------------------------------------------------------------------
    @property
    def nonterminals(self) -> Tuple[str, ...]:
        return tuple(self._rules.keys())

    @property
    def terminals(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for rule in self._rules.values():
            for production in rule.productions:
                for symbol in production:
                    if symbol not in self._rules and symbol not in seen:
                        seen[symbol] = None
        return tuple(seen.keys())

    def rule(self, nonterminal: str) -> GrammarRule:
        try:
            return self._rules[nonterminal]
        except KeyError as exc:
            raise GrammarError(f"no rule for nonterminal {nonterminal!r}") from exc

    def has_rule(self, nonterminal: str) -> bool:
        return nonterminal in self._rules

    def operator_symbols(self, category: str) -> Tuple[str, ...]:
        """Terminal symbols of an operator category rule (``"1OP"``, ``"2OP"``, ...).

        Returns an empty tuple when the category is absent (e.g. a grammar
        with all nonlinear functions removed).
        """
        if not self.has_rule(category):
            return ()
        symbols: List[str] = []
        for production in self.rule(category).productions:
            if len(production) != 1:
                raise GrammarError(
                    f"operator rule {category} must have single-symbol productions")
            symbols.append(production[0])
        return tuple(symbols)

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Render the grammar back to the paper's text notation."""
        lines = []
        for rule in self._rules.values():
            alternatives = []
            for production in rule.productions:
                rendered = " ".join(
                    symbol if symbol in self._rules else f"'{symbol}'"
                    for symbol in production)
                alternatives.append(rendered)
            lines.append(f"{rule.nonterminal} => " + " | ".join(alternatives))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Grammar(start={self.start_symbol!r}, "
                f"nonterminals={len(self._rules)})")


_TOKEN_PATTERN = re.compile(r"'[^']*'|\S+")
#: Nonterminal names may start with a digit (the paper uses 1OP, 2OP, 2ARGS...).
_NONTERMINAL_PATTERN = re.compile(r"^[A-Za-z0-9_]+$")


def parse_grammar(text: str, start_symbol: str = "REPVC") -> Grammar:
    """Parse grammar text in the paper's notation into a :class:`Grammar`.

    Lines look like ``NONTERM => alt | alt``; alternatives are whitespace-
    separated symbols; quoted symbols are terminals.  ``#`` starts a comment.
    A rule may continue over several lines as long as continuation lines do
    not contain ``=>``.
    """
    # Merge continuation lines.
    logical_lines: List[str] = []
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if "=>" in line or not logical_lines:
            logical_lines.append(line)
        else:
            logical_lines[-1] += " " + line

    rules: List[GrammarRule] = []
    for line in logical_lines:
        if "=>" not in line:
            raise GrammarError(f"malformed grammar line (no '=>'): {line!r}")
        head, body = line.split("=>", 1)
        nonterminal = head.strip()
        if not nonterminal or not _NONTERMINAL_PATTERN.match(nonterminal):
            raise GrammarError(f"invalid nonterminal name {nonterminal!r}")
        productions: List[Tuple[str, ...]] = []
        for alternative in body.split("|"):
            tokens = _TOKEN_PATTERN.findall(alternative.strip())
            if not tokens:
                raise GrammarError(f"empty production in rule {nonterminal!r}")
            symbols = tuple(t[1:-1] if t.startswith("'") and t.endswith("'") else t
                            for t in tokens)
            productions.append(symbols)
        rules.append(GrammarRule(nonterminal=nonterminal,
                                 productions=tuple(productions)))
    return Grammar(rules, start_symbol=start_symbol)


def default_grammar() -> Grammar:
    """The paper's grammar, parsed from :data:`CAFFEINE_GRAMMAR_TEXT`."""
    return parse_grammar(CAFFEINE_GRAMMAR_TEXT)


_SYMBOL_TO_UNARY = {op.symbol: name for name, op in UNARY_OPERATORS.items()}
_SYMBOL_TO_BINARY = {op.symbol: name for name, op in BINARY_OPERATORS.items()}


def grammar_text_for_function_set(function_set: FunctionSet,
                                  enable_conditionals: bool = False) -> str:
    """Generate grammar text whose operator rules match a function set."""
    lines = [
        "REPVC   => 'VC' | REPVC '*' REPOP | REPOP",
    ]
    repop_alternatives = ["REPOP '*' REPOP"]
    if function_set.unary:
        repop_alternatives.append("1OP '(' 'W' '+' REPADD ')'")
    if function_set.binary:
        repop_alternatives.append("2OP '(' 2ARGS ')'")
    if enable_conditionals:
        repop_alternatives.append("4OP '(' 4ARGS ')'")
    if len(repop_alternatives) > 1:
        lines.append("REPOP   => " + " | ".join(repop_alternatives))
        lines.append("2ARGS   => 'W' '+' REPADD ',' MAYBEW | MAYBEW ',' 'W' '+' REPADD")
        lines.append("MAYBEW  => 'W' | 'W' '+' REPADD")
    lines.append("REPADD  => 'W' '*' REPVC | REPADD '+' REPADD")
    if function_set.unary:
        lines.append("1OP     => " + " | ".join(f"'{op.symbol}'"
                                                for op in function_set.unary))
    if function_set.binary:
        lines.append("2OP     => " + " | ".join(f"'{op.symbol}'"
                                                for op in function_set.binary))
    if enable_conditionals:
        lines.append("4ARGS   => 'W' '+' REPADD ',' MAYBEW ',' 'W' '+' REPADD ',' 'W' '+' REPADD")
        lines.append("4OP     => 'LTE'")
    return "\n".join(lines)


def function_set_from_grammar(grammar: Grammar) -> FunctionSet:
    """Extract the enabled operator set from a grammar's 1OP/2OP rules."""
    unary_names: List[str] = []
    for symbol in grammar.operator_symbols("1OP"):
        if symbol not in _SYMBOL_TO_UNARY:
            raise GrammarError(f"unknown single-input operator symbol {symbol!r}")
        unary_names.append(_SYMBOL_TO_UNARY[symbol])
    binary_names: List[str] = []
    for symbol in grammar.operator_symbols("2OP"):
        if symbol not in _SYMBOL_TO_BINARY:
            raise GrammarError(f"unknown double-input operator symbol {symbol!r}")
        binary_names.append(_SYMBOL_TO_BINARY[symbol])
    return FunctionSet(unary=unary_names, binary=binary_names)


def validate_expression(root: ExpressionNode, grammar: Grammar) -> None:
    """Check that a canonical-form tree only uses constructs the grammar allows.

    Raises :class:`GrammarError` on the first violation: an operator whose
    terminal symbol is not declared in the grammar's ``1OP``/``2OP``/``4OP``
    rules, a conditional when the grammar has no ``4OP`` rule, or a product
    term with neither variable combo nor operator factors.
    """
    allowed_unary = set(grammar.operator_symbols("1OP"))
    allowed_binary = set(grammar.operator_symbols("2OP"))
    allow_conditionals = bool(grammar.operator_symbols("4OP"))

    for node in iter_nodes(root):
        if isinstance(node, ProductTerm):
            if node.vc is None and not node.ops:
                raise GrammarError("product term with no content")
        elif isinstance(node, UnaryOpTerm):
            if node.op.symbol not in allowed_unary:
                raise GrammarError(
                    f"single-input operator {node.op.name!r} is not in the grammar")
        elif isinstance(node, ConditionalOpTerm):
            if not allow_conditionals:
                raise GrammarError("conditionals are not allowed by the grammar")
        elif isinstance(node, BinaryOpTerm):
            if node.op.symbol not in allowed_binary:
                raise GrammarError(
                    f"double-input operator {node.op.name!r} is not in the grammar")
            if isinstance(node.left, WeightedSum) is False and \
               isinstance(node.right, WeightedSum) is False:
                raise GrammarError(
                    "binary operator with two constant arguments violates 2ARGS")
