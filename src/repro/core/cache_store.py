"""Disk persistence for the fingerprinted basis-column cache.

A :class:`~repro.core.evaluation.BasisColumnCache` holds evaluated basis
columns keyed by ``(dataset key, basis key)``, where the dataset key is the
``(dataset fingerprint, function-set fingerprint)`` pair and the basis key
is the tree's exact evaluation-recipe identity (a structural key, or a
``(skeleton, params)`` pair under the compiled column backend).  Those keys
are already *globally* unambiguous -- same key, same column, whatever run
produced it -- which is what makes the cache safe to persist and reload:

* :meth:`ColumnCacheStore.save` writes a cache's entries to one file
  (atomically, via a temp file + ``os.replace``) with a versioned header
  and a payload checksum, merging with whatever the file already holds so
  one run can never erase another run's namespaces;
* :meth:`ColumnCacheStore.load_into` merges a file's entries into a live
  cache.  Entries for other datasets or function sets ride along harmlessly
  (their key prefix can never match a different run's lookups; pass
  ``dataset_key`` to keep them out of the LRU entirely), and any kind of
  damage -- missing file, truncation, corruption, a foreign or future
  format version -- degrades to a cold start with a warning rather than an
  error.

Repeated experiment sweeps (the figure/table drivers, benchmark runs, CI)
can therefore start *warm*: ``run_caffeine(column_cache_path=...)`` and the
drivers' ``column_cache_path`` arguments wire a store through the existing
shared-cache machinery, so the first run of a sweep pays for the columns
and every later run -- even in a fresh process -- reuses them.

Concurrent writers are safe: :meth:`ColumnCacheStore.save` runs its whole
read-merge-write cycle under an advisory :class:`FileLock` on a sidecar
``<path>.lock`` file, so two processes saving to the same path serialize
and the second merges over the first instead of overwriting it (the
last-writer-wins hazard of the unlocked protocol).  Loads need no lock --
the atomic ``os.replace`` write means a reader always sees a complete
file, before or after any concurrent save.

The format is a pickle of pure-data keys plus float arrays, guarded by a
magic string, a format version and a SHA-256 checksum.  Like any pickle,
the file is *trusted local state*, not an interchange format: load caches
only from paths you (or your CI job) wrote.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
import warnings
from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np

from repro.core.evaluation import BasisColumnCache

try:  # POSIX (Linux/macOS): kernel-released advisory locks
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

__all__ = ["FileLock", "ColumnCacheStore"]


class FileLock:
    """Reentrant advisory lock on one filesystem path.

    On POSIX the lock is ``flock``-based: it is released automatically when
    the holding process dies, so a crashed writer can never deadlock the
    next one.  Where ``fcntl`` is unavailable the lock degrades to an
    exclusive-create spin lock with stale-lock breaking (a leftover lock
    file older than ``stale_after`` seconds is reclaimed with a warning).

    The lock is *advisory*: it only excludes other :class:`FileLock` users
    (which is exactly what the cache-store protocol needs).  One instance
    is safe to share across threads: an internal :class:`threading.RLock`
    makes acquisition reentrant *per thread* while excluding other threads
    -- flock alone cannot do that, since within one process a second
    acquisition through the same open file would succeed.  Separate
    instances on the same path exclude each other through the file itself.
    """

    def __init__(self, path: Union[str, os.PathLike],
                 timeout: Optional[float] = 60.0,
                 poll_interval: float = 0.05,
                 stale_after: float = 120.0) -> None:
        self.path = Path(path)
        self.timeout = timeout
        self.poll_interval = poll_interval
        self.stale_after = stale_after
        self._handle: Optional[int] = None
        self._depth = 0
        import threading

        self._thread_lock = threading.RLock()

    @property
    def held(self) -> bool:
        return self._depth > 0

    # ------------------------------------------------------------------
    def acquire(self) -> None:
        """Take the lock, blocking up to ``timeout`` seconds.

        Reentrant for the holding thread; other threads (and other
        processes) block until the holder fully releases.
        """
        start = time.monotonic()
        acquired = self._thread_lock.acquire(
            timeout=-1 if self.timeout is None else self.timeout)
        if not acquired:
            raise TimeoutError(
                f"could not lock {self.path} within {self.timeout} s "
                f"(held by another thread)")
        try:
            if self._depth == 0:
                # One budget covers both waits (thread lock above, file
                # lock below) so the total never exceeds `timeout`.
                remaining = (None if self.timeout is None else
                             max(0.0, self.timeout
                                 - (time.monotonic() - start)))
                self.path.parent.mkdir(parents=True, exist_ok=True)
                if fcntl is not None:
                    self._acquire_flock(remaining)
                else:  # pragma: no cover - exercised on non-POSIX hosts
                    self._acquire_exclusive_create(remaining)
            self._depth += 1
        except BaseException:
            self._thread_lock.release()
            raise

    def release(self) -> None:
        """Drop one level of the (reentrant) lock."""
        if self._depth == 0:
            raise RuntimeError(f"release() of unheld lock {self.path}")
        self._depth -= 1
        try:
            if self._depth > 0:
                return
            handle, self._handle = self._handle, None
            if fcntl is not None:
                try:
                    fcntl.flock(handle, fcntl.LOCK_UN)
                finally:
                    os.close(handle)
            else:  # pragma: no cover - non-POSIX fallback
                try:
                    os.unlink(self.path)
                except OSError:
                    pass
        finally:
            self._thread_lock.release()

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    # ------------------------------------------------------------------
    def _acquire_flock(self, timeout: Optional[float]) -> None:
        import errno

        #: errnos meaning "someone else holds the lock" -- anything else
        #: (ENOLCK, EBADF, an NFS mount without lock support...) is a real
        #: failure and must surface immediately, not as a phantom timeout
        contended = (errno.EWOULDBLOCK, errno.EAGAIN, errno.EACCES)
        handle = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            if timeout is None:
                fcntl.flock(handle, fcntl.LOCK_EX)
            else:
                deadline = time.monotonic() + timeout
                while True:
                    try:
                        fcntl.flock(handle, fcntl.LOCK_EX | fcntl.LOCK_NB)
                        break
                    except OSError as error:
                        if error.errno not in contended:
                            raise
                        if time.monotonic() >= deadline:
                            raise TimeoutError(
                                f"could not lock {self.path} within "
                                f"{self.timeout} s") from None
                        time.sleep(self.poll_interval)
        except BaseException:
            os.close(handle)
            raise
        self._handle = handle

    def _acquire_exclusive_create(self,
                                  timeout: Optional[float]
                                  ) -> None:  # pragma: no cover
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        while True:
            try:
                handle = os.open(self.path,
                                 os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
                os.close(handle)
                self._handle = -1
                return
            except FileExistsError:
                try:
                    age = time.time() - self.path.stat().st_mtime
                except OSError:
                    age = 0.0
                if age > self.stale_after:
                    warnings.warn(
                        f"breaking stale lock file {self.path} "
                        f"(age {age:.0f} s)", RuntimeWarning, stacklevel=3)
                    try:
                        os.unlink(self.path)
                    except OSError:
                        pass
                    continue
                if deadline is not None and time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"could not lock {self.path} within "
                        f"{self.timeout} s") from None
                time.sleep(self.poll_interval)


class ColumnCacheStore:
    """Save/load a :class:`BasisColumnCache` to/from one file.

    The store is bound to a path; :meth:`save` and :meth:`load_into` are the
    whole protocol.  A missing file is a normal cold start (no warning);
    anything unreadable -- truncated, corrupted, wrong magic, unknown
    version -- is reported as a warning and treated as empty, so a damaged
    cache file can never break a run, only un-warm it.

    Saves serialize through an advisory :class:`FileLock` on the sidecar
    ``<path>.lock``: concurrent sweeps writing the same store merge instead
    of racing (see :meth:`save`).  The lock object is exposed as
    :attr:`lock` for callers that want a larger critical section (e.g. a
    read-modify-write spanning several stores); it is reentrant, so such a
    caller's ``save`` calls nest harmlessly.
    """

    #: file magic; changing the on-disk layout bumps FORMAT_VERSION instead
    MAGIC = b"caffeine-column-cache"
    FORMAT_VERSION = 1

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = Path(path)
        #: advisory lock guarding the save protocol's read-merge-write
        self.lock = FileLock(str(self.path) + ".lock")

    # ------------------------------------------------------------------
    def save(self, cache: BasisColumnCache, merge: bool = True) -> int:
        """Persist every entry of ``cache``; returns the number written.

        With ``merge`` (the default) entries already stored at the path are
        kept alongside the cache's (the cache wins on key collisions, though
        by key construction both sides are bit-identical anyway).  This is
        what makes one file safely shareable: a run whose LRU evicted -- or
        never loaded -- another run's namespaces cannot erase them by
        saving.  The file therefore only grows; delete it to reclaim space.
        ``merge=False`` writes exactly the cache's entries.

        The read-merge-write cycle runs under the store's advisory
        :attr:`lock`, so *simultaneous* savers serialize: the second to
        arrive re-reads the file the first just wrote and merges over it,
        and neither side's columns are lost (the last-writer-wins hazard of
        an unlocked merge).  The write itself is also atomic (temp file in
        the target directory, then ``os.replace``), so a crash mid-save
        leaves the previous file -- or no file -- never a torn one.  Parent
        directories are created.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.lock:
            entries = [(key, np.ascontiguousarray(column))
                       for key, column in cache.items()]
            if merge:
                fresh = {key for key, _column in entries}
                stored = self._read_payload()
                if stored:
                    entries.extend((key, column) for key, column in stored
                                   if key not in fresh)
            payload = pickle.dumps(
                {"format_version": self.FORMAT_VERSION, "entries": entries},
                protocol=pickle.HIGHEST_PROTOCOL)
            digest = hashlib.sha256(payload).hexdigest().encode("ascii")
            header = b"%s\n%d\n%s\n" % (self.MAGIC, self.FORMAT_VERSION,
                                        digest)
            fd, temp_name = tempfile.mkstemp(dir=str(self.path.parent),
                                             prefix=self.path.name + ".tmp-")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(header)
                    handle.write(payload)
                os.replace(temp_name, self.path)
            except BaseException:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
                raise
        return len(entries)

    # ------------------------------------------------------------------
    def load_into(self, cache: BasisColumnCache,
                  dataset_key: Optional[Tuple] = None) -> int:
        """Merge the stored entries into ``cache``; returns how many landed.

        ``dataset_key`` optionally restricts loading to one run's namespace
        (the evaluator's ``(dataset fingerprint, function-set fingerprint)``
        pair) -- other entries are skipped instead of occupying LRU room.
        Keys already present in ``cache`` keep their current column (both
        are bit-identical by key construction, and skipping the write keeps
        their LRU recency honest).  Loaded entries do not touch the
        hit/miss statistics.
        """
        payload = self._read_payload()
        if payload is None:
            return 0
        loaded = 0
        for key, column in payload:
            if dataset_key is not None:
                if not (isinstance(key, tuple) and len(key) == 2
                        and key[0] == dataset_key):
                    continue
            if key in cache:
                continue
            column = np.asarray(column)
            column.flags.writeable = False
            cache.put(key, column)
            loaded += 1
        return loaded

    def load(self, max_entries: int = 20000,
             dataset_key: Optional[Tuple] = None) -> BasisColumnCache:
        """A fresh cache holding the stored entries (empty on any damage)."""
        cache = BasisColumnCache(max_entries)
        self.load_into(cache, dataset_key=dataset_key)
        return cache

    # ------------------------------------------------------------------
    def _read_payload(self):
        """The stored entry list, or None for any unreadable/invalid file."""
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return None  # a cold start, not a problem
        except OSError as error:
            self._warn(f"unreadable ({error})")
            return None
        try:
            magic, version_text, digest, payload = raw.split(b"\n", 3)
        except ValueError:
            self._warn("truncated header")
            return None
        if magic != self.MAGIC:
            self._warn("not a column-cache file (bad magic)")
            return None
        if version_text != b"%d" % self.FORMAT_VERSION:
            self._warn(f"unsupported format version {version_text!r} "
                       f"(this build reads version {self.FORMAT_VERSION})")
            return None
        if hashlib.sha256(payload).hexdigest().encode("ascii") != digest:
            self._warn("checksum mismatch (truncated or corrupted)")
            return None
        try:
            document = pickle.loads(payload)
            entries = document["entries"]
        except Exception as error:  # damaged pickle, wrong schema, ...
            self._warn(f"undecodable payload ({type(error).__name__}: {error})")
            return None
        if not isinstance(entries, list):
            self._warn("malformed payload (entries is not a list)")
            return None
        return entries

    def _warn(self, reason: str) -> None:
        warnings.warn(
            f"ignoring column-cache file {self.path}: {reason}; "
            f"starting cold", RuntimeWarning, stacklevel=4)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ColumnCacheStore({str(self.path)!r})"
