"""Disk persistence: the versioned/checksummed store envelope and its users.

Two kinds of run state persist across processes, both through one shared
on-disk envelope (:class:`_VersionedFileStore`):

* :class:`ColumnCacheStore` -- evaluated basis columns of a
  :class:`~repro.core.evaluation.BasisColumnCache`, keyed by
  ``(dataset key, basis key)``.  Those keys are *globally* unambiguous --
  same key, same column, whatever run produced it -- which is what makes
  the cache safe to persist, merge and reload across sweeps.
* :class:`RunCheckpointStore` -- crash-safe generation snapshots of a
  running :class:`~repro.core.engine.CaffeineEngine` (RNG state,
  population, rank arrays, history), one named slot per problem, written
  periodically so an interrupted run warm-restarts **bit-identically**
  instead of starting over (see ``CaffeineEngine.run`` and
  ``Session.resume``).

The envelope gives both the same durability properties:

* **atomic writes** -- a temp file in the target directory plus
  ``os.replace``, so a crash (even ``SIGKILL``) mid-save leaves the
  previous file version readable, never a torn one;
* **corruption detection** -- a magic string, a format version and a
  SHA-256 payload checksum; any damage (truncation, torn bytes, an
  undecodable pickle) degrades to a cold start with a warning rather than
  an error, and the damaged file is **quarantined** (renamed to
  ``<path>.corrupt-<n>``) so the next run does not trip over -- or
  silently keep cold-starting over -- the same bad bytes.  Files that are
  *valid but foreign* (wrong magic: probably a wrong path; a future format
  version: probably a newer build's good file) are left in place;
* **merge-under-lock writers** -- the whole read-merge-write cycle runs
  under an advisory :class:`FileLock` on a sidecar ``<path>.lock``, so two
  processes saving the same path serialize and the second merges over the
  first instead of overwriting it.  Loads need no lock: the atomic replace
  means a reader always sees a complete file, before or after any
  concurrent save.

The format is a pickle of pure-data keys plus float arrays, guarded by the
header above.  Like any pickle, the files are *trusted local state*, not an
interchange format: load only from paths you (or your CI job) wrote.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
import warnings
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.core import faults
from repro.core.evaluation import BasisColumnCache

try:  # POSIX (Linux/macOS): kernel-released advisory locks
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

__all__ = ["FileLock", "ColumnCacheStore", "RunCheckpointStore"]


class FileLock:
    """Reentrant advisory lock on one filesystem path.

    On POSIX the lock is ``flock``-based: it is released automatically when
    the holding process dies, so a crashed writer can never deadlock the
    next one.  Where ``fcntl`` is unavailable the lock degrades to an
    exclusive-create spin lock with stale-lock breaking (a leftover lock
    file older than ``stale_after`` seconds is reclaimed with a warning).

    The lock is *advisory*: it only excludes other :class:`FileLock` users
    (which is exactly what the cache-store protocol needs).  One instance
    is safe to share across threads: an internal :class:`threading.RLock`
    makes acquisition reentrant *per thread* while excluding other threads
    -- flock alone cannot do that, since within one process a second
    acquisition through the same open file would succeed.  Separate
    instances on the same path exclude each other through the file itself.
    """

    def __init__(self, path: Union[str, os.PathLike],
                 timeout: Optional[float] = 60.0,
                 poll_interval: float = 0.05,
                 stale_after: float = 120.0) -> None:
        self.path = Path(path)
        self.timeout = timeout
        self.poll_interval = poll_interval
        self.stale_after = stale_after
        self._handle: Optional[int] = None
        self._depth = 0
        import threading

        self._thread_lock = threading.RLock()

    @property
    def held(self) -> bool:
        return self._depth > 0

    # ------------------------------------------------------------------
    def acquire(self) -> None:
        """Take the lock, blocking up to ``timeout`` seconds.

        Reentrant for the holding thread; other threads (and other
        processes) block until the holder fully releases.
        """
        faults.timeout_point("lock.timeout", path=str(self.path))
        start = time.monotonic()
        acquired = self._thread_lock.acquire(
            timeout=-1 if self.timeout is None else self.timeout)
        if not acquired:
            raise TimeoutError(
                f"could not lock {self.path} within {self.timeout} s "
                f"(held by another thread)")
        try:
            if self._depth == 0:
                # One budget covers both waits (thread lock above, file
                # lock below) so the total never exceeds `timeout`.
                remaining = (None if self.timeout is None else
                             max(0.0, self.timeout
                                 - (time.monotonic() - start)))
                self.path.parent.mkdir(parents=True, exist_ok=True)
                if fcntl is not None:
                    self._acquire_flock(remaining)
                else:  # pragma: no cover - exercised on non-POSIX hosts
                    self._acquire_exclusive_create(remaining)
            self._depth += 1
        except BaseException:
            self._thread_lock.release()
            raise

    def release(self) -> None:
        """Drop one level of the (reentrant) lock."""
        if self._depth == 0:
            raise RuntimeError(f"release() of unheld lock {self.path}")
        self._depth -= 1
        try:
            if self._depth > 0:
                return
            handle, self._handle = self._handle, None
            if fcntl is not None:
                try:
                    fcntl.flock(handle, fcntl.LOCK_UN)
                finally:
                    os.close(handle)
            else:  # pragma: no cover - non-POSIX fallback
                try:
                    os.unlink(self.path)
                except OSError:
                    pass
        finally:
            self._thread_lock.release()

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    # ------------------------------------------------------------------
    def _acquire_flock(self, timeout: Optional[float]) -> None:
        import errno

        #: errnos meaning "someone else holds the lock" -- anything else
        #: (ENOLCK, EBADF, an NFS mount without lock support...) is a real
        #: failure and must surface immediately, not as a phantom timeout
        contended = (errno.EWOULDBLOCK, errno.EAGAIN, errno.EACCES)
        handle = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            if timeout is None:
                fcntl.flock(handle, fcntl.LOCK_EX)
            else:
                deadline = time.monotonic() + timeout
                while True:
                    try:
                        fcntl.flock(handle, fcntl.LOCK_EX | fcntl.LOCK_NB)
                        break
                    except OSError as error:
                        if error.errno not in contended:
                            raise
                        if time.monotonic() >= deadline:
                            # Report the budget actually waited here: the
                            # configured self.timeout may have been partly
                            # spent on the thread lock in acquire().
                            raise TimeoutError(
                                f"could not lock {self.path} within "
                                f"{timeout:.3g} s (of a {self.timeout} s "
                                f"budget)") from None
                        time.sleep(self.poll_interval)
        except BaseException:
            os.close(handle)
            raise
        self._handle = handle

    def _acquire_exclusive_create(self,
                                  timeout: Optional[float]
                                  ) -> None:  # pragma: no cover
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        while True:
            try:
                handle = os.open(self.path,
                                 os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
                os.close(handle)
                self._handle = -1
                return
            except FileExistsError:
                try:
                    # repro-lint: allow[determinism] -- stale-lock age is wall-clock bookkeeping, never reaches results
                    age = time.time() - self.path.stat().st_mtime
                except OSError:
                    age = 0.0
                if age > self.stale_after:
                    warnings.warn(
                        f"breaking stale lock file {self.path} "
                        f"(age {age:.0f} s)", RuntimeWarning, stacklevel=3)
                    try:
                        os.unlink(self.path)
                    except OSError:
                        pass
                    continue
                if deadline is not None and time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"could not lock {self.path} within "
                        f"{timeout:.3g} s (of a {self.timeout} s "
                        f"budget)") from None
                time.sleep(self.poll_interval)


class _VersionedFileStore:
    """The shared envelope: atomic, checksummed, lock-merged file persistence.

    Subclasses set :attr:`MAGIC`, :attr:`FORMAT_VERSION` and :attr:`KIND`
    (the human-readable noun used in warnings) and talk to the disk only
    through :meth:`_write_document` / :meth:`_read_document`, inheriting
    the atomic-replace write, the header + checksum validation, the
    damage-quarantine policy and the advisory save lock.
    """

    MAGIC: bytes = b""
    FORMAT_VERSION: int = 1
    KIND: str = "store"

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = Path(path)
        #: advisory lock guarding the save protocol's read-merge-write
        self.lock = FileLock(str(self.path) + ".lock")

    # ------------------------------------------------------------------
    def _write_document(self, document: dict) -> None:
        """Atomically replace the file with ``document`` (header + payload).

        Callers hold :attr:`lock` around their read-merge-write cycle; the
        write itself is atomic regardless (temp file in the target
        directory, then ``os.replace``), so a crash -- even a ``SIGKILL``
        -- between any two instructions here leaves the previous file
        version (or no file), never a torn one.
        """
        payload = pickle.dumps(document, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(payload).hexdigest().encode("ascii")
        header = b"%s\n%d\n%s\n" % (self.MAGIC, self.FORMAT_VERSION, digest)
        fd, temp_name = tempfile.mkstemp(dir=str(self.path.parent),
                                         prefix=self.path.name + ".tmp-")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(header)
                handle.write(payload)
            faults.kill_point("store.kill-mid-save", path=str(self.path))
            os.replace(temp_name, self.path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        faults.corrupt_file_point("store.corrupt", self.path)

    # ------------------------------------------------------------------
    def _read_document(self) -> Optional[dict]:
        """The stored document, or None for any unreadable/invalid file.

        Damage that proves the file's *bytes* are broken -- a truncated
        header, a checksum mismatch, an undecodable or malformed payload --
        quarantines the file (rename to ``<path>.corrupt-<n>``) so later
        runs start genuinely cold instead of re-tripping over it; the
        warning names the quarantine path.  A *foreign* file (wrong magic:
        likely a mis-pointed path; a future format version: likely a newer
        build's perfectly good file) is warned about but left alone.
        """
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return None  # a cold start, not a problem
        except OSError as error:
            self._warn(f"unreadable ({error})")
            return None
        try:
            magic, version_text, digest, payload = raw.split(b"\n", 3)
        except ValueError:
            self._warn("truncated header", quarantine=True)
            return None
        if magic != self.MAGIC:
            self._warn(f"not a {self.KIND} file (bad magic)")
            return None
        if version_text != b"%d" % self.FORMAT_VERSION:
            self._warn(f"unsupported format version {version_text!r} "
                       f"(this build reads version {self.FORMAT_VERSION})")
            return None
        if hashlib.sha256(payload).hexdigest().encode("ascii") != digest:
            self._warn("checksum mismatch (truncated or corrupted)",
                       quarantine=True)
            return None
        try:
            document = pickle.loads(payload)
        except Exception as error:  # damaged pickle, wrong schema, ...
            self._warn(f"undecodable payload ({type(error).__name__}: "
                       f"{error})", quarantine=True)
            return None
        if not isinstance(document, dict):
            self._warn("malformed payload (document is not a mapping)",
                       quarantine=True)
            return None
        return document

    def _quarantine(self) -> Optional[Path]:
        """Rename the (damaged) file out of the way; returns the new path."""
        for n in range(10000):
            candidate = Path(f"{self.path}.corrupt-{n}")
            if candidate.exists():
                continue
            try:
                os.rename(self.path, candidate)
            except OSError:
                return None  # racing reader already moved it, or read-only
            return candidate
        return None  # pragma: no cover - 10000 corrupt siblings

    def _warn(self, reason: str, quarantine: bool = False) -> None:
        suffix = "; starting cold"
        if quarantine:
            moved = self._quarantine()
            if moved is not None:
                suffix += f" (damaged file quarantined to {moved})"
        warnings.warn(
            f"ignoring {self.KIND} file {self.path}: {reason}{suffix}",
            RuntimeWarning, stacklevel=5)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({str(self.path)!r})"


class ColumnCacheStore(_VersionedFileStore):
    """Save/load a :class:`BasisColumnCache` to/from one file.

    The store is bound to a path; :meth:`save` and :meth:`load_into` are the
    whole protocol.  A missing file is a normal cold start (no warning);
    anything unreadable -- truncated, corrupted, wrong magic, unknown
    version -- is reported as a warning and treated as empty (with broken
    bytes quarantined, see :meth:`_VersionedFileStore._read_document`), so
    a damaged cache file can never break a run, only un-warm it.

    Saves serialize through an advisory :class:`FileLock` on the sidecar
    ``<path>.lock``: concurrent sweeps writing the same store merge instead
    of racing (see :meth:`save`).  The lock object is exposed as
    :attr:`lock` for callers that want a larger critical section (e.g. a
    read-modify-write spanning several stores); it is reentrant, so such a
    caller's ``save`` calls nest harmlessly.
    """

    #: file magic; changing the on-disk layout bumps FORMAT_VERSION instead
    MAGIC = b"caffeine-column-cache"
    FORMAT_VERSION = 1
    KIND = "column-cache"

    # ------------------------------------------------------------------
    def save(self, cache: BasisColumnCache, merge: bool = True) -> int:
        """Persist every entry of ``cache``; returns the number written.

        With ``merge`` (the default) entries already stored at the path are
        kept alongside the cache's (the cache wins on key collisions, though
        by key construction both sides are bit-identical anyway).  This is
        what makes one file safely shareable: a run whose LRU evicted -- or
        never loaded -- another run's namespaces cannot erase them by
        saving.  The file therefore only grows; delete it to reclaim space.
        ``merge=False`` writes exactly the cache's entries.

        The read-merge-write cycle runs under the store's advisory
        :attr:`lock`, so *simultaneous* savers serialize: the second to
        arrive re-reads the file the first just wrote and merges over it,
        and neither side's columns are lost (the last-writer-wins hazard of
        an unlocked merge).  The write itself is also atomic (temp file in
        the target directory, then ``os.replace``), so a crash mid-save
        leaves the previous file -- or no file -- never a torn one.  Parent
        directories are created.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.lock:
            entries = [(key, np.ascontiguousarray(column))
                       for key, column in cache.items()]
            if merge:
                fresh = {key for key, _column in entries}
                stored = self._read_payload()
                if stored:
                    entries.extend((key, column) for key, column in stored
                                   if key not in fresh)
            self._write_document(
                {"format_version": self.FORMAT_VERSION, "entries": entries})
        return len(entries)

    # ------------------------------------------------------------------
    def load_into(self, cache: BasisColumnCache,
                  dataset_key: Optional[Tuple] = None) -> int:
        """Merge the stored entries into ``cache``; returns how many landed.

        ``dataset_key`` optionally restricts loading to one run's namespace
        (the evaluator's ``(dataset fingerprint, function-set fingerprint)``
        pair) -- other entries are skipped instead of occupying LRU room.
        Keys already present in ``cache`` keep their current column (both
        are bit-identical by key construction, and skipping the write keeps
        their LRU recency honest).  Loaded entries do not touch the
        hit/miss statistics.
        """
        payload = self._read_payload()
        if payload is None:
            return 0
        loaded = 0
        for key, column in payload:
            if dataset_key is not None:
                if not (isinstance(key, tuple) and len(key) == 2
                        and key[0] == dataset_key):
                    continue
            if key in cache:
                continue
            column = np.asarray(column)
            column.flags.writeable = False
            cache.put(key, column)
            loaded += 1
        return loaded

    def load(self, max_entries: int = 20000,
             dataset_key: Optional[Tuple] = None) -> BasisColumnCache:
        """A fresh cache holding the stored entries (empty on any damage)."""
        cache = BasisColumnCache(max_entries)
        self.load_into(cache, dataset_key=dataset_key)
        return cache

    # ------------------------------------------------------------------
    def _read_payload(self):
        """The stored entry list, or None for any unreadable/invalid file."""
        document = self._read_document()
        if document is None:
            return None
        entries = document.get("entries")
        if not isinstance(entries, list):
            self._warn("malformed payload (entries is not a list)",
                       quarantine=True)
            return None
        return entries


class RunCheckpointStore(_VersionedFileStore):
    """Crash-safe named snapshots of in-progress runs, one file per sweep.

    The store maps *slot names* (one per problem; ``Session`` uses the
    problem name, ``run_caffeine`` the single problem's name) to opaque
    pickled state dicts -- a :meth:`CaffeineEngine.capture_run_state
    <repro.core.engine.CaffeineEngine.capture_run_state>` generation
    snapshot while a run is in flight, or a completed
    :class:`~repro.core.engine.CaffeineResult` once it finished (so a
    resumed sweep returns finished problems without re-running them).

    Writes go through the shared envelope: atomic replace (a ``SIGKILL``
    mid-save leaves the previous checkpoint readable), SHA-256-checksummed
    payload (a torn checkpoint is detected, warned about and quarantined --
    the run starts cold rather than resuming from garbage), and a
    read-merge-write cycle under the sidecar advisory lock so parallel
    workers checkpointing different problems into one file never erase each
    other's slots.
    """

    MAGIC = b"caffeine-run-checkpoint"
    FORMAT_VERSION = 1
    KIND = "run-checkpoint"

    # ------------------------------------------------------------------
    def save_state(self, slot: str, state: dict) -> None:
        """Store ``state`` under ``slot``, keeping every other slot."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.lock:
            slots = self._read_slots() or {}
            slots[str(slot)] = state
            self._write_document(
                {"format_version": self.FORMAT_VERSION, "slots": slots})

    def load_state(self, slot: str) -> Optional[dict]:
        """The state stored under ``slot``, or None (missing file or slot)."""
        slots = self._read_slots()
        if not slots:
            return None
        return slots.get(str(slot))

    def discard(self, slot: str) -> bool:
        """Drop one slot (e.g. after its run completed); True if it existed.

        Removing the last slot leaves an empty-but-valid file rather than
        deleting it (concurrent savers may be mid-merge on the same path).
        """
        with self.lock:
            slots = self._read_slots()
            if not slots or str(slot) not in slots:
                return False
            del slots[str(slot)]
            self._write_document(
                {"format_version": self.FORMAT_VERSION, "slots": slots})
        return True

    def slot_names(self) -> Tuple[str, ...]:
        """Names of every stored slot (empty for a missing/damaged file)."""
        slots = self._read_slots()
        return tuple(sorted(slots)) if slots else ()

    # ------------------------------------------------------------------
    def _read_slots(self) -> Optional[Dict[str, dict]]:
        document = self._read_document()
        if document is None:
            return None
        slots = document.get("slots")
        if not isinstance(slots, dict):
            self._warn("malformed payload (slots is not a mapping)",
                       quarantine=True)
            return None
        return slots
