"""Operator (function) definitions for the CAFFEINE grammar.

The paper's experimental setup allows the single-input operators
``sqrt, ln, log10, 1/x, abs, x^2, sin, cos, tan, max(0,x), min(0,x), 2^x,
10^x`` and the double-input operators ``+, *, max, min, pow, /``, plus an
``lte`` conditional.  Each operator is described by an :class:`Operator`
record carrying a vectorized NumPy implementation and a formatting template;
:class:`FunctionSet` is the designer-facing collection, which can be
restricted ("the designer can turn off any of the rules") -- e.g. to
rationals only, or to exclude trigonometric functions.

Numerical-domain violations (log of a negative number, division by zero,
overflow) deliberately produce ``inf``/``nan``: the evaluation layer treats
any individual that misbehaves on the training data as infeasible, which is
how the search pressure stays on well-behaved expressions.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Operator",
    "FunctionSet",
    "UNARY_OPERATORS",
    "BINARY_OPERATORS",
    "default_function_set",
    "rational_function_set",
    "polynomial_function_set",
]


@dataclasses.dataclass(frozen=True)
class Operator:
    """One nonlinear operator usable inside a canonical-form expression."""

    name: str
    arity: int
    implementation: Callable[..., np.ndarray]
    #: Python-ish format template with ``{0}``, ``{1}`` placeholders.
    template: str
    #: grammar terminal symbol (e.g. ``"LOG10"``) used by the grammar printer
    symbol: str

    def __call__(self, *args: np.ndarray) -> np.ndarray:
        if len(args) != self.arity:
            raise TypeError(
                f"operator {self.name!r} expects {self.arity} arguments, "
                f"got {len(args)}"
            )
        with np.errstate(all="ignore"):
            return self.implementation(*args)

    def format(self, *rendered_args: str) -> str:
        """Render a call of this operator with already-rendered arguments."""
        if len(rendered_args) != self.arity:
            raise TypeError(
                f"operator {self.name!r} expects {self.arity} arguments, "
                f"got {len(rendered_args)}"
            )
        return self.template.format(*rendered_args)


def _protected_tan(x: np.ndarray) -> np.ndarray:
    result = np.tan(x)
    # Large magnitudes near the poles are left as-is; the evaluation layer
    # rejects individuals that produce non-finite or absurd values.
    return result


UNARY_OPERATORS: Dict[str, Operator] = {
    op.name: op for op in (
        Operator("sqrt", 1, lambda x: np.sqrt(x), "sqrt({0})", "SQRT"),
        Operator("ln", 1, lambda x: np.log(x), "ln({0})", "LOGE"),
        Operator("log10", 1, lambda x: np.log10(x), "log10({0})", "LOG10"),
        Operator("inv", 1, lambda x: 1.0 / x, "1 / ({0})", "INV"),
        Operator("abs", 1, lambda x: np.abs(x), "abs({0})", "ABS"),
        Operator("square", 1, lambda x: np.square(x), "({0})^2", "SQUARE"),
        Operator("sin", 1, lambda x: np.sin(x), "sin({0})", "SIN"),
        Operator("cos", 1, lambda x: np.cos(x), "cos({0})", "COS"),
        Operator("tan", 1, _protected_tan, "tan({0})", "TAN"),
        Operator("max0", 1, lambda x: np.maximum(0.0, x), "max(0, {0})", "MAX0"),
        Operator("min0", 1, lambda x: np.minimum(0.0, x), "min(0, {0})", "MIN0"),
        Operator("exp2", 1, lambda x: np.power(2.0, x), "2^({0})", "POW2"),
        Operator("exp10", 1, lambda x: np.power(10.0, x), "10^({0})", "POW10"),
    )
}

BINARY_OPERATORS: Dict[str, Operator] = {
    op.name: op for op in (
        Operator("add", 2, lambda a, b: a + b, "({0} + {1})", "ADD"),
        Operator("mul", 2, lambda a, b: a * b, "({0} * {1})", "MUL"),
        Operator("max", 2, lambda a, b: np.maximum(a, b), "max({0}, {1})", "MAX"),
        Operator("min", 2, lambda a, b: np.minimum(a, b), "min({0}, {1})", "MIN"),
        Operator("pow", 2, lambda a, b: np.power(a, b), "({0})^({1})", "POW"),
        Operator("div", 2, lambda a, b: a / b, "({0}) / ({1})", "DIVIDE"),
    )
}

_ALL_OPERATORS: Dict[str, Operator] = {**UNARY_OPERATORS, **BINARY_OPERATORS}


class FunctionSet:
    """The set of operators the grammar is allowed to use.

    The paper emphasizes that "the designer can turn off any of the rules if
    they are considered unwanted or unneeded", e.g. restricting the search to
    polynomials or rationals, or removing hard-to-interpret functions such as
    ``sin``/``cos``.  A :class:`FunctionSet` is that switchboard.
    """

    def __init__(self, unary: Iterable[str] = (), binary: Iterable[str] = ()) -> None:
        self._unary: Tuple[Operator, ...] = tuple(
            self._lookup(name, UNARY_OPERATORS, "unary") for name in unary)
        self._binary: Tuple[Operator, ...] = tuple(
            self._lookup(name, BINARY_OPERATORS, "binary") for name in binary)

    @staticmethod
    def _lookup(name: str, table: Dict[str, Operator], kind: str) -> Operator:
        if name not in table:
            raise KeyError(
                f"unknown {kind} operator {name!r}; known: {sorted(table)}")
        return table[name]

    # ------------------------------------------------------------------
    @property
    def unary(self) -> Tuple[Operator, ...]:
        return self._unary

    @property
    def binary(self) -> Tuple[Operator, ...]:
        return self._binary

    @property
    def has_nonlinear_operators(self) -> bool:
        """True when at least one nonlinear operator is enabled."""
        return bool(self._unary) or bool(self._binary)

    def operator(self, name: str) -> Operator:
        """Look up an enabled operator by name."""
        for op in self._unary + self._binary:
            if op.name == name:
                return op
        raise KeyError(f"operator {name!r} is not enabled in this function set")

    def names(self) -> Tuple[str, ...]:
        return tuple(op.name for op in self._unary + self._binary)

    def without(self, *names: str) -> "FunctionSet":
        """A copy with the given operators removed."""
        remove = set(names)
        return FunctionSet(
            unary=[op.name for op in self._unary if op.name not in remove],
            binary=[op.name for op in self._binary if op.name not in remove],
        )

    def restricted_to(self, *names: str) -> "FunctionSet":
        """A copy with only the given operators kept."""
        keep = set(names)
        return FunctionSet(
            unary=[op.name for op in self._unary if op.name in keep],
            binary=[op.name for op in self._binary if op.name in keep],
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"FunctionSet(unary={[o.name for o in self._unary]}, "
                f"binary={[o.name for o in self._binary]})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FunctionSet):
            return NotImplemented
        return self.names() == other.names()

    def __hash__(self) -> int:
        return hash(self.names())


def default_function_set() -> FunctionSet:
    """The paper's experimental function set (Section 6.1).

    ``add`` and ``mul`` are omitted as explicit binary operators because the
    canonical-form grammar already provides arbitrary sums (``REPADD``) and
    products (``REPVC``/``REPOP``); including them as operators would only
    duplicate structure without enlarging the expressible set.
    """
    return FunctionSet(
        unary=("sqrt", "ln", "log10", "inv", "abs", "square",
               "sin", "cos", "tan", "max0", "min0", "exp2", "exp10"),
        binary=("div", "pow", "max", "min"),
    )


def rational_function_set() -> FunctionSet:
    """Restriction to rational functions (division only)."""
    return FunctionSet(unary=("inv",), binary=("div",))


def polynomial_function_set() -> FunctionSet:
    """Restriction to polynomials: no nonlinear operators at all.

    With this set the grammar reduces to weighted sums of variable combos,
    i.e. (generalized) polynomials, mirroring the paper's remark that "one
    could easily restrict the search to polynomials or rationals".
    """
    return FunctionSet(unary=(), binary=())
