"""Operator (function) definitions for the CAFFEINE grammar.

The paper's experimental setup allows the single-input operators
``sqrt, ln, log10, 1/x, abs, x^2, sin, cos, tan, max(0,x), min(0,x), 2^x,
10^x`` and the double-input operators ``+, *, max, min, pow, /``, plus an
``lte`` conditional.  Each operator is described by an :class:`Operator`
record carrying a vectorized NumPy implementation (a module-level named
function, so operators -- and the expression trees that embed them --
survive ``pickle`` and can cross process boundaries) and a formatting
template;
:class:`FunctionSet` is the designer-facing collection, which can be
restricted ("the designer can turn off any of the rules") -- e.g. to
rationals only, or to exclude trigonometric functions.

Numerical-domain violations (log of a negative number, division by zero,
overflow) deliberately produce ``inf``/``nan``: the evaluation layer treats
any individual that misbehaves on the training data as infeasible, which is
how the search pressure stays on well-behaved expressions.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterable, Tuple

import numpy as np

__all__ = [
    "Operator",
    "FunctionSet",
    "UNARY_OPERATORS",
    "BINARY_OPERATORS",
    "default_function_set",
    "rational_function_set",
    "polynomial_function_set",
]


@dataclasses.dataclass(frozen=True)
class Operator:
    """One nonlinear operator usable inside a canonical-form expression."""

    name: str
    arity: int
    implementation: Callable[..., np.ndarray]
    #: Python-ish format template with ``{0}``, ``{1}`` placeholders.
    template: str
    #: grammar terminal symbol (e.g. ``"LOG10"``) used by the grammar printer
    symbol: str

    def __call__(self, *args: np.ndarray) -> np.ndarray:
        if len(args) != self.arity:
            raise TypeError(
                f"operator {self.name!r} expects {self.arity} arguments, "
                f"got {len(args)}"
            )
        with np.errstate(all="ignore"):
            return self.implementation(*args)

    def format(self, *rendered_args: str) -> str:
        """Render a call of this operator with already-rendered arguments."""
        if len(rendered_args) != self.arity:
            raise TypeError(
                f"operator {self.name!r} expects {self.arity} arguments, "
                f"got {len(rendered_args)}"
            )
        return self.template.format(*rendered_args)


# Operator implementations are module-level named functions (not lambdas) so
# that Operator records -- and therefore whole expression trees -- pickle by
# reference.  This is what lets ``evaluation_backend="process"`` ship basis
# trees to worker processes instead of silently degrading to threads.

def _sqrt(x: np.ndarray) -> np.ndarray:
    return np.sqrt(x)


def _ln(x: np.ndarray) -> np.ndarray:
    return np.log(x)


def _log10(x: np.ndarray) -> np.ndarray:
    return np.log10(x)


def _inv(x: np.ndarray) -> np.ndarray:
    return 1.0 / x


def _abs(x: np.ndarray) -> np.ndarray:
    return np.abs(x)


def _square(x: np.ndarray) -> np.ndarray:
    return np.square(x)


def _sin(x: np.ndarray) -> np.ndarray:
    return np.sin(x)


def _cos(x: np.ndarray) -> np.ndarray:
    return np.cos(x)


def _protected_tan(x: np.ndarray) -> np.ndarray:
    # Large magnitudes near the poles are left as-is; the evaluation layer
    # rejects individuals that produce non-finite or absurd values.
    return np.tan(x)


def _max0(x: np.ndarray) -> np.ndarray:
    return np.maximum(0.0, x)


def _min0(x: np.ndarray) -> np.ndarray:
    return np.minimum(0.0, x)


def _exp2(x: np.ndarray) -> np.ndarray:
    return np.power(2.0, x)


def _exp10(x: np.ndarray) -> np.ndarray:
    return np.power(10.0, x)


def _add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a + b


def _mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a * b


def _max(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.maximum(a, b)


def _min(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.minimum(a, b)


def _pow(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.power(a, b)


def _div(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a / b


UNARY_OPERATORS: Dict[str, Operator] = {
    op.name: op for op in (
        Operator("sqrt", 1, _sqrt, "sqrt({0})", "SQRT"),
        Operator("ln", 1, _ln, "ln({0})", "LOGE"),
        Operator("log10", 1, _log10, "log10({0})", "LOG10"),
        Operator("inv", 1, _inv, "1 / ({0})", "INV"),
        Operator("abs", 1, _abs, "abs({0})", "ABS"),
        Operator("square", 1, _square, "({0})^2", "SQUARE"),
        Operator("sin", 1, _sin, "sin({0})", "SIN"),
        Operator("cos", 1, _cos, "cos({0})", "COS"),
        Operator("tan", 1, _protected_tan, "tan({0})", "TAN"),
        Operator("max0", 1, _max0, "max(0, {0})", "MAX0"),
        Operator("min0", 1, _min0, "min(0, {0})", "MIN0"),
        Operator("exp2", 1, _exp2, "2^({0})", "POW2"),
        Operator("exp10", 1, _exp10, "10^({0})", "POW10"),
    )
}

BINARY_OPERATORS: Dict[str, Operator] = {
    op.name: op for op in (
        Operator("add", 2, _add, "({0} + {1})", "ADD"),
        Operator("mul", 2, _mul, "({0} * {1})", "MUL"),
        Operator("max", 2, _max, "max({0}, {1})", "MAX"),
        Operator("min", 2, _min, "min({0}, {1})", "MIN"),
        Operator("pow", 2, _pow, "({0})^({1})", "POW"),
        Operator("div", 2, _div, "({0}) / ({1})", "DIVIDE"),
    )
}

_ALL_OPERATORS: Dict[str, Operator] = {**UNARY_OPERATORS, **BINARY_OPERATORS}


class FunctionSet:
    """The set of operators the grammar is allowed to use.

    The paper emphasizes that "the designer can turn off any of the rules if
    they are considered unwanted or unneeded", e.g. restricting the search to
    polynomials or rationals, or removing hard-to-interpret functions such as
    ``sin``/``cos``.  A :class:`FunctionSet` is that switchboard.
    """

    def __init__(self, unary: Iterable[str] = (), binary: Iterable[str] = ()) -> None:
        self._unary: Tuple[Operator, ...] = tuple(
            self._lookup(name, UNARY_OPERATORS, "unary") for name in unary)
        self._binary: Tuple[Operator, ...] = tuple(
            self._lookup(name, BINARY_OPERATORS, "binary") for name in binary)

    @staticmethod
    def _lookup(name: str, table: Dict[str, Operator], kind: str) -> Operator:
        if name not in table:
            raise KeyError(
                f"unknown {kind} operator {name!r}; known: {sorted(table)}")
        return table[name]

    # ------------------------------------------------------------------
    @property
    def unary(self) -> Tuple[Operator, ...]:
        return self._unary

    @property
    def binary(self) -> Tuple[Operator, ...]:
        return self._binary

    @property
    def has_nonlinear_operators(self) -> bool:
        """True when at least one nonlinear operator is enabled."""
        return bool(self._unary) or bool(self._binary)

    def operator(self, name: str) -> Operator:
        """Look up an enabled operator by name."""
        for op in self._unary + self._binary:
            if op.name == name:
                return op
        raise KeyError(f"operator {name!r} is not enabled in this function set")

    def names(self) -> Tuple[str, ...]:
        return tuple(op.name for op in self._unary + self._binary)

    def fingerprint(self) -> Tuple:
        """Hashable identity of the operator *implementations*.

        Two function sets share a fingerprint exactly when every same-named
        operator is bound to the same implementation (module + qualname), so
        caches keyed by it (the shared column cache, the persistent
        :class:`~repro.core.cache_store.ColumnCacheStore`) never serve a
        column computed under different operator semantics.
        """
        entries = []
        for op in self._unary + self._binary:
            implementation = op.implementation
            entries.append((op.name, op.arity,
                            getattr(implementation, "__module__", ""),
                            getattr(implementation, "__qualname__",
                                    repr(implementation))))
        return tuple(sorted(entries))

    def without(self, *names: str) -> "FunctionSet":
        """A copy with the given operators removed."""
        remove = set(names)
        return FunctionSet(
            unary=[op.name for op in self._unary if op.name not in remove],
            binary=[op.name for op in self._binary if op.name not in remove],
        )

    def restricted_to(self, *names: str) -> "FunctionSet":
        """A copy with only the given operators kept."""
        keep = set(names)
        return FunctionSet(
            unary=[op.name for op in self._unary if op.name in keep],
            binary=[op.name for op in self._binary if op.name in keep],
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"FunctionSet(unary={[o.name for o in self._unary]}, "
                f"binary={[o.name for o in self._binary]})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FunctionSet):
            return NotImplemented
        return self.names() == other.names()

    def __hash__(self) -> int:
        return hash(self.names())


def default_function_set() -> FunctionSet:
    """The paper's experimental function set (Section 6.1).

    ``add`` and ``mul`` are omitted as explicit binary operators because the
    canonical-form grammar already provides arbitrary sums (``REPADD``) and
    products (``REPVC``/``REPOP``); including them as operators would only
    duplicate structure without enlarging the expressible set.
    """
    return FunctionSet(
        unary=("sqrt", "ln", "log10", "inv", "abs", "square",
               "sin", "cos", "tan", "max0", "min0", "exp2", "exp10"),
        binary=("div", "pow", "max", "min"),
    )


def rational_function_set() -> FunctionSet:
    """Restriction to rational functions (division only)."""
    return FunctionSet(unary=("inv",), binary=("div",))


def polynomial_function_set() -> FunctionSet:
    """Restriction to polynomials: no nonlinear operators at all.

    With this set the grammar reduces to weighted sums of variable combos,
    i.e. (generalized) polynomials, mirroring the paper's remark that "one
    could easily restrict the search to polynomials or rationals".
    """
    return FunctionSet(unary=(), binary=())
