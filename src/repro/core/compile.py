"""Compiled basis-function evaluation: trees lowered to postorder NumPy tapes.

The interpreter (:meth:`repro.core.expression.ProductTerm.evaluate` driven by
:func:`repro.core.individual.evaluate_basis_column`) walks a tree node by
node, paying per node for method dispatch, a nested ``np.errstate`` context
per operator application, and fresh ``np.ones`` allocations for every
product.  On the offspring stream of an evolutionary run those *misses* --
trees the column cache has never seen -- are the dominant cost (ROADMAP,
follow-on to PR 1/PR 2).

:class:`TreeCompiler` removes that per-node overhead without changing a
single bit of the result.  A :class:`~repro.core.expression.ProductTerm` is
flattened into a postorder tape of NumPy calls executed in one loop under a
single ``errstate`` block, with two *fusions* that are exact by IEEE-754
semantics:

* multiplications by the interpreter's seed ``np.ones`` columns are elided
  (``1.0 * x`` reproduces ``x`` bit for bit, NaN payloads included);
* elementwise accumulations (``np.multiply``/``np.add``) write into dead
  temporaries via ``out=`` instead of allocating -- the ufunc inner loop is
  the same, so the values are identical.

Everything else runs the *same* callables in the *same* order as the
interpreter: operator nodes call ``op.implementation`` directly (the exact
function :class:`~repro.core.functions.Operator.__call__` would invoke),
variable combos call ``np.power`` on the same strided column views of ``X``,
weighted sums seed with the same ``np.full``, and conditionals use
``np.less_equal`` + ``np.where``.  (Stacking several trees into one 2-D
evaluation would amortize more call overhead but is deliberately avoided:
NumPy's SIMD transcendental loops may treat vector lanes and scalar tails
differently, so changing array shapes can change bits.  Per-column tapes
keep every operand shape and stride identical to the interpreter's.)

Tapes are **parameterized**: every ``Weight`` value and every non-zero
variable-combo exponent becomes a runtime parameter instead of a baked-in
constant, and kernels are cached by the parameter-free *skeleton* of the
tree.  This is what makes compilation profitable on the miss stream:
CAFFEINE's parameter mutation is five times likelier than any structural
operator (paper Section 6.1), and variable-combo mutation/crossover only
changes exponent values, so fresh offspring overwhelmingly reuse an
already-compiled skeleton with new parameters -- the tape walk is skipped
and only the NumPy work runs.  Compilation itself is lazy, JIT style: the
first sighting of a skeleton is interpreted (and the skeleton remembered);
a tape is built only when a skeleton recurs, so one-shot trees never pay
compilation, only the cheap skeleton walk.

A node type the compiler does not know falls back *per node*: the tape
embeds a call to that subtree's own ``evaluate``, so exotic extensions still
evaluate exactly as interpreted while the rest of the tree stays compiled
(such trees are compiled fresh per evaluation -- their embedded state cannot
be keyed -- and a node without even an ``evaluate`` method falls back to the
plain interpreter for the whole tree).

Correctness contract: ``TreeCompiler.column(basis)`` is bit-for-bit
identical to ``evaluate_basis_column(basis, X)`` (magnitude clip and NaN
semantics included) for every tree built from the node classes in
:mod:`repro.core.expression`; the hypothesis property tests in
``tests/test_core_compile.py`` enforce this over random trees, including
parameter-perturbed skeleton reuse.  Operator implementations are assumed
not to mutate their input arrays (true of every NumPy-style operation,
including the whole default function set).

Selected via ``CaffeineSettings.column_backend = "compiled"`` and routed
through the miss path of :class:`repro.core.evaluation.PopulationEvaluator`,
so the engine, the experiment drivers and ``simplify_population`` all
benefit without further wiring.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.expression import (
    BinaryOpTerm,
    ConditionalOpTerm,
    ProductTerm,
    UnaryOpTerm,
    WeightedSum,
    cached_structural_key,
    structural_key,
)
from repro.core.individual import _MAGNITUDE_LIMIT, evaluate_basis_column
from repro.core.weights import Weight

__all__ = [
    "CompilationError",
    "CompiledKernel",
    "TreeCompiler",
    "canonicalize_factors",
    "canonicalize_fresh_product_term",
    "cached_skeleton_and_params",
    "compile_basis_function",
    "skeleton_and_params",
]

#: A tape operand: a slot index (int, owned temporary), a parameter
#: reference (``("p", i)`` resolved against the per-call parameter vector),
#: or a shared read-only array (an ``X`` column view or the ones column).
Operand = Union[int, Tuple[str, int], np.ndarray]


class CompilationError(ValueError):
    """A tree cannot be lowered to a tape (callers fall back to interpretation)."""


class CompiledKernel:
    """One basis-function skeleton lowered to a postorder tape.

    The tape is a sequence of steps ``(fn, args, out_arg, result_slot)``:
    ``fn`` is called with ``args`` (slot indices resolved against the
    per-call slot table, parameter references against the per-call parameter
    vector; arrays passed through), writing into ``args[out_arg]``'s buffer
    when ``out_arg`` is not None, and the result lands in ``result_slot``.
    Slots are allocated per call, so one kernel may be executed concurrently
    from several threads and re-executed with different parameter vectors.
    """

    __slots__ = ("_steps", "_n_slots", "_result", "n_samples", "n_params",
                 "compiled_params")

    def __init__(self, steps: Sequence[Tuple], n_slots: int, result: Operand,
                 n_samples: int, params: Sequence[float]) -> None:
        self._steps = tuple(steps)
        self._n_slots = n_slots
        self._result = result
        self.n_samples = n_samples
        #: parameter values of the tree the kernel was compiled from, in
        #: tape order -- ``kernel(kernel.compiled_params)`` evaluates it
        self.compiled_params: Tuple[float, ...] = tuple(params)
        self.n_params = len(self.compiled_params)

    @property
    def n_steps(self) -> int:
        return len(self._steps)

    def evaluate_raw(self, params: Sequence[float]) -> np.ndarray:
        """The unclipped column (the tree's ``evaluate`` value), bit for bit.

        The returned array may be one of the kernel's shared read-only
        constants; callers must not write into it.
        """
        slots: List[Optional[np.ndarray]] = [None] * self._n_slots
        for fn, args, out_arg, result_slot in self._steps:
            values = [slots[a] if type(a) is int
                      else (params[a[1]] if type(a) is tuple else a)
                      for a in args]
            if out_arg is None:
                slots[result_slot] = fn(*values)
            else:
                slots[result_slot] = fn(*values, out=values[out_arg])
        result = self._result
        return slots[result] if type(result) is int else result

    def __call__(self, params: Sequence[float]) -> np.ndarray:
        """The evaluated basis column with the interpreter's exact semantics.

        Mirrors :func:`repro.core.individual.evaluate_basis_column` step for
        step: the whole tape runs under one ``errstate(all="ignore")`` block,
        the result is coerced to float, and absurd magnitudes are mapped to
        NaN by the same ``np.where`` expression.
        """
        with np.errstate(all="ignore"):
            values = np.asarray(self.evaluate_raw(params), dtype=float)
            return np.where(np.abs(values) > _MAGNITUDE_LIMIT, np.nan, values)


# ----------------------------------------------------------------------
# canonical factor order
# ----------------------------------------------------------------------
def _comparable(key) -> Tuple:
    """A totally ordered proxy for a structural key.

    Structural keys mix strings, ints, floats, ``None`` and nested tuples,
    which Python refuses to compare across types; tagging every scalar with
    a type rank makes any two proxies comparable while preserving the
    original order within each type.
    """
    if isinstance(key, tuple):
        return (3, tuple(_comparable(part) for part in key))
    if key is None:
        return (0, 0.0)
    if isinstance(key, str):
        return (1, key)
    return (2, float(key))


def canonicalize_factors(node) -> None:
    """Sort every product term's commutative factor list, in place.

    A :class:`~repro.core.expression.ProductTerm` multiplies its operator
    factors left to right, and float multiplication is commutative but not
    associative -- two trees whose factors differ only in order evaluate to
    (last-ulp) different columns and therefore hash to different structural
    keys and compile to different kernels.  Sorting the factor lists into
    one canonical order (by a type-tagged total order over their structural
    keys) at **tree-construction time** merges those variants: the
    generator and the variation operators emit only canonical trees, so the
    interpreter, the compiler, the column cache and the kernel cache all
    agree on one representative per commutative class -- which is what
    lifts the compiled backend's kernel hit rate without touching the
    bit-for-bit compiled == interpreted guarantee (both always see the same,
    already-canonical tree).

    Subtrees whose structural key cannot be computed (exotic node types)
    keep their original order; everything else in the tree is still
    normalized.  Mutating an *evaluated* tree would invalidate cached
    columns, which is why this runs where trees are born, not where they
    are scored.

    The walk is **post-order** -- descendants are canonicalized before
    their parent's factor list is sorted -- because a parent's sort keys
    embed the (structural keys of the) nested subtrees: sorting outer
    factors against not-yet-canonical inner orderings would let nested
    order-variants keep distinct outer orders, and would make the
    normalization non-idempotent.

    Post-order is also what makes the sort keys safe to memoize on the
    nodes (:func:`~repro.core.expression.cached_structural_key`): by the
    time a factor's key is asked for, its whole subtree has already been
    canonicalized and will never change again, so the memo written here is
    the node's final key -- shared subtrees of a path-copied child answer
    from the parent's memo without a walk.
    """
    children = getattr(node, "children", None)
    if children is not None:
        for child in children():
            canonicalize_factors(child)
    if type(node) is ProductTerm and len(node.ops) > 1:
        try:
            node.ops.sort(key=lambda op: _comparable(cached_structural_key(op)))
        except TypeError:
            pass


def canonicalize_fresh_product_term(term: ProductTerm) -> None:
    """Sort one freshly path-copied product term's factor list, in place.

    The structure-sharing operators rebuild only the spine from an edited
    slot to its basis root; every subtree hanging off that spine is shared
    with the parent and therefore already canonical.  Calling this on each
    fresh spine node in deepest-first creation order is exactly the subset
    of :func:`canonicalize_factors`'s post-order work that can actually
    reorder anything -- sorting an untouched, already-sorted factor list is
    a stable no-op -- so the shared path stays bit-identical to the
    deepcopy path's full-tree pass.
    """
    if len(term.ops) > 1:
        try:
            term.ops.sort(key=lambda op: _comparable(cached_structural_key(op)))
        except TypeError:
            pass


# ----------------------------------------------------------------------
# skeleton extraction
# ----------------------------------------------------------------------
def skeleton_and_params(basis: ProductTerm) -> Tuple[Tuple, Tuple[float, ...]]:
    """``(skeleton key, parameter vector)`` of a tree, in tape order.

    The skeleton is the tree's exact structure *minus* its parameter values:
    node kinds, operator names, argument shapes and the *pattern* of active
    variable-combo factors, as a flat token tuple.  Weight values and
    non-zero exponents become positional parameters.  Two trees with equal
    skeletons compile to the same tape, so a kernel compiled for one
    evaluates the other bit for bit given its parameter vector -- the walk
    here visits parameters in exactly the order :class:`_Lowering` consumes
    them (enforced by property tests).

    ``(skeleton, params)`` is a complete evaluation-recipe identity: two
    trees sharing both evaluate identically on every input by the same
    floating-point operations, which is why the compiled evaluation backend
    uses the pair as its basis-column cache key.  Like
    :func:`~repro.core.expression.structural_key`, operators are identified
    by name, so keys are only meaningful within one function set (shared
    caches stay isolated across sets via the function-set fingerprint
    prefix).  The key is pure data (strings, ints, floats), so it pickles
    into the persistent column-cache store.

    Raises :class:`CompilationError` for node types the compiler does not
    know (their embedded state cannot be keyed).
    """
    tokens: List = []
    params: List[float] = []
    _skeleton(basis, tokens, params)
    return tuple(tokens), tuple(params)


def cached_skeleton_and_params(basis: ProductTerm
                               ) -> Tuple[Tuple, Tuple[float, ...]]:
    """:func:`skeleton_and_params` memoized on the basis root.

    Same freshness contract as
    :func:`~repro.core.expression.cached_structural_key`: only queried at
    evaluation time, when the tree is canonical and final.  A path-copied
    child shares all-but-one basis with its parent, so all shared bases
    answer without re-walking their trees.
    """
    cached = getattr(basis, "_skeleton_params", None)
    if cached is not None:
        return cached
    pair = skeleton_and_params(basis)
    basis._skeleton_params = pair
    return pair


def _skeleton(node, tokens: List, params: List[float]) -> None:
    kind = type(node)
    if kind is ProductTerm:
        vc = node.vc
        append = tokens.append
        append("pt")
        if vc is None:
            append(-1)
        else:
            # Arity is part of the key: the interpreter validates
            # X.shape[1] against it, and compilation does too -- aliasing
            # combos of different arity would let a cache hit skip that
            # check.
            append(vc.n_variables)
            active = [index for index, exponent in enumerate(vc.exponents)
                      if exponent != 0]
            append(len(active))
            tokens.extend(active)
            params.extend(float(vc.exponents[index]) for index in active)
        append(len(node.ops))
        for op_term in node.ops:
            _skeleton(op_term, tokens, params)
        return
    if kind is WeightedSum:
        tokens.append("ws")
        tokens.append(len(node.terms))
        params.append(node.offset.value)
        for weighted in node.terms:
            _skeleton(weighted.term, tokens, params)
            params.append(weighted.weight.value)
        return
    if kind is UnaryOpTerm:
        tokens.append("u")
        tokens.append(node.op.name)
        _skeleton(node.argument, tokens, params)
        return
    if kind is BinaryOpTerm:
        tokens.append("b")
        tokens.append(node.op.name)
        _skeleton_argument(node.left, tokens, params)
        _skeleton_argument(node.right, tokens, params)
        return
    if kind is ConditionalOpTerm:
        tokens.append("c")
        _skeleton(node.test, tokens, params)
        _skeleton_argument(node.threshold, tokens, params)
        _skeleton(node.if_true, tokens, params)
        _skeleton(node.if_false, tokens, params)
        return
    raise CompilationError(f"cannot build a skeleton for {kind.__name__} nodes")


def _skeleton_argument(arg, tokens: List, params: List[float]) -> None:
    if type(arg) is Weight:
        tokens.append("w")
        params.append(arg.value)
    else:
        _skeleton(arg, tokens, params)


class _Lowering:
    """Single-use helper that walks one tree and emits the tape.

    Consumes parameters (weight values, variable-combo exponents) in exactly
    the order :func:`skeleton_and_params` collects them.
    """

    def __init__(self, compiler: "TreeCompiler") -> None:
        self.compiler = compiler
        self.steps: List[Tuple] = []
        self.params: List[float] = []
        self.n_slots = 0

    # -- tape emission -------------------------------------------------
    def emit(self, fn, args: Tuple[Operand, ...],
             out_arg: Optional[int] = None) -> int:
        """Append one step; returns the slot holding its result."""
        if out_arg is not None:
            result_slot = args[out_arg]
        else:
            result_slot = self.n_slots
            self.n_slots += 1
        self.steps.append((fn, args, out_arg, result_slot))
        return result_slot

    def param(self, value: float) -> Tuple[str, int]:
        """Register one parameter value, returning its tape reference."""
        reference = ("p", len(self.params))
        self.params.append(value)
        return reference

    def _accumulate(self, ufunc, acc: Operand, value: Operand) -> Operand:
        """``ufunc(acc, value)``, writing into a dead temporary when one exists.

        Every temporary is single-use (the tape is a tree flattening), so
        whichever operand is a slot can serve as the ``out=`` buffer; when
        neither operand is a slot a fresh one is allocated -- exactly the
        allocation the interpreter would have made.
        """
        if type(acc) is int:
            return self.emit(ufunc, (acc, value), out_arg=0)
        if type(value) is int:
            return self.emit(ufunc, (acc, value), out_arg=1)
        return self.emit(ufunc, (acc, value))

    # -- node lowering -------------------------------------------------
    def lower(self, node) -> Operand:
        kind = type(node)
        if kind is ProductTerm:
            return self._lower_product_term(node)
        if kind is WeightedSum:
            return self._lower_weighted_sum(node)
        if kind is UnaryOpTerm:
            argument = self.lower(node.argument)
            return self.emit(node.op.implementation, (argument,))
        if kind is BinaryOpTerm:
            left = self._lower_argument(node.left)
            right = self._lower_argument(node.right)
            return self.emit(node.op.implementation, (left, right))
        if kind is ConditionalOpTerm:
            return self._lower_conditional(node)
        # Per-node fallback: embed an interpreted evaluation of this subtree
        # in the tape.  It runs under the kernel's errstate exactly as it
        # would under evaluate_basis_column's, so the value is unchanged.
        evaluate = getattr(node, "evaluate", None)
        if not callable(evaluate):
            raise CompilationError(
                f"cannot lower {kind.__name__} (no evaluate method)")
        return self.emit(evaluate, (self.compiler.X,))

    def _lower_product_term(self, node: ProductTerm) -> Operand:
        """Left-to-right product in the interpreter's association.

        The interpreter seeds every product (and every variable combo) with
        ``np.ones`` and multiplies factors in order; multiplying by 1.0 is
        exact (values, infinities and NaN payloads alike), so the seeds are
        elided and an empty product degenerates to the shared ones column.
        """
        acc: Optional[Operand] = None
        vc = node.vc
        if vc is not None:
            X = self.compiler.X
            if X.shape[1] != vc.n_variables:
                raise ValueError(
                    f"X must have {vc.n_variables} columns, got shape {X.shape}")
            for index, exponent in enumerate(vc.exponents):
                if exponent != 0:
                    # The same strided column view the interpreter indexes,
                    # so even the memory layout seen by np.power matches;
                    # the exponent is a runtime parameter, which is how
                    # vc-mutated offspring share their parent's tape.
                    factor = self.emit(
                        np.power, (self.compiler.variable_column(index),
                                   self.param(float(exponent))))
                    acc = factor if acc is None \
                        else self._accumulate(np.multiply, acc, factor)
        for op_term in node.ops:
            factor = self.lower(op_term)
            acc = factor if acc is None \
                else self._accumulate(np.multiply, acc, factor)
        return acc if acc is not None else self.compiler.ones_column()

    def _lower_weighted_sum(self, node: WeightedSum) -> Operand:
        # The interpreter seeds the sum with np.full(n, offset); emitting the
        # same np.full (with the offset as a runtime parameter) yields an
        # owned buffer the additions below may accumulate into.
        acc: Operand = self.emit(self.compiler.full_column,
                                 (self.param(node.offset.value),))
        for weighted in node.terms:
            term_value = self.lower(weighted.term)
            weight = self.param(weighted.weight.value)
            if type(term_value) is int:
                scaled = self.emit(np.multiply, (weight, term_value), out_arg=1)
            else:
                scaled = self.emit(np.multiply, (weight, term_value))
            acc = self._accumulate(np.add, acc, scaled)
        return acc

    def _lower_argument(self, arg) -> Operand:
        """A ``MAYBEW`` operator argument: a constant column or an expression."""
        if type(arg) is Weight:
            # The interpreter materializes np.full(n, weight) for constant
            # operator arguments; same call, parameterized.
            return self.emit(self.compiler.full_column, (self.param(arg.value),))
        return self.lower(arg)

    def _lower_conditional(self, node: ConditionalOpTerm) -> Operand:
        test = self.lower(node.test)
        threshold = self._lower_argument(node.threshold)
        if_true = self.lower(node.if_true)
        if_false = self.lower(node.if_false)
        condition = self.emit(np.less_equal, (test, threshold))
        return self.emit(np.where, (condition, if_true, if_false))


class TreeCompiler:
    """Compiles basis functions against one fixed sample matrix ``X``.

    The compiler owns the shared read-only operands its kernels reference
    (``X`` column views and the ones column) plus an LRU of compiled kernels
    keyed by parameter-free skeleton, so parameter-perturbed offspring reuse
    their parent's tape.  Compilation is lazy: a skeleton's first sighting
    is interpreted and only a recurring skeleton is compiled (one-shot trees
    pay the skeleton walk, never a tape build).  All methods are safe to
    call from multiple threads (the evaluator's thread backend compiles and
    evaluates columns concurrently).
    """

    def __init__(self, X: np.ndarray, max_kernels: int = 4096) -> None:
        self.X = np.asarray(X, dtype=float)
        if self.X.ndim != 2:
            raise ValueError("X must be 2-D (n_samples, n_variables)")
        if max_kernels < 0:
            raise ValueError("max_kernels must be non-negative")
        self.max_kernels = int(max_kernels)
        self.n_samples = self.X.shape[0]
        #: compilation / reuse accounting (benchmarks read these)
        self.n_compiled = 0
        self.n_kernel_requests = 0
        self.n_kernel_hits = 0
        self.n_interpreted = 0
        self._ones: Optional[np.ndarray] = None
        self._columns: dict = {}
        self._kernels: "OrderedDict[Tuple, CompiledKernel]" = OrderedDict()
        #: skeletons seen exactly once (interpreted, not yet compiled)
        self._seen_once: "OrderedDict[Tuple, bool]" = OrderedDict()
        self._lock = threading.Lock()

    @property
    def kernel_hit_rate(self) -> float:
        """Fraction of requests served by an already-compiled tape."""
        if self.n_kernel_requests == 0:
            return 0.0
        # repro-lint: allow[errstate] -- scalar int hit-rate statistic, no column arrays
        return self.n_kernel_hits / self.n_kernel_requests

    # -- shared operands -----------------------------------------------
    def ones_column(self) -> np.ndarray:
        """The read-only ones column (the interpreter's elided product seed)."""
        if self._ones is None:
            ones = np.ones(self.n_samples)
            ones.flags.writeable = False
            self._ones = ones
        return self._ones

    def full_column(self, value: float) -> np.ndarray:
        """Tape step: the interpreter's ``np.full(n_samples, value)``."""
        return np.full(self.n_samples, value)

    def variable_column(self, index: int) -> np.ndarray:
        """The strided view ``X[:, index]`` (the interpreter's exact operand)."""
        column = self._columns.get(index)
        if column is None:
            column = self.X[:, index]
            self._columns[index] = column
        return column

    # -- compilation ---------------------------------------------------
    def compile(self, basis: ProductTerm) -> CompiledKernel:
        """Lower one tree to a kernel (no caching; unknown nodes embed their
        own ``evaluate`` as a per-node fallback step)."""
        lowering = _Lowering(self)
        result = lowering.lower(basis)
        self.n_compiled += 1
        return CompiledKernel(lowering.steps, lowering.n_slots, result,
                              self.n_samples, lowering.params)

    def column(self, basis: ProductTerm) -> np.ndarray:
        """Drop-in replacement for ``evaluate_basis_column(basis, self.X)``.

        Total: every tree evaluates, bit-for-bit with the interpreter --
        through a skeleton-cached tape when the skeleton has recurred,
        through the interpreter on a skeleton's first sighting, through a
        fresh uncached tape when the tree embeds unknown (opaque) node
        types, and through the interpreter itself when a node cannot be
        lowered at all.
        """
        try:
            skeleton, params = skeleton_and_params(basis)
        except CompilationError:
            self.n_kernel_requests += 1
            try:
                kernel = self.compile(basis)
            except CompilationError:
                return evaluate_basis_column(basis, self.X)
            return kernel(kernel.compiled_params)
        return self.column_from_key(skeleton, params, basis)

    def column_from_key(self, skeleton: Tuple, params: Sequence[float],
                        basis: ProductTerm) -> np.ndarray:
        """:meth:`column` for callers that already hold the skeleton walk.

        The population evaluator keys its basis-column cache by
        ``(skeleton, params)``, so on a cache miss the walk has already been
        paid -- this entry point reuses it instead of re-walking the tree.
        """
        self.n_kernel_requests += 1
        if self.max_kernels == 0:
            return self.compile(basis)(params)
        with self._lock:
            kernel = self._kernels.get(skeleton)
            if kernel is not None:
                self._kernels.move_to_end(skeleton)
                self.n_kernel_hits += 1
            else:
                first_sighting = skeleton not in self._seen_once
                if first_sighting:
                    self._seen_once[skeleton] = True
                    while len(self._seen_once) > 4 * self.max_kernels:
                        self._seen_once.popitem(last=False)
        if kernel is not None:
            return kernel(params)
        if first_sighting:
            # JIT warmup: one-shot skeletons are interpreted; only recurring
            # ones are worth a tape.
            self.n_interpreted += 1
            return evaluate_basis_column(basis, self.X)
        kernel = self.compile(basis)
        with self._lock:
            self._kernels[skeleton] = kernel
            self._seen_once.pop(skeleton, None)
            while len(self._kernels) > self.max_kernels:
                self._kernels.popitem(last=False)
        return kernel(params)


def compile_basis_function(basis: ProductTerm, X: np.ndarray) -> CompiledKernel:
    """One-shot convenience: compile ``basis`` against ``X``.

    ``kernel(kernel.compiled_params)`` evaluates ``basis`` itself;
    :func:`skeleton_and_params` extracts the parameter vector of any other
    tree sharing the same skeleton.
    """
    return TreeCompiler(X).compile(basis)
