"""Variable combos (``VC`` grammar terminals).

A variable combo is a "single-basis rational combination of variables": a
product of design variables raised to integer exponents, stored as one
integer vector with an entry per design variable.  The paper's example is the
vector ``[1, 0, -2, 1]`` which means ``(x1 * x4) / (x3^2)``.  Real-valued or
fractional exponents are deliberately not allowed, for interpretability.

VC-specific evolutionary operators are one-point crossover of the exponent
vectors and randomly adding/subtracting 1 to an exponent; both live here so
the rest of the system treats a VC as an opaque terminal.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence, Tuple

import numpy as np

__all__ = ["VariableCombo"]


@dataclasses.dataclass
class VariableCombo:
    """Integer-exponent product of design variables."""

    exponents: Tuple[int, ...]

    def __post_init__(self) -> None:
        exps = tuple(int(e) for e in self.exponents)
        if len(exps) == 0:
            raise ValueError("a variable combo needs at least one variable slot")
        self.exponents = exps

    # ------------------------------------------------------------------
    @property
    def n_variables(self) -> int:
        return len(self.exponents)

    @property
    def is_constant(self) -> bool:
        """True when every exponent is zero (the combo degenerates to 1)."""
        return all(e == 0 for e in self.exponents)

    @property
    def total_order(self) -> int:
        """Sum of absolute exponents; the quantity priced by the complexity measure."""
        return int(sum(abs(e) for e in self.exponents))

    def used_variables(self) -> Tuple[int, ...]:
        """Indices of variables with a non-zero exponent."""
        return tuple(i for i, e in enumerate(self.exponents) if e != 0)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def identity(cls, n_variables: int) -> "VariableCombo":
        """The all-zero (constant 1) combo."""
        return cls(exponents=(0,) * n_variables)

    @classmethod
    def single(cls, n_variables: int, index: int, exponent: int = 1) -> "VariableCombo":
        """A combo using a single variable."""
        if not 0 <= index < n_variables:
            raise IndexError("variable index out of range")
        exps = [0] * n_variables
        exps[index] = int(exponent)
        return cls(exponents=tuple(exps))

    @classmethod
    def random(cls, n_variables: int, rng: np.random.Generator,
               max_exponent: int = 2, expected_active: float = 1.5,
               allow_negative: bool = True) -> "VariableCombo":
        """A random sparse combo.

        Each variable is active with probability ``expected_active /
        n_variables``; active exponents are drawn uniformly from
        ``{-max_exponent .. -1, 1 .. max_exponent}`` (or positive only).  At
        least one variable is forced active so the combo is never constant.
        """
        if n_variables < 1:
            raise ValueError("n_variables must be >= 1")
        if max_exponent < 1:
            raise ValueError("max_exponent must be >= 1")
        # repro-lint: allow[errstate] -- scalar probability from two ints, no column math
        probability = min(1.0, expected_active / n_variables)
        exps = [0] * n_variables
        for i in range(n_variables):
            if rng.random() < probability:
                exps[i] = cls._random_exponent(rng, max_exponent, allow_negative)
        if all(e == 0 for e in exps):
            index = int(rng.integers(n_variables))
            exps[index] = cls._random_exponent(rng, max_exponent, allow_negative)
        return cls(exponents=tuple(exps))

    @staticmethod
    def _random_exponent(rng: np.random.Generator, max_exponent: int,
                         allow_negative: bool) -> int:
        magnitude = int(rng.integers(1, max_exponent + 1))
        if allow_negative and rng.random() < 0.5:
            return -magnitude
        return magnitude

    # ------------------------------------------------------------------
    # evaluation and rendering
    # ------------------------------------------------------------------
    def evaluate(self, X: np.ndarray) -> np.ndarray:
        """Evaluate the combo on a sample matrix ``(n_samples, n_variables)``."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.n_variables:
            raise ValueError(
                f"X must have {self.n_variables} columns, got shape {X.shape}")
        result = np.ones(X.shape[0])
        with np.errstate(all="ignore"):
            for index, exponent in enumerate(self.exponents):
                if exponent != 0:
                    result = result * np.power(X[:, index], float(exponent))
        return result

    def render(self, variable_names: Sequence[str]) -> str:
        """Readable rendering, e.g. ``(id1*id2) / vgs2^2`` or ``1``."""
        if len(variable_names) != self.n_variables:
            raise ValueError("one name per variable required")
        numerator = [self._format_factor(variable_names[i], e)
                     for i, e in enumerate(self.exponents) if e > 0]
        denominator = [self._format_factor(variable_names[i], -e)
                       for i, e in enumerate(self.exponents) if e < 0]
        if not numerator and not denominator:
            return "1"
        num_text = self._join_factors(numerator) if numerator else "1"
        if not denominator:
            return num_text
        den_text = self._join_factors(denominator)
        return f"{num_text} / {den_text}"

    @staticmethod
    def _format_factor(name: str, exponent: int) -> str:
        return name if exponent == 1 else f"{name}^{exponent}"

    @staticmethod
    def _join_factors(factors: Sequence[str]) -> str:
        if len(factors) == 1:
            return factors[0]
        return "(" + "*".join(factors) + ")"

    # ------------------------------------------------------------------
    # evolutionary operators
    # ------------------------------------------------------------------
    def mutated(self, rng: np.random.Generator, max_exponent: int = 4,
                allow_negative: bool = True) -> "VariableCombo":
        """Randomly add or subtract 1 to one exponent (clipped to the range)."""
        exps = list(self.exponents)
        index = int(rng.integers(self.n_variables))
        delta = 1 if rng.random() < 0.5 else -1
        new_value = exps[index] + delta
        lower = -max_exponent if allow_negative else 0
        exps[index] = int(np.clip(new_value, lower, max_exponent))
        return VariableCombo(exponents=tuple(exps))

    def crossover(self, other: "VariableCombo", rng: np.random.Generator
                  ) -> Tuple["VariableCombo", "VariableCombo"]:
        """One-point crossover of two exponent vectors."""
        if self.n_variables != other.n_variables:
            raise ValueError("cannot cross combos over different variable counts")
        if self.n_variables == 1:
            return self.copy(), other.copy()
        point = int(rng.integers(1, self.n_variables))
        child_a = self.exponents[:point] + other.exponents[point:]
        child_b = other.exponents[:point] + self.exponents[point:]
        return VariableCombo(exponents=child_a), VariableCombo(exponents=child_b)

    def copy(self) -> "VariableCombo":
        return VariableCombo(exponents=self.exponents)

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VariableCombo):
            return NotImplemented
        return self.exponents == other.exponents

    def __hash__(self) -> int:
        return hash(self.exponents)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VariableCombo({list(self.exponents)})"
