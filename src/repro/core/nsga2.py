"""NSGA-II selection machinery (Deb et al., PPSN 2000).

CAFFEINE uses NSGA-II to drive a two-objective search (training error vs.
complexity) and return a nondominated set of models.  The implementation
here is generic over objective vectors: the engine supplies a list of
individuals with an ``objectives`` tuple and receives the survivor selection
and the tournament-based parent selection.

Array-native core.  The engine-facing hot path works on rank/crowding
*vectors* (:class:`RankedPopulation`) rather than per-individual wrapper
objects, and :func:`select_and_rerank` derives the survivors' own
rank/crowding arrays from the combined population's single nondominated
sort -- one ``fast_nondominated_sort`` of ``2n`` points per generation
replaces the previous ``n`` (rank) + ``2n`` (selection) sorts.  The
derivation is exact, not approximate:

* a survivor's rank among the survivors equals its rank in the combined
  population (dominators of a front-``j`` member live in fronts ``< j``,
  all of which are fully retained, and truncated-front members keep rank
  ``k+1`` because the fronts below them survive intact);
* crowding of a fully included front is unchanged (same member list, same
  order), and only the one crowding-truncated front needs its crowding
  recomputed on the kept subset.

:func:`rank_population`, :func:`environmental_selection` and
:func:`binary_tournament` keep their object-based signatures (they are
public API, pinned by tests) and are thin views over the same kernels.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence, Tuple, TypeVar

import numpy as np

from repro.core.pareto import crowding_distances, fast_nondominated_sort

__all__ = ["HasObjectives", "RankedIndividual", "RankedPopulation",
           "rank_population", "rank_population_arrays",
           "environmental_selection", "select_and_rerank",
           "binary_tournament", "tournament_winner"]


class HasObjectives(Protocol):
    """Anything exposing a tuple of minimized objectives."""

    @property
    def objectives(self) -> Tuple[float, ...]:  # pragma: no cover - protocol
        ...


T = TypeVar("T", bound=HasObjectives)


class RankedIndividual:
    """Bookkeeping record attaching NSGA-II rank and crowding to an individual."""

    __slots__ = ("individual", "rank", "crowding")

    def __init__(self, individual: HasObjectives, rank: int, crowding: float) -> None:
        self.individual = individual
        self.rank = rank
        self.crowding = crowding

    def beats(self, other: "RankedIndividual") -> bool:
        """Crowded-comparison operator: lower rank wins, ties by larger crowding."""
        if self.rank != other.rank:
            return self.rank < other.rank
        return self.crowding > other.crowding


class RankedPopulation:
    """A population with its NSGA-II rank/crowding as flat arrays.

    ``individuals`` is the population list itself (identity is meaningful:
    the engine uses ``ranked.individuals is engine.population`` to detect a
    stale cache), ``ranks``/``crowding`` are parallel vectors.
    """

    __slots__ = ("individuals", "ranks", "crowding")

    def __init__(self, individuals: Sequence[T], ranks: np.ndarray,
                 crowding: np.ndarray) -> None:
        self.individuals = individuals
        self.ranks = ranks
        self.crowding = crowding

    def __len__(self) -> int:
        return len(self.individuals)


def _rank_arrays(vectors: List[Tuple[float, ...]],
                 backend: Optional[str]) -> Tuple[np.ndarray, np.ndarray]:
    """(ranks, crowding) vectors from one nondominated sort."""
    n = len(vectors)
    ranks = np.empty(n, dtype=np.intp)
    crowding = np.empty(n, dtype=float)
    for rank, front in enumerate(fast_nondominated_sort(vectors,
                                                        backend=backend)):
        front_crowding = crowding_distances([vectors[i] for i in front],
                                            backend=backend)
        ranks[front] = rank
        crowding[front] = front_crowding
    return ranks, crowding


def rank_population_arrays(population: Sequence[T],
                           backend: Optional[str] = None) -> RankedPopulation:
    """Array-native :func:`rank_population` (one sort, no wrapper objects)."""
    vectors = [tuple(ind.objectives) for ind in population]
    ranks, crowding = _rank_arrays(vectors, backend)
    return RankedPopulation(population, ranks, crowding)


def rank_population(population: Sequence[T],
                    backend: Optional[str] = None) -> List[RankedIndividual]:
    """Assign nondomination rank and crowding distance to every individual.

    ``backend`` selects the Pareto-kernel implementation (see
    :mod:`repro.core.pareto`); the engine threads
    ``CaffeineSettings.pareto_backend`` through here.  Results are identical
    either way.
    """
    ranked = rank_population_arrays(population, backend=backend)
    return [RankedIndividual(individual, int(rank), float(crowding))
            for individual, rank, crowding
            in zip(population, ranked.ranks, ranked.crowding, strict=True)]


def _truncation_order(crowding: Sequence[float]) -> Sequence[int]:
    """Indices of a partial front in survival order: descending crowding,
    ties kept in front (ascending-index) order.

    The tie-break is pinned behavior: it must equal the stable
    ``sorted(range(n), key=crowding.__getitem__, reverse=True)`` -- Python's
    ``reverse=True`` preserves the original relative order of equal keys,
    and so does a stable argsort of the negated values (NaN-free by the
    :mod:`repro.core.pareto` contract; ``inf`` boundary crowding is fine).
    """
    return np.argsort(-np.asarray(crowding, dtype=float), kind="stable")


def environmental_selection(population: Sequence[T], target_size: int,
                            backend: Optional[str] = None) -> List[T]:
    """NSGA-II survivor selection: fill by fronts, truncate by crowding.

    Within the one partially included front, survivors are the
    ``target_size - len(already_kept)`` members of largest crowding
    distance; on equal crowding the member earlier in the front (i.e. of
    smaller population index, since fronts are ascending) wins -- the
    stable-sort tie-break pinned by :func:`_truncation_order` and the
    regression tests.
    """
    if target_size < 1:
        raise ValueError("target_size must be >= 1")
    vectors = [tuple(ind.objectives) for ind in population]
    fronts = fast_nondominated_sort(vectors, backend=backend)
    survivors: List[T] = []
    for front in fronts:
        if len(survivors) + len(front) <= target_size:
            survivors.extend(population[i] for i in front)
            if len(survivors) == target_size:
                break
            continue
        # Partial front: keep the most spread-out individuals.
        front_vectors = [vectors[i] for i in front]
        crowding = crowding_distances(front_vectors, backend=backend)
        order = _truncation_order(crowding)
        remaining = target_size - len(survivors)
        survivors.extend(population[front[k]] for k in order[:remaining])
        break
    return survivors


def select_and_rerank(population: Sequence[T], target_size: int,
                      backend: Optional[str] = None
                      ) -> Tuple[List[T], RankedPopulation]:
    """Environmental selection plus the survivors' rank/crowding arrays.

    Behaviorally ``(environmental_selection(population, target_size),
    rank_population_arrays(survivors))``, but from a *single*
    ``fast_nondominated_sort`` of the combined population (see module
    docstring for why the derivation is exact).  The engine calls this once
    per generation; the returned :class:`RankedPopulation` seeds the next
    generation's tournaments with no extra sort.
    """
    if target_size < 1:
        raise ValueError("target_size must be >= 1")
    vectors = [tuple(ind.objectives) for ind in population]
    fronts = fast_nondominated_sort(vectors, backend=backend)
    survivors: List[T] = []
    ranks: List[int] = []
    crowding_parts: List[float] = []
    for rank, front in enumerate(fronts):
        if len(survivors) + len(front) <= target_size:
            front_crowding = crowding_distances([vectors[i] for i in front],
                                                backend=backend)
            survivors.extend(population[i] for i in front)
            ranks.extend([rank] * len(front))
            crowding_parts.extend(front_crowding)
            if len(survivors) == target_size:
                break
            continue
        front_vectors = [vectors[i] for i in front]
        front_crowding = crowding_distances(front_vectors, backend=backend)
        order = _truncation_order(front_crowding)
        remaining = target_size - len(survivors)
        kept = [front[k] for k in order[:remaining]]
        survivors.extend(population[i] for i in kept)
        ranks.extend([rank] * remaining)
        # Among the survivors this front's member list changed, so its
        # crowding must be recomputed on the kept subset (in survivor
        # order); every fully included front keeps its combined-population
        # crowding unchanged.
        crowding_parts.extend(crowding_distances([vectors[i] for i in kept],
                                                 backend=backend))
        break
    ranked = RankedPopulation(survivors,
                              np.asarray(ranks, dtype=np.intp),
                              np.asarray(crowding_parts, dtype=float))
    return survivors, ranked


def tournament_winner(ranked: RankedPopulation, first_index: int,
                      second_draw: int) -> int:
    """Index of the crowded-comparison winner between ``first_index`` and
    the ``second_draw``-th of the other ``n - 1`` positions.

    ``second_draw`` is a draw from ``[0, n - 1)``; mapping it around
    ``first_index`` reproduces :func:`binary_tournament`'s distinct-pair
    sampling exactly, so the engine can batch its four index draws per
    offspring into one ``rng.integers`` call without changing the stream.
    """
    second_index = second_draw + (second_draw >= first_index)
    ranks = ranked.ranks
    if ranks[first_index] != ranks[second_index]:
        return (first_index if ranks[first_index] < ranks[second_index]
                else second_index)
    crowding = ranked.crowding
    return (first_index if crowding[first_index] > crowding[second_index]
            else second_index)


def binary_tournament(ranked: Sequence[RankedIndividual],
                      rng: np.random.Generator) -> HasObjectives:
    """Pick the better of two *distinct* random individuals.

    Deb's NSGA-II tournament compares two different population members; an
    individual competing against itself would be a selection-pressure-free
    pick.  With at least two members the second index is drawn from the
    remaining ``n - 1`` positions, so self-competition cannot occur.
    """
    if not ranked:
        raise ValueError("cannot run a tournament on an empty population")
    n = len(ranked)
    first_index = int(rng.integers(n))
    if n == 1:
        return ranked[first_index].individual
    second_index = int(rng.integers(n - 1))
    if second_index >= first_index:
        second_index += 1
    first = ranked[first_index]
    second = ranked[second_index]
    winner = first if first.beats(second) else second
    return winner.individual
