"""NSGA-II selection machinery (Deb et al., PPSN 2000).

CAFFEINE uses NSGA-II to drive a two-objective search (training error vs.
complexity) and return a nondominated set of models.  The implementation
here is generic over objective vectors: the engine supplies a list of
individuals with an ``objectives`` tuple and receives the survivor selection
and the tournament-based parent selection.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence, Tuple, TypeVar

import numpy as np

from repro.core.pareto import crowding_distances, fast_nondominated_sort

__all__ = ["HasObjectives", "RankedIndividual", "rank_population",
           "environmental_selection", "binary_tournament"]


class HasObjectives(Protocol):
    """Anything exposing a tuple of minimized objectives."""

    @property
    def objectives(self) -> Tuple[float, ...]:  # pragma: no cover - protocol
        ...


T = TypeVar("T", bound=HasObjectives)


class RankedIndividual:
    """Bookkeeping record attaching NSGA-II rank and crowding to an individual."""

    __slots__ = ("individual", "rank", "crowding")

    def __init__(self, individual: HasObjectives, rank: int, crowding: float) -> None:
        self.individual = individual
        self.rank = rank
        self.crowding = crowding

    def beats(self, other: "RankedIndividual") -> bool:
        """Crowded-comparison operator: lower rank wins, ties by larger crowding."""
        if self.rank != other.rank:
            return self.rank < other.rank
        return self.crowding > other.crowding


def rank_population(population: Sequence[T],
                    backend: Optional[str] = None) -> List[RankedIndividual]:
    """Assign nondomination rank and crowding distance to every individual.

    ``backend`` selects the Pareto-kernel implementation (see
    :mod:`repro.core.pareto`); the engine threads
    ``CaffeineSettings.pareto_backend`` through here.  Results are identical
    either way.
    """
    vectors = [tuple(ind.objectives) for ind in population]
    fronts = fast_nondominated_sort(vectors, backend=backend)
    ranked: List[RankedIndividual] = [None] * len(population)  # type: ignore[list-item]
    for rank, front in enumerate(fronts):
        front_vectors = [vectors[i] for i in front]
        crowding = crowding_distances(front_vectors, backend=backend)
        for position, index in enumerate(front):
            ranked[index] = RankedIndividual(population[index], rank,
                                             crowding[position])
    return ranked


def environmental_selection(population: Sequence[T], target_size: int,
                            backend: Optional[str] = None) -> List[T]:
    """NSGA-II survivor selection: fill by fronts, truncate by crowding."""
    if target_size < 1:
        raise ValueError("target_size must be >= 1")
    vectors = [tuple(ind.objectives) for ind in population]
    fronts = fast_nondominated_sort(vectors, backend=backend)
    survivors: List[T] = []
    for front in fronts:
        if len(survivors) + len(front) <= target_size:
            survivors.extend(population[i] for i in front)
            if len(survivors) == target_size:
                break
            continue
        # Partial front: keep the most spread-out individuals.
        front_vectors = [vectors[i] for i in front]
        crowding = crowding_distances(front_vectors, backend=backend)
        order = sorted(range(len(front)), key=lambda k: crowding[k], reverse=True)
        remaining = target_size - len(survivors)
        survivors.extend(population[front[k]] for k in order[:remaining])
        break
    return survivors


def binary_tournament(ranked: Sequence[RankedIndividual],
                      rng: np.random.Generator) -> HasObjectives:
    """Pick the better of two *distinct* random individuals.

    Deb's NSGA-II tournament compares two different population members; an
    individual competing against itself would be a selection-pressure-free
    pick.  With at least two members the second index is drawn from the
    remaining ``n - 1`` positions, so self-competition cannot occur.
    """
    if not ranked:
        raise ValueError("cannot run a tournament on an empty population")
    n = len(ranked)
    first_index = int(rng.integers(n))
    if n == 1:
        return ranked[first_index].individual
    second_index = int(rng.integers(n - 1))
    if second_index >= first_index:
        second_index += 1
    first = ranked[first_index]
    second = ranked[second_index]
    winner = first if first.beats(second) else second
    return winner.individual
