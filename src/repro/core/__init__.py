"""CAFFEINE core: canonical-form grammar GP for template-free symbolic modeling.

The public surface of the core package:

* :class:`~repro.core.problem.Problem` / :class:`~repro.core.session.Session`
  -- package modeling tasks and orchestrate many of them (serially or on a
  process pool) over one shared, optionally persistent column cache, with
  crash-safe checkpoint/resume (``checkpoint_path`` +
  :meth:`~repro.core.session.Session.resume`, bit-identical restarts) and
  fault tolerance (per-problem timeouts/retries, worker-crash containment,
  partial results with structured
  :class:`~repro.core.session.ProblemFailure` records);
* :class:`~repro.core.engine.CaffeineEngine` -- one run's evolutionary
  loop (:func:`~repro.core.engine.run_caffeine` is the legacy one-call
  shim over a one-problem session);
* :class:`~repro.core.settings.CaffeineSettings` -- all tunables (paper
  settings available via ``CaffeineSettings.paper_settings()``);
* :mod:`repro.core.registry` -- named registries behind every
  ``*_backend`` settings field, so new column/fit/pareto/evaluation
  backends plug in without touching the engine;
* :class:`~repro.core.model.SymbolicModel` / :class:`~repro.core.model.TradeoffSet`
  -- the resulting error-vs-complexity trade-off of interpretable models;
* :mod:`repro.core.artifact` -- deployment: freeze a finished trade-off as
  a small versioned artifact (:func:`~repro.core.artifact.save_front`) and
  load it back as a prediction-only
  :class:`~repro.core.artifact.FrozenFront`
  (:func:`~repro.core.artifact.load_front`), served over HTTP by
  :mod:`repro.serve`;
* grammar machinery (:mod:`repro.core.grammar`), expression trees
  (:mod:`repro.core.expression`), operators (:mod:`repro.core.operators`) and
  the NSGA-II layer (:mod:`repro.core.nsga2`) for users who want to extend
  the search.
"""

from repro.core.artifact import (
    FrontArtifactStore,
    FrozenFront,
    load_front,
    save_front,
)
from repro.core.cache_store import (
    ColumnCacheStore,
    FileLock,
    RunCheckpointStore,
)
from repro.core.faults import InjectedFault
from repro.core.compile import (
    CompilationError,
    CompiledKernel,
    TreeCompiler,
    compile_basis_function,
    skeleton_and_params,
)
from repro.core.complexity import basis_function_complexity, model_complexity, vc_cost
from repro.core.evaluation import (
    BasisColumnCache,
    CacheStats,
    GramPool,
    PopulationEvaluator,
    dataset_fingerprint,
)
from repro.core.engine import (
    CaffeineEngine,
    CaffeineResult,
    GenerationStats,
    run_caffeine,
)
from repro.core.expression import (
    BinaryOpTerm,
    ConditionalOpTerm,
    ExpressionNode,
    ProductTerm,
    UnaryOpTerm,
    WeightedSum,
    WeightedTerm,
    structural_key,
)
from repro.core.functions import (
    FunctionSet,
    Operator,
    default_function_set,
    polynomial_function_set,
    rational_function_set,
)
from repro.core.generator import ExpressionGenerator
from repro.core.grammar import (
    CAFFEINE_GRAMMAR_TEXT,
    Grammar,
    GrammarError,
    default_grammar,
    function_set_from_grammar,
    grammar_text_for_function_set,
    parse_grammar,
    validate_expression,
)
from repro.core.individual import (
    Individual,
    evaluate_basis_column,
    evaluate_basis_matrix,
)
from repro.core.model import SymbolicModel, TradeoffSet
from repro.core.operators import VariationOperators, collect_slots
from repro.core.problem import Problem
from repro.core.registry import (
    BACKEND_KINDS,
    BackendRegistry,
    available_backends,
    backend_names,
    backend_registry,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.core.session import (
    LegacyProgressCallback,
    ProblemFailure,
    ProgressPrinter,
    Session,
    SessionCallback,
    SessionResult,
)
from repro.core.settings import CaffeineSettings
from repro.core.simplify import simplify_individual, simplify_population
from repro.core.variable_combo import VariableCombo
from repro.core.weights import Weight

__all__ = [
    "run_caffeine",
    "CaffeineEngine",
    "CaffeineResult",
    "GenerationStats",
    "CaffeineSettings",
    "Problem",
    "Session",
    "SessionCallback",
    "SessionResult",
    "ProblemFailure",
    "ProgressPrinter",
    "LegacyProgressCallback",
    "InjectedFault",
    "BACKEND_KINDS",
    "BackendRegistry",
    "available_backends",
    "backend_names",
    "backend_registry",
    "get_backend",
    "register_backend",
    "unregister_backend",
    "FileLock",
    "SymbolicModel",
    "TradeoffSet",
    "Individual",
    "evaluate_basis_column",
    "evaluate_basis_matrix",
    "PopulationEvaluator",
    "BasisColumnCache",
    "CacheStats",
    "GramPool",
    "dataset_fingerprint",
    "ColumnCacheStore",
    "RunCheckpointStore",
    "FrontArtifactStore",
    "FrozenFront",
    "save_front",
    "load_front",
    "TreeCompiler",
    "CompiledKernel",
    "CompilationError",
    "compile_basis_function",
    "skeleton_and_params",
    "structural_key",
    "ExpressionGenerator",
    "VariationOperators",
    "collect_slots",
    "simplify_individual",
    "simplify_population",
    "model_complexity",
    "basis_function_complexity",
    "vc_cost",
    "ExpressionNode",
    "ProductTerm",
    "WeightedSum",
    "WeightedTerm",
    "UnaryOpTerm",
    "BinaryOpTerm",
    "ConditionalOpTerm",
    "VariableCombo",
    "Weight",
    "FunctionSet",
    "Operator",
    "default_function_set",
    "rational_function_set",
    "polynomial_function_set",
    "Grammar",
    "GrammarError",
    "CAFFEINE_GRAMMAR_TEXT",
    "parse_grammar",
    "default_grammar",
    "grammar_text_for_function_set",
    "function_set_from_grammar",
    "validate_expression",
]
