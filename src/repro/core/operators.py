"""Evolutionary variation operators.

CAFFEINE's operators act on three levels and all respect the grammar --
"only subtrees with the same root can be crossed over, and random generation
of trees must follow the derivation rules":

* **parameter level** -- zero-mean Cauchy mutation of ``W`` weights (the paper
  makes this operator 5x more likely than the others), and the VC operators
  (one-point crossover of exponent vectors, +/-1 on a random exponent);
* **tree level** -- subtree crossover between nodes with the same grammar
  symbol, and subtree mutation (regenerating a random subtree);
* **basis-function level** -- creating a new individual by randomly choosing
  at least one basis function from each of two parents; deleting a random
  basis function; adding a randomly generated tree as a new basis function;
  copying a subtree from one individual to become a new basis function of
  another.

All operators return *new* individuals; parents are never modified.

Two genome backends implement that contract
(``CaffeineSettings.genome_backend``):

* ``"shared"`` (default) -- **path copying**.  A child starts as a fresh
  individual whose bases *list* is fresh but whose trees are shared by
  reference with the parents.  An edit at some slot rebuilds only the spine
  of shallow node copies from that slot up to the basis root (``O(depth)``
  fresh nodes for an ``O(n)``-node parent) and shares every untouched
  subtree; donor material from the second parent is likewise shared, never
  cloned.  Shared subtrees keep their memoized structural keys/skeletons
  (:mod:`repro.core.expression`), which is what keeps the evaluation caches
  warm.  Only the fresh spine nodes need re-canonicalization
  (:func:`repro.core.compile.canonicalize_fresh_product_term`).
* ``"deepcopy"`` -- the original reference path: clone the whole parent,
  edit the clone in place, canonicalize the whole child.  Kept for the
  fixed-seed equivalence gate (``genome_shared_vs_deepcopy``); both
  backends consume identical RNG draw sequences and produce bit-identical
  children.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.core.expression import (
    BinaryOpTerm,
    ConditionalOpTerm,
    ExpressionNode,
    OpTerm,
    ProductTerm,
    UnaryOpTerm,
    WeightedSum,
    WeightedTerm,
    cached_depth,
    iter_nodes,
    iter_variable_combos,
    iter_weights,
)
from repro.core.compile import canonicalize_factors, canonicalize_fresh_product_term
from repro.core.generator import ExpressionGenerator
from repro.core.individual import Individual
from repro.core.settings import CaffeineSettings
from repro.core.weights import Weight, cauchy_mutated_value

__all__ = ["Slot", "collect_slots", "VariationOperators"]


@dataclasses.dataclass
class Slot:
    """A replaceable position in an individual's trees.

    ``kind`` is the grammar symbol of the node occupying the slot
    (``"REPVC"`` for product terms, ``"REPOP"`` for operator terms,
    ``"REPADD"`` for weighted sums); ``get``/``set`` read and replace it.
    """

    kind: str
    get: Callable[[], ExpressionNode]
    set: Callable[[ExpressionNode], None]


def _list_slot(kind: str, container: list, index: int) -> Slot:
    return Slot(kind=kind,
                get=lambda: container[index],
                set=lambda node: container.__setitem__(index, node))


def _attr_slot(kind: str, owner: object, attribute: str) -> Slot:
    return Slot(kind=kind,
                get=lambda: getattr(owner, attribute),
                set=lambda node: setattr(owner, attribute, node))


def collect_slots(individual: Individual, include_bases: bool = True) -> List[Slot]:
    """Every grammar-legal replacement point in an individual.

    Top-level basis functions are ``REPVC`` slots; positions inside trees are
    collected by walking every node and recording where product terms,
    operator terms and weighted sums live.  These slots mutate the trees in
    place -- they are the ``"deepcopy"`` genome backend's editing primitive
    (and a public API for tests/tools); the ``"shared"`` backend uses the
    path-addressed sites below, in exactly this order.
    """
    slots: List[Slot] = []
    if include_bases:
        for index in range(len(individual.bases)):
            slots.append(_list_slot("REPVC", individual.bases, index))

    for basis in individual.bases:
        for node in iter_nodes(basis):
            if isinstance(node, ProductTerm):
                for op_index in range(len(node.ops)):
                    slots.append(_list_slot("REPOP", node.ops, op_index))
            elif isinstance(node, WeightedSum):
                for term in node.terms:
                    slots.append(_attr_slot("REPVC", term, "term"))
            elif isinstance(node, UnaryOpTerm):
                slots.append(_attr_slot("REPADD", node, "argument"))
            elif isinstance(node, BinaryOpTerm):
                if isinstance(node.left, WeightedSum):
                    slots.append(_attr_slot("REPADD", node, "left"))
                if isinstance(node.right, WeightedSum):
                    slots.append(_attr_slot("REPADD", node, "right"))
            elif isinstance(node, ConditionalOpTerm):
                slots.append(_attr_slot("REPADD", node, "test"))
                slots.append(_attr_slot("REPADD", node, "if_true"))
                slots.append(_attr_slot("REPADD", node, "if_false"))
                if isinstance(node.threshold, WeightedSum):
                    slots.append(_attr_slot("REPADD", node, "threshold"))
    return slots


# ----------------------------------------------------------------------
# path-addressed sites (the "shared" genome backend's editing primitive)
# ----------------------------------------------------------------------
# A site is (kind, basis_index, path, occupant): ``path`` is a tuple of
# edges from the basis root to the occupant, each edge a tuple whose first
# element names the attribute ("ops", "term", "argument", ...) and whose
# optional second element is a list index.  Paths address positions, not
# objects, so they stay unambiguous even when one node object appears at
# several positions (possible after sharing donor material or when
# parent_a is parent_b).

def _walk_slot_sites(node: ExpressionNode, basis_index: int,
                     path: Tuple[Tuple, ...], out: List[Tuple]) -> None:
    # Pre-order, mirroring collect_slots: record this node's slots, then
    # recurse into children in children() order.
    if isinstance(node, ProductTerm):
        for i, op in enumerate(node.ops):
            out.append(("REPOP", basis_index, path + (("ops", i),), op))
        for i, op in enumerate(node.ops):
            _walk_slot_sites(op, basis_index, path + (("ops", i),), out)
    elif isinstance(node, WeightedSum):
        for i, weighted in enumerate(node.terms):
            out.append(("REPVC", basis_index, path + (("term", i),),
                        weighted.term))
        for i, weighted in enumerate(node.terms):
            _walk_slot_sites(weighted.term, basis_index,
                             path + (("term", i),), out)
    elif isinstance(node, UnaryOpTerm):
        out.append(("REPADD", basis_index, path + (("argument",),),
                    node.argument))
        _walk_slot_sites(node.argument, basis_index,
                         path + (("argument",),), out)
    elif isinstance(node, BinaryOpTerm):
        if isinstance(node.left, WeightedSum):
            out.append(("REPADD", basis_index, path + (("left",),), node.left))
        if isinstance(node.right, WeightedSum):
            out.append(("REPADD", basis_index, path + (("right",),),
                        node.right))
        if isinstance(node.left, WeightedSum):
            _walk_slot_sites(node.left, basis_index, path + (("left",),), out)
        if isinstance(node.right, WeightedSum):
            _walk_slot_sites(node.right, basis_index, path + (("right",),),
                             out)
    elif isinstance(node, ConditionalOpTerm):
        out.append(("REPADD", basis_index, path + (("test",),), node.test))
        out.append(("REPADD", basis_index, path + (("if_true",),),
                    node.if_true))
        out.append(("REPADD", basis_index, path + (("if_false",),),
                    node.if_false))
        if isinstance(node.threshold, WeightedSum):
            out.append(("REPADD", basis_index, path + (("threshold",),),
                        node.threshold))
        _walk_slot_sites(node.test, basis_index, path + (("test",),), out)
        if isinstance(node.threshold, WeightedSum):
            _walk_slot_sites(node.threshold, basis_index,
                             path + (("threshold",),), out)
        _walk_slot_sites(node.if_true, basis_index, path + (("if_true",),),
                         out)
        _walk_slot_sites(node.if_false, basis_index, path + (("if_false",),),
                         out)


def _slot_sites(individual: Individual,
                include_bases: bool = True) -> List[Tuple]:
    """Path-addressed equivalent of :func:`collect_slots`, read-only.

    Returns sites in exactly :func:`collect_slots` order, so index draws
    against either representation pick the same grammatical position.
    """
    sites: List[Tuple] = []
    if include_bases:
        for index, basis in enumerate(individual.bases):
            sites.append(("REPVC", index, (), basis))
    for index, basis in enumerate(individual.bases):
        _walk_slot_sites(basis, index, (), sites)
    return sites


def _walk_weight_sites(node: ExpressionNode, basis_index: int,
                       path: Tuple[Tuple, ...], out: List[Tuple]) -> None:
    # Pre-order, mirroring iter_weights' enumeration order.
    if isinstance(node, WeightedSum):
        out.append((basis_index, path + (("offset",),), node.offset))
        for i, weighted in enumerate(node.terms):
            out.append((basis_index, path + (("tweight", i),),
                        weighted.weight))
        for i, weighted in enumerate(node.terms):
            _walk_weight_sites(weighted.term, basis_index,
                               path + (("term", i),), out)
    elif isinstance(node, ProductTerm):
        for i, op in enumerate(node.ops):
            _walk_weight_sites(op, basis_index, path + (("ops", i),), out)
    elif isinstance(node, UnaryOpTerm):
        _walk_weight_sites(node.argument, basis_index,
                           path + (("argument",),), out)
    elif isinstance(node, BinaryOpTerm):
        if isinstance(node.left, Weight):
            out.append((basis_index, path + (("left",),), node.left))
        if isinstance(node.right, Weight):
            out.append((basis_index, path + (("right",),), node.right))
        if isinstance(node.left, WeightedSum):
            _walk_weight_sites(node.left, basis_index, path + (("left",),),
                               out)
        if isinstance(node.right, WeightedSum):
            _walk_weight_sites(node.right, basis_index, path + (("right",),),
                               out)
    elif isinstance(node, ConditionalOpTerm):
        if isinstance(node.threshold, Weight):
            out.append((basis_index, path + (("threshold",),),
                        node.threshold))
        _walk_weight_sites(node.test, basis_index, path + (("test",),), out)
        if isinstance(node.threshold, WeightedSum):
            _walk_weight_sites(node.threshold, basis_index,
                               path + (("threshold",),), out)
        _walk_weight_sites(node.if_true, basis_index, path + (("if_true",),),
                           out)
        _walk_weight_sites(node.if_false, basis_index,
                           path + (("if_false",),), out)


def _weight_sites(individual: Individual) -> List[Tuple]:
    """``(basis_index, path, weight)`` for every ``W`` terminal, read-only,
    in the same order ``iter_weights`` enumerates them basis by basis."""
    sites: List[Tuple] = []
    for index, basis in enumerate(individual.bases):
        _walk_weight_sites(basis, index, (), sites)
    return sites


def _vc_sites(individual: Individual) -> List[Tuple]:
    """``(basis_index, path, owner_product_term)`` for every variable
    combo, read-only, in ``iter_variable_combos`` order."""
    sites: List[Tuple] = []
    for index, basis in enumerate(individual.bases):
        stack: List[Tuple[ExpressionNode, Tuple[Tuple, ...]]] = [(basis, ())]
        while stack:
            node, path = stack.pop()
            if isinstance(node, ProductTerm):
                if node.vc is not None:
                    sites.append((index, path, node))
                stack.extend(reversed([(op, path + (("ops", i),))
                                       for i, op in enumerate(node.ops)]))
            elif isinstance(node, WeightedSum):
                stack.extend(reversed([(w.term, path + (("term", i),))
                                       for i, w in enumerate(node.terms)]))
            elif isinstance(node, UnaryOpTerm):
                stack.append((node.argument, path + (("argument",),)))
            elif isinstance(node, BinaryOpTerm):
                children = []
                if isinstance(node.left, WeightedSum):
                    children.append((node.left, path + (("left",),)))
                if isinstance(node.right, WeightedSum):
                    children.append((node.right, path + (("right",),)))
                stack.extend(reversed(children))
            elif isinstance(node, ConditionalOpTerm):
                children = [(node.test, path + (("test",),))]
                if isinstance(node.threshold, WeightedSum):
                    children.append((node.threshold, path + (("threshold",),)))
                children.append((node.if_true, path + (("if_true",),)))
                children.append((node.if_false, path + (("if_false",),)))
                stack.extend(reversed(children))
    return sites


def _child_at(node: ExpressionNode, edge: Tuple):
    tag = edge[0]
    if tag == "ops":
        return node.ops[edge[1]]
    if tag == "term":
        return node.terms[edge[1]].term
    if tag == "argument":
        return node.argument
    if tag in ("left", "right", "test", "threshold", "if_true", "if_false"):
        return getattr(node, tag)
    raise KeyError(f"cannot descend through edge {edge!r}")


def _replace_at(node: ExpressionNode, edge: Tuple, new) -> ExpressionNode:
    """Shallow copy of ``node`` with the position at ``edge`` replaced.

    Containers (ops/terms lists) are copied so the fresh node never aliases
    a shared parent's mutable list; the elements themselves stay shared.
    """
    tag = edge[0]
    if tag == "ops":
        ops = list(node.ops)
        ops[edge[1]] = new
        return ProductTerm(vc=node.vc, ops=ops)
    if tag == "vc":
        return ProductTerm(vc=new, ops=list(node.ops))
    if tag == "term":
        terms = list(node.terms)
        old = terms[edge[1]]
        terms[edge[1]] = WeightedTerm(weight=old.weight, term=new)
        return WeightedSum(offset=node.offset, terms=terms)
    if tag == "tweight":
        terms = list(node.terms)
        old = terms[edge[1]]
        terms[edge[1]] = WeightedTerm(weight=new, term=old.term)
        return WeightedSum(offset=node.offset, terms=terms)
    if tag == "offset":
        return WeightedSum(offset=new, terms=list(node.terms))
    if tag == "argument":
        return UnaryOpTerm(op=node.op, argument=new)
    if tag == "left":
        return BinaryOpTerm(op=node.op, left=new, right=node.right)
    if tag == "right":
        return BinaryOpTerm(op=node.op, left=node.left, right=new)
    if tag in ("test", "threshold", "if_true", "if_false"):
        parts = {"test": node.test, "threshold": node.threshold,
                 "if_true": node.if_true, "if_false": node.if_false}
        parts[tag] = new
        return ConditionalOpTerm(op=node.op, **parts)
    raise KeyError(f"cannot replace through edge {edge!r}")


def _rebuild(root: ExpressionNode, path: Tuple[Tuple, ...], new_value,
             fresh: List[ExpressionNode]) -> ExpressionNode:
    """Path-copy: rebuild the spine from the edited position to the root.

    Returns the new root; appends every fresh spine copy to ``fresh`` in
    deepest-first creation order (the order
    :func:`_canonicalize_fresh` must process them in).  An empty path
    replaces the root itself.
    """
    if not path:
        return new_value

    def rebuild_from(node: ExpressionNode, index: int) -> ExpressionNode:
        edge = path[index]
        if index == len(path) - 1:
            replacement = new_value
        else:
            replacement = rebuild_from(_child_at(node, edge), index + 1)
        copy = _replace_at(node, edge, replacement)
        fresh.append(copy)
        return copy

    return rebuild_from(root, 0)


def _canonicalize_fresh(fresh: List[ExpressionNode]) -> None:
    """Re-sort the factor lists of freshly path-copied spine nodes.

    ``fresh`` arrives deepest-first, so by the time a product term is
    sorted every fresh descendant is already in its final order -- the
    exact post-order subset of ``canonicalize_factors`` that can reorder
    anything (shared subtrees are canonical by the population invariant).
    """
    for node in fresh:
        if type(node) is ProductTerm:
            canonicalize_fresh_product_term(node)


class VariationOperators:
    """Applies CAFFEINE's variation operators with the configured probabilities."""

    def __init__(self, generator: ExpressionGenerator,
                 settings: CaffeineSettings,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.generator = generator
        self.settings = settings
        self.rng = rng if rng is not None else generator.rng
        self._operators: List[Tuple[str, float]] = [
            ("parameter_mutation", settings.parameter_mutation_bias),
            ("vc_mutation", 1.0),
            ("vc_crossover", 1.0),
            ("subtree_mutation", 1.0),
            ("subtree_crossover", 1.0),
            ("basis_crossover", 1.0),
            ("basis_delete", 1.0),
            ("basis_add", 1.0),
            ("basis_copy", 1.0),
        ]
        # The dispatch table is fixed for the operator set's lifetime, so
        # the name array and normalized probability vector are built once
        # here instead of on every vary() call.
        self._operator_names = [name for name, _ in self._operators]
        weights = np.array([weight for _, weight in self._operators],
                           dtype=float)
        self._operator_probabilities = weights / weights.sum()
        self._shared = settings.genome_backend == "shared"

    # ------------------------------------------------------------------
    # top-level entry point
    # ------------------------------------------------------------------
    def vary(self, parent_a: Individual, parent_b: Individual) -> Individual:
        """Produce one child from two parents using a randomly chosen operator.

        If the chosen operator cannot apply (e.g. deleting from a one-basis
        individual) it falls back to parameter mutation, which always applies.
        """
        operator_name = str(self.rng.choice(self._operator_names,
                                            p=self._operator_probabilities))
        child = self._dispatch(operator_name, parent_a, parent_b)
        if child is None:
            child = self.parameter_mutation(parent_a)
        child = self._enforce_limits(child)
        # Offspring leave variation canonical: crossover and mutation can
        # reorder or recombine commutative product factors, and sorting them
        # back into canonical order (on the freshly built, not-yet-evaluated
        # trees) is what lets order-variants share cached columns and
        # compiled kernels.  Parents are never touched.  The shared backend
        # already canonicalized its fresh spine nodes inside each operator
        # (everything else is shared and canonical by the population
        # invariant), so only the deepcopy reference path pays the
        # full-tree pass.
        if not self._shared:
            for basis in child.bases:
                canonicalize_factors(basis)
        return child

    def operator_names(self) -> Tuple[str, ...]:
        return tuple(self._operator_names)

    def _dispatch(self, name: str, parent_a: Individual,
                  parent_b: Individual) -> Optional[Individual]:
        if name == "parameter_mutation":
            return self.parameter_mutation(parent_a)
        if name == "vc_mutation":
            return self.vc_mutation(parent_a)
        if name == "vc_crossover":
            return self.vc_crossover(parent_a, parent_b)
        if name == "subtree_mutation":
            return self.subtree_mutation(parent_a)
        if name == "subtree_crossover":
            return self.subtree_crossover(parent_a, parent_b)
        if name == "basis_crossover":
            return self.basis_crossover(parent_a, parent_b)
        if name == "basis_delete":
            return self.basis_delete(parent_a)
        if name == "basis_add":
            return self.basis_add(parent_a)
        if name == "basis_copy":
            return self.basis_copy(parent_a, parent_b)
        raise KeyError(f"unknown operator {name!r}")

    # ------------------------------------------------------------------
    # shared-backend helper
    # ------------------------------------------------------------------
    def _rebuild_child(self, parent: Individual, basis_index: int,
                       path: Tuple[Tuple, ...], new_node) -> Individual:
        """One-edit path-copied child: share everything but the spine."""
        child = parent.shared_clone()
        fresh: List[ExpressionNode] = []
        child.bases[basis_index] = _rebuild(child.bases[basis_index], path,
                                            new_node, fresh)
        _canonicalize_fresh(fresh)
        return child

    # ------------------------------------------------------------------
    # parameter level
    # ------------------------------------------------------------------
    def parameter_mutation(self, parent: Individual) -> Individual:
        """Cauchy-mutate one (or a few) random weights of the parent.

        The child shares (or deep-copies, per the genome backend) the
        parent's trees; the parent is never modified.
        """
        if self._shared:
            return self._parameter_mutation_shared(parent)
        child = parent.clone()
        weights = []
        for basis in child.bases:
            weights.extend(iter_weights(basis))
        if not weights:
            return self.basis_add(parent) or child
        n_mutations = 1 + int(self.rng.integers(0, 2))
        for _ in range(n_mutations):
            weight = weights[int(self.rng.integers(len(weights)))]
            mutated = weight.mutated(self.rng, self.settings.weight_mutation_scale)
            weight.stored = mutated.stored
        return child

    def _parameter_mutation_shared(self, parent: Individual) -> Individual:
        sites = _weight_sites(parent)
        if not sites:
            return self.basis_add(parent) or parent.shared_clone()
        n_mutations = 1 + int(self.rng.integers(0, 2))
        scale = self.settings.weight_mutation_scale
        # Draws must interleave exactly as the in-place path's do (index,
        # cauchy, index, cauchy, ...), and a repeated index must compose:
        # the second mutation perturbs the first one's result.
        pending = {}
        for _ in range(n_mutations):
            index = int(self.rng.integers(len(sites)))
            weight = sites[index][2]
            stored = pending.get(index, weight.stored)
            pending[index] = cauchy_mutated_value(
                stored, scale, self.rng, weight.exponent_bound)
        child = parent.shared_clone()
        fresh: List[ExpressionNode] = []
        for index, stored in pending.items():
            basis_index, path, weight = sites[index]
            replacement = Weight(stored=stored,
                                 exponent_bound=weight.exponent_bound)
            child.bases[basis_index] = _rebuild(child.bases[basis_index],
                                                path, replacement, fresh)
        # Canonicalize after *all* edits (weight values are part of the
        # factor sort keys); the paths above stay valid because nothing is
        # reordered until here.
        _canonicalize_fresh(fresh)
        return child

    def vc_mutation(self, parent: Individual) -> Optional[Individual]:
        """Add or subtract 1 to a random exponent of a random variable combo."""
        if self._shared:
            sites = _vc_sites(parent)
            if not sites:
                return None
            basis_index, path, owner = sites[int(self.rng.integers(len(sites)))]
            new_vc = owner.vc.mutated(self.rng, self.settings.max_vc_exponent,
                                      self.settings.allow_negative_exponents)
            replacement = ProductTerm(vc=new_vc, ops=list(owner.ops))
            return self._rebuild_child(parent, basis_index, path, replacement)
        child = parent.clone()
        owners = []
        for basis in child.bases:
            owners.extend(iter_variable_combos(basis))
        if not owners:
            return None
        owner, vc = owners[int(self.rng.integers(len(owners)))]
        owner.vc = vc.mutated(self.rng, self.settings.max_vc_exponent,
                              self.settings.allow_negative_exponents)
        return child

    def vc_crossover(self, parent_a: Individual,
                     parent_b: Individual) -> Optional[Individual]:
        """One-point crossover between a VC of each parent (child from parent A)."""
        if self._shared:
            sites_a = _vc_sites(parent_a)
            vcs_b = []
            for basis in parent_b.bases:
                vcs_b.extend(vc for _, vc in iter_variable_combos(basis))
            if not sites_a or not vcs_b:
                return None
            basis_index, path, owner = \
                sites_a[int(self.rng.integers(len(sites_a)))]
            vc_b = vcs_b[int(self.rng.integers(len(vcs_b)))]
            new_vc, _ = owner.vc.crossover(vc_b, self.rng)
            replacement = ProductTerm(vc=new_vc, ops=list(owner.ops))
            return self._rebuild_child(parent_a, basis_index, path,
                                       replacement)
        child = parent_a.clone()
        owners_a = []
        for basis in child.bases:
            owners_a.extend(iter_variable_combos(basis))
        owners_b = []
        for basis in parent_b.bases:
            owners_b.extend(iter_variable_combos(basis))
        if not owners_a or not owners_b:
            return None
        owner_a, vc_a = owners_a[int(self.rng.integers(len(owners_a)))]
        _, vc_b = owners_b[int(self.rng.integers(len(owners_b)))]
        new_vc, _ = vc_a.crossover(vc_b, self.rng)
        owner_a.vc = new_vc
        return child

    # ------------------------------------------------------------------
    # tree level
    # ------------------------------------------------------------------
    def subtree_mutation(self, parent: Individual) -> Optional[Individual]:
        """Replace a random subtree with a freshly generated one of the same symbol."""
        depth_budget = max(2, self.settings.max_tree_depth - 2)
        if self._shared:
            sites = _slot_sites(parent)
            if not sites:
                return None
            kind, basis_index, path, _ = \
                sites[int(self.rng.integers(len(sites)))]
            if kind == "REPVC":
                replacement = self.generator.random_product_term(depth_budget)
            elif kind == "REPOP":
                replacement = self.generator.random_op_term(depth_budget)
            else:  # REPADD
                replacement = self.generator.random_weighted_sum(depth_budget)
            return self._rebuild_child(parent, basis_index, path, replacement)
        child = parent.clone()
        slots = collect_slots(child)
        if not slots:
            return None
        slot = slots[int(self.rng.integers(len(slots)))]
        if slot.kind == "REPVC":
            slot.set(self.generator.random_product_term(depth_budget))
        elif slot.kind == "REPOP":
            slot.set(self.generator.random_op_term(depth_budget))
        else:  # REPADD
            slot.set(self.generator.random_weighted_sum(depth_budget))
        return child

    def subtree_crossover(self, parent_a: Individual,
                          parent_b: Individual) -> Optional[Individual]:
        """Swap subtrees between parents; only same-symbol roots are exchanged.

        The donor parent is enumerated read-only in both genome backends;
        the shared path grafts the donor subtree by reference, the deepcopy
        path clones exactly the transplanted subtree (never the whole
        donor).
        """
        donor_sites = _slot_sites(parent_b)
        if self._shared:
            child_sites = _slot_sites(parent_a)
            if not child_sites or not donor_sites:
                return None
            order = self.rng.permutation(len(child_sites))
            for slot_index in order:
                kind, basis_index, path, _ = child_sites[int(slot_index)]
                compatible = [d for d in donor_sites if d[0] == kind]
                if compatible:
                    donor = compatible[int(self.rng.integers(len(compatible)))]
                    return self._rebuild_child(parent_a, basis_index, path,
                                               donor[3])
            return None
        child = parent_a.clone()
        child_slots = collect_slots(child)
        if not child_slots or not donor_sites:
            return None
        order = self.rng.permutation(len(child_slots))
        for slot_index in order:
            slot = child_slots[int(slot_index)]
            compatible = [d for d in donor_sites if d[0] == slot.kind]
            if compatible:
                donor = compatible[int(self.rng.integers(len(compatible)))]
                slot.set(donor[3].clone())
                return child
        return None

    # ------------------------------------------------------------------
    # basis-function level
    # ------------------------------------------------------------------
    def basis_crossover(self, parent_a: Individual,
                        parent_b: Individual) -> Optional[Individual]:
        """New individual from >0 randomly chosen basis functions of each parent."""
        if not parent_a.bases or not parent_b.bases:
            return None
        chosen: List[ProductTerm] = []
        for parent in (parent_a, parent_b):
            n_take = 1 + int(self.rng.integers(len(parent.bases)))
            indices = self.rng.choice(len(parent.bases), size=n_take, replace=False)
            if self._shared:
                chosen.extend(parent.bases[i] for i in np.sort(indices))
            else:
                chosen.extend(parent.bases[i].clone() for i in np.sort(indices))
        max_bases = self.settings.max_basis_functions
        if len(chosen) > max_bases:
            keep = self.rng.choice(len(chosen), size=max_bases, replace=False)
            chosen = [chosen[i] for i in np.sort(keep)]
        return Individual(bases=chosen)

    def basis_delete(self, parent: Individual) -> Optional[Individual]:
        """Delete one random basis function.

        Deleting the last basis function is allowed: the resulting individual
        is the constant (intercept-only) model, which the paper reports as
        the zero-complexity end of every trade-off curve.
        """
        if parent.n_bases < 1:
            return None
        if self._shared:
            index = int(self.rng.integers(parent.n_bases))
            bases = list(parent.bases)
            del bases[index]
            return parent.shared_clone(bases)
        child = parent.clone()
        index = int(self.rng.integers(len(child.bases)))
        del child.bases[index]
        return child

    def basis_add(self, parent: Individual) -> Optional[Individual]:
        """Add a randomly generated tree as a new basis function."""
        if parent.n_bases >= self.settings.max_basis_functions:
            return None
        if self._shared:
            bases = list(parent.bases)
            bases.append(self.generator.random_product_term())
            return parent.shared_clone(bases)
        child = parent.clone()
        child.bases.append(self.generator.random_product_term())
        return child

    def basis_copy(self, parent_a: Individual,
                   parent_b: Individual) -> Optional[Individual]:
        """Copy a subtree of parent B to become a new basis function of parent A."""
        if parent_a.n_bases >= self.settings.max_basis_functions:
            return None
        if self._shared:
            donor_sites = [site for site in _slot_sites(parent_b)
                           if site[0] == "REPVC"]
            if not donor_sites:
                return None
            donor = donor_sites[int(self.rng.integers(len(donor_sites)))]
            bases = list(parent_a.bases)
            bases.append(donor[3])
            return parent_a.shared_clone(bases)
        donor_slots = [slot for slot in collect_slots(parent_b)
                       if slot.kind == "REPVC"]
        if not donor_slots:
            return None
        child = parent_a.clone()
        slot = donor_slots[int(self.rng.integers(len(donor_slots)))]
        child.bases.append(slot.get().clone())
        return child

    # ------------------------------------------------------------------
    def _enforce_limits(self, child: Individual) -> Individual:
        """Clamp basis count and tree depth to the configured limits."""
        max_bases = self.settings.max_basis_functions
        if len(child.bases) > max_bases:
            keep = self.rng.choice(len(child.bases), size=max_bases, replace=False)
            child.bases = [child.bases[i] for i in np.sort(keep)]
        max_depth = self.settings.max_tree_depth
        for index, basis in enumerate(child.bases):
            depth = cached_depth(basis) if self._shared else basis.depth
            if depth > max_depth:
                child.bases[index] = self.generator.random_product_term()
        return child
