"""Evolutionary variation operators.

CAFFEINE's operators act on three levels and all respect the grammar --
"only subtrees with the same root can be crossed over, and random generation
of trees must follow the derivation rules":

* **parameter level** -- zero-mean Cauchy mutation of ``W`` weights (the paper
  makes this operator 5x more likely than the others), and the VC operators
  (one-point crossover of exponent vectors, +/-1 on a random exponent);
* **tree level** -- subtree crossover between nodes with the same grammar
  symbol, and subtree mutation (regenerating a random subtree);
* **basis-function level** -- creating a new individual by randomly choosing
  at least one basis function from each of two parents; deleting a random
  basis function; adding a randomly generated tree as a new basis function;
  copying a subtree from one individual to become a new basis function of
  another.

All operators return *new* individuals; parents are never modified.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.core.expression import (
    BinaryOpTerm,
    ConditionalOpTerm,
    ExpressionNode,
    OpTerm,
    ProductTerm,
    UnaryOpTerm,
    WeightedSum,
    iter_nodes,
    iter_variable_combos,
    iter_weights,
)
from repro.core.compile import canonicalize_factors
from repro.core.generator import ExpressionGenerator
from repro.core.individual import Individual
from repro.core.settings import CaffeineSettings

__all__ = ["Slot", "collect_slots", "VariationOperators"]


@dataclasses.dataclass
class Slot:
    """A replaceable position in an individual's trees.

    ``kind`` is the grammar symbol of the node occupying the slot
    (``"REPVC"`` for product terms, ``"REPOP"`` for operator terms,
    ``"REPADD"`` for weighted sums); ``get``/``set`` read and replace it.
    """

    kind: str
    get: Callable[[], ExpressionNode]
    set: Callable[[ExpressionNode], None]


def _list_slot(kind: str, container: list, index: int) -> Slot:
    return Slot(kind=kind,
                get=lambda: container[index],
                set=lambda node: container.__setitem__(index, node))


def _attr_slot(kind: str, owner: object, attribute: str) -> Slot:
    return Slot(kind=kind,
                get=lambda: getattr(owner, attribute),
                set=lambda node: setattr(owner, attribute, node))


def collect_slots(individual: Individual, include_bases: bool = True) -> List[Slot]:
    """Every grammar-legal replacement point in an individual.

    Top-level basis functions are ``REPVC`` slots; positions inside trees are
    collected by walking every node and recording where product terms,
    operator terms and weighted sums live.
    """
    slots: List[Slot] = []
    if include_bases:
        for index in range(len(individual.bases)):
            slots.append(_list_slot("REPVC", individual.bases, index))

    for basis in individual.bases:
        for node in iter_nodes(basis):
            if isinstance(node, ProductTerm):
                for op_index in range(len(node.ops)):
                    slots.append(_list_slot("REPOP", node.ops, op_index))
            elif isinstance(node, WeightedSum):
                for term in node.terms:
                    slots.append(_attr_slot("REPVC", term, "term"))
            elif isinstance(node, UnaryOpTerm):
                slots.append(_attr_slot("REPADD", node, "argument"))
            elif isinstance(node, BinaryOpTerm):
                if isinstance(node.left, WeightedSum):
                    slots.append(_attr_slot("REPADD", node, "left"))
                if isinstance(node.right, WeightedSum):
                    slots.append(_attr_slot("REPADD", node, "right"))
            elif isinstance(node, ConditionalOpTerm):
                slots.append(_attr_slot("REPADD", node, "test"))
                slots.append(_attr_slot("REPADD", node, "if_true"))
                slots.append(_attr_slot("REPADD", node, "if_false"))
                if isinstance(node.threshold, WeightedSum):
                    slots.append(_attr_slot("REPADD", node, "threshold"))
    return slots


class VariationOperators:
    """Applies CAFFEINE's variation operators with the configured probabilities."""

    def __init__(self, generator: ExpressionGenerator,
                 settings: CaffeineSettings,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.generator = generator
        self.settings = settings
        self.rng = rng if rng is not None else generator.rng
        self._operators: List[Tuple[str, float]] = [
            ("parameter_mutation", settings.parameter_mutation_bias),
            ("vc_mutation", 1.0),
            ("vc_crossover", 1.0),
            ("subtree_mutation", 1.0),
            ("subtree_crossover", 1.0),
            ("basis_crossover", 1.0),
            ("basis_delete", 1.0),
            ("basis_add", 1.0),
            ("basis_copy", 1.0),
        ]

    # ------------------------------------------------------------------
    # top-level entry point
    # ------------------------------------------------------------------
    def vary(self, parent_a: Individual, parent_b: Individual) -> Individual:
        """Produce one child from two parents using a randomly chosen operator.

        If the chosen operator cannot apply (e.g. deleting from a one-basis
        individual) it falls back to parameter mutation, which always applies.
        """
        names = [name for name, _ in self._operators]
        weights = np.array([weight for _, weight in self._operators], dtype=float)
        probabilities = weights / weights.sum()
        operator_name = str(self.rng.choice(names, p=probabilities))
        child = self._dispatch(operator_name, parent_a, parent_b)
        if child is None:
            child = self.parameter_mutation(parent_a)
        child = self._enforce_limits(child)
        # Offspring leave variation canonical: crossover and mutation can
        # reorder or recombine commutative product factors, and sorting them
        # back into canonical order (on the freshly cloned, not-yet-evaluated
        # trees) is what lets order-variants share cached columns and
        # compiled kernels.  Parents are never touched.
        for basis in child.bases:
            canonicalize_factors(basis)
        return child

    def operator_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self._operators)

    def _dispatch(self, name: str, parent_a: Individual,
                  parent_b: Individual) -> Optional[Individual]:
        if name == "parameter_mutation":
            return self.parameter_mutation(parent_a)
        if name == "vc_mutation":
            return self.vc_mutation(parent_a)
        if name == "vc_crossover":
            return self.vc_crossover(parent_a, parent_b)
        if name == "subtree_mutation":
            return self.subtree_mutation(parent_a)
        if name == "subtree_crossover":
            return self.subtree_crossover(parent_a, parent_b)
        if name == "basis_crossover":
            return self.basis_crossover(parent_a, parent_b)
        if name == "basis_delete":
            return self.basis_delete(parent_a)
        if name == "basis_add":
            return self.basis_add(parent_a)
        if name == "basis_copy":
            return self.basis_copy(parent_a, parent_b)
        raise KeyError(f"unknown operator {name!r}")

    # ------------------------------------------------------------------
    # parameter level
    # ------------------------------------------------------------------
    def parameter_mutation(self, parent: Individual) -> Individual:
        """Cauchy-mutate one (or a few) random weights of a cloned parent."""
        child = parent.clone()
        weights = []
        for basis in child.bases:
            weights.extend(iter_weights(basis))
        if not weights:
            return self.basis_add(parent) or child
        n_mutations = 1 + int(self.rng.integers(0, 2))
        for _ in range(n_mutations):
            weight = weights[int(self.rng.integers(len(weights)))]
            mutated = weight.mutated(self.rng, self.settings.weight_mutation_scale)
            weight.stored = mutated.stored
        return child

    def vc_mutation(self, parent: Individual) -> Optional[Individual]:
        """Add or subtract 1 to a random exponent of a random variable combo."""
        child = parent.clone()
        owners = []
        for basis in child.bases:
            owners.extend(iter_variable_combos(basis))
        if not owners:
            return None
        owner, vc = owners[int(self.rng.integers(len(owners)))]
        owner.vc = vc.mutated(self.rng, self.settings.max_vc_exponent,
                              self.settings.allow_negative_exponents)
        return child

    def vc_crossover(self, parent_a: Individual,
                     parent_b: Individual) -> Optional[Individual]:
        """One-point crossover between a VC of each parent (child from parent A)."""
        child = parent_a.clone()
        owners_a = []
        for basis in child.bases:
            owners_a.extend(iter_variable_combos(basis))
        owners_b = []
        for basis in parent_b.bases:
            owners_b.extend(iter_variable_combos(basis))
        if not owners_a or not owners_b:
            return None
        owner_a, vc_a = owners_a[int(self.rng.integers(len(owners_a)))]
        _, vc_b = owners_b[int(self.rng.integers(len(owners_b)))]
        new_vc, _ = vc_a.crossover(vc_b, self.rng)
        owner_a.vc = new_vc
        return child

    # ------------------------------------------------------------------
    # tree level
    # ------------------------------------------------------------------
    def subtree_mutation(self, parent: Individual) -> Optional[Individual]:
        """Replace a random subtree with a freshly generated one of the same symbol."""
        child = parent.clone()
        slots = collect_slots(child)
        if not slots:
            return None
        slot = slots[int(self.rng.integers(len(slots)))]
        depth_budget = max(2, self.settings.max_tree_depth - 2)
        if slot.kind == "REPVC":
            slot.set(self.generator.random_product_term(depth_budget))
        elif slot.kind == "REPOP":
            slot.set(self.generator.random_op_term(depth_budget))
        else:  # REPADD
            slot.set(self.generator.random_weighted_sum(depth_budget))
        return child

    def subtree_crossover(self, parent_a: Individual,
                          parent_b: Individual) -> Optional[Individual]:
        """Swap subtrees between parents; only same-symbol roots are exchanged."""
        child = parent_a.clone()
        donor = parent_b.clone()
        child_slots = collect_slots(child)
        donor_slots = collect_slots(donor)
        if not child_slots or not donor_slots:
            return None
        order = self.rng.permutation(len(child_slots))
        for slot_index in order:
            slot = child_slots[int(slot_index)]
            compatible = [d for d in donor_slots if d.kind == slot.kind]
            if compatible:
                donor_slot = compatible[int(self.rng.integers(len(compatible)))]
                slot.set(donor_slot.get().clone())
                return child
        return None

    # ------------------------------------------------------------------
    # basis-function level
    # ------------------------------------------------------------------
    def basis_crossover(self, parent_a: Individual,
                        parent_b: Individual) -> Optional[Individual]:
        """New individual from >0 randomly chosen basis functions of each parent."""
        if not parent_a.bases or not parent_b.bases:
            return None
        chosen: List[ProductTerm] = []
        for parent in (parent_a, parent_b):
            n_take = 1 + int(self.rng.integers(len(parent.bases)))
            indices = self.rng.choice(len(parent.bases), size=n_take, replace=False)
            chosen.extend(parent.bases[i].clone() for i in np.sort(indices))
        max_bases = self.settings.max_basis_functions
        if len(chosen) > max_bases:
            keep = self.rng.choice(len(chosen), size=max_bases, replace=False)
            chosen = [chosen[i] for i in np.sort(keep)]
        return Individual(bases=chosen)

    def basis_delete(self, parent: Individual) -> Optional[Individual]:
        """Delete one random basis function.

        Deleting the last basis function is allowed: the resulting individual
        is the constant (intercept-only) model, which the paper reports as
        the zero-complexity end of every trade-off curve.
        """
        if parent.n_bases < 1:
            return None
        child = parent.clone()
        index = int(self.rng.integers(len(child.bases)))
        del child.bases[index]
        return child

    def basis_add(self, parent: Individual) -> Optional[Individual]:
        """Add a randomly generated tree as a new basis function."""
        if parent.n_bases >= self.settings.max_basis_functions:
            return None
        child = parent.clone()
        child.bases.append(self.generator.random_product_term())
        return child

    def basis_copy(self, parent_a: Individual,
                   parent_b: Individual) -> Optional[Individual]:
        """Copy a subtree of parent B to become a new basis function of parent A."""
        if parent_a.n_bases >= self.settings.max_basis_functions:
            return None
        donor_slots = [slot for slot in collect_slots(parent_b)
                       if slot.kind == "REPVC"]
        if not donor_slots:
            return None
        child = parent_a.clone()
        slot = donor_slots[int(self.rng.integers(len(donor_slots)))]
        child.bases.append(slot.get().clone())
        return child

    # ------------------------------------------------------------------
    def _enforce_limits(self, child: Individual) -> Individual:
        """Clamp basis count and tree depth to the configured limits."""
        max_bases = self.settings.max_basis_functions
        if len(child.bases) > max_bases:
            keep = self.rng.choice(len(child.bases), size=max_bases, replace=False)
            child.bases = [child.bases[i] for i in np.sort(keep)]
        max_depth = self.settings.max_tree_depth
        for index, basis in enumerate(child.bases):
            if basis.depth > max_depth:
                child.bases[index] = self.generator.random_product_term()
        return child
