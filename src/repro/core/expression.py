"""Canonical-form expression trees.

These node classes *are* the CAFFEINE grammar in typed form -- any tree built
from them satisfies the canonical form by construction, which is how the
reproduction guarantees that every explored expression is interpretable:

* a **basis function** is a :class:`ProductTerm` (grammar symbol ``REPVC``):
  a product of an optional variable combo and zero or more nonlinear operator
  applications;
* a **nonlinear operator application** (grammar symbol ``REPOP``) is a
  :class:`UnaryOpTerm`, :class:`BinaryOpTerm` or :class:`ConditionalOpTerm`;
  its expression arguments are weighted sums;
* a **weighted sum** (grammar symbols ``W + REPADD``) is a
  :class:`WeightedSum`: an offset weight plus weighted product terms -- i.e.
  the same canonical structure again, recursively;
* **terminals** are :class:`~repro.core.weights.Weight` parameters and
  :class:`~repro.core.variable_combo.VariableCombo` variable products.

The overall model is a linear combination of basis functions whose top-level
weights are learned by least squares (see :mod:`repro.core.individual`), so
those outer weights are *not* part of the trees.

Architecture note -- structure sharing.  The node classes are plain mutable
dataclasses, but the engine treats every tree that has entered a population
as *effectively immutable*: variation operators never edit a live tree in
place.  Under the default ``genome_backend="shared"`` setting
(:mod:`repro.core.settings`) a child individual is built by *path copying*:
only the spine from an edited slot up to its basis root is rebuilt
(``O(depth)`` fresh nodes) and every untouched subtree is shared by
reference with the parent (see :mod:`repro.core.operators`).  Because
shared subtrees are final, derived data can be memoized directly on the
nodes -- :func:`cached_structural_key`, :func:`cached_depth` and the
compiled backend's cached skeletons flow from parent to child for free,
which keeps the evaluation caches warm across generations.  The
``genome_backend="deepcopy"`` setting keeps the original reference path
(clone the whole parent, edit the clone in place); the two backends are
fixed-seed bit-identical, and the reference path exists for exactly that
equivalence test.  The freshness contract that makes on-node memoization
safe: in-place edits only ever happen on freshly built, memo-free nodes
*before* :func:`repro.core.compile.canonicalize_factors` finalizes them,
never on a node that a population tree already references.

All nodes provide ``evaluate``, ``clone`` (a full deep copy -- callers that
want sharing simply reuse the node reference), ``n_nodes``, ``depth`` and
``render``.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.functions import Operator
from repro.core.variable_combo import VariableCombo
from repro.core.weights import Weight

__all__ = [
    "ExpressionNode",
    "OpTerm",
    "UnaryOpTerm",
    "BinaryOpTerm",
    "ConditionalOpTerm",
    "WeightedTerm",
    "WeightedSum",
    "ProductTerm",
    "iter_nodes",
    "iter_weights",
    "iter_variable_combos",
    "structural_key",
    "cached_structural_key",
    "cached_depth",
]


class ExpressionNode:
    """Common interface of all canonical-form tree nodes."""

    def evaluate(self, X: np.ndarray) -> np.ndarray:
        """Evaluate the node on a sample matrix ``(n_samples, n_variables)``."""
        raise NotImplementedError

    def clone(self) -> "ExpressionNode":
        """Deep copy of the subtree."""
        raise NotImplementedError

    def children(self) -> Tuple["ExpressionNode", ...]:
        """Direct child nodes (excluding terminals handled separately)."""
        raise NotImplementedError

    @property
    def n_nodes(self) -> int:
        """Number of tree nodes in this subtree (terminals included)."""
        raise NotImplementedError

    @property
    def depth(self) -> int:
        """Depth of the subtree (a terminal-only node has depth 1)."""
        raise NotImplementedError

    def render(self, variable_names: Sequence[str]) -> str:
        """Readable rendering using the given design-variable names."""
        raise NotImplementedError

    def variable_combos(self) -> List[VariableCombo]:
        """All variable combos in the subtree (used by the complexity measure)."""
        return [vc for _, vc in iter_variable_combos(self)]


# ----------------------------------------------------------------------
# operator applications (grammar symbol REPOP)
# ----------------------------------------------------------------------
class OpTerm(ExpressionNode):
    """Base class for nonlinear operator applications."""

    op: Operator


@dataclasses.dataclass
class UnaryOpTerm(OpTerm):
    """``op(W + REPADD)``: a single-input operator on a weighted sum."""

    op: Operator
    argument: "WeightedSum"

    def __post_init__(self) -> None:
        if self.op.arity != 1:
            raise ValueError(f"operator {self.op.name!r} is not unary")

    def evaluate(self, X: np.ndarray) -> np.ndarray:
        return self.op(self.argument.evaluate(X))

    def clone(self) -> "UnaryOpTerm":
        return UnaryOpTerm(op=self.op, argument=self.argument.clone())

    def children(self) -> Tuple[ExpressionNode, ...]:
        return (self.argument,)

    @property
    def n_nodes(self) -> int:
        return 1 + self.argument.n_nodes

    @property
    def depth(self) -> int:
        return 1 + self.argument.depth

    def render(self, variable_names: Sequence[str]) -> str:
        return self.op.format(self.argument.render(variable_names))


@dataclasses.dataclass
class BinaryOpTerm(OpTerm):
    """``op(2ARGS)``: a two-input operator.

    Following the grammar's ``2ARGS`` rule, each argument is either a full
    weighted sum (``W + REPADD``) or a bare weight (``MAYBEW`` choosing
    ``W``); at least one argument must be a weighted sum, so that e.g. in
    ``pow(a, b)`` either the base or the exponent -- but not both -- can be a
    constant.
    """

    op: Operator
    left: Union[Weight, "WeightedSum"]
    right: Union[Weight, "WeightedSum"]

    def __post_init__(self) -> None:
        if self.op.arity != 2:
            raise ValueError(f"operator {self.op.name!r} is not binary")
        if isinstance(self.left, Weight) and isinstance(self.right, Weight):
            raise ValueError(
                "at least one argument of a binary operator must be an expression")

    def _evaluate_argument(self, arg: Union[Weight, "WeightedSum"],
                           X: np.ndarray) -> np.ndarray:
        if isinstance(arg, Weight):
            return np.full(X.shape[0], arg.value)
        return arg.evaluate(X)

    def evaluate(self, X: np.ndarray) -> np.ndarray:
        return self.op(self._evaluate_argument(self.left, X),
                       self._evaluate_argument(self.right, X))

    def clone(self) -> "BinaryOpTerm":
        left = self.left.copy() if isinstance(self.left, Weight) else self.left.clone()
        right = (self.right.copy() if isinstance(self.right, Weight)
                 else self.right.clone())
        return BinaryOpTerm(op=self.op, left=left, right=right)

    def children(self) -> Tuple[ExpressionNode, ...]:
        return tuple(arg for arg in (self.left, self.right)
                     if isinstance(arg, WeightedSum))

    @property
    def n_nodes(self) -> int:
        total = 1
        for arg in (self.left, self.right):
            total += 1 if isinstance(arg, Weight) else arg.n_nodes
        return total

    @property
    def depth(self) -> int:
        depths = [1 if isinstance(arg, Weight) else arg.depth
                  for arg in (self.left, self.right)]
        return 1 + max(depths)

    def render(self, variable_names: Sequence[str]) -> str:
        def render_arg(arg: Union[Weight, WeightedSum]) -> str:
            if isinstance(arg, Weight):
                return arg.render()
            return arg.render(variable_names)

        return self.op.format(render_arg(self.left), render_arg(self.right))


@dataclasses.dataclass
class ConditionalOpTerm(OpTerm):
    """``lte(test, threshold, if_true, if_false)`` conditional expression.

    Evaluates ``if_true`` where ``test <= threshold`` and ``if_false``
    elsewhere; the threshold may be a constant weight (covering the paper's
    ``lte(testExpr, 0, ...)`` variant) or a full expression.  Disabled by
    default in the generator settings because conditionals are the least
    interpretable construct the paper allows.
    """

    op: Operator  # a pseudo-operator record carrying the name "lte"
    test: "WeightedSum"
    threshold: Union[Weight, "WeightedSum"]
    if_true: "WeightedSum"
    if_false: "WeightedSum"

    def evaluate(self, X: np.ndarray) -> np.ndarray:
        test_values = self.test.evaluate(X)
        if isinstance(self.threshold, Weight):
            threshold_values = np.full(X.shape[0], self.threshold.value)
        else:
            threshold_values = self.threshold.evaluate(X)
        return np.where(test_values <= threshold_values,
                        self.if_true.evaluate(X), self.if_false.evaluate(X))

    def clone(self) -> "ConditionalOpTerm":
        threshold = (self.threshold.copy() if isinstance(self.threshold, Weight)
                     else self.threshold.clone())
        return ConditionalOpTerm(op=self.op, test=self.test.clone(),
                                 threshold=threshold,
                                 if_true=self.if_true.clone(),
                                 if_false=self.if_false.clone())

    def children(self) -> Tuple[ExpressionNode, ...]:
        parts: List[ExpressionNode] = [self.test]
        if isinstance(self.threshold, WeightedSum):
            parts.append(self.threshold)
        parts.extend([self.if_true, self.if_false])
        return tuple(parts)

    @property
    def n_nodes(self) -> int:
        total = 1 + self.test.n_nodes + self.if_true.n_nodes + self.if_false.n_nodes
        total += 1 if isinstance(self.threshold, Weight) else self.threshold.n_nodes
        return total

    @property
    def depth(self) -> int:
        child_depths = [self.test.depth, self.if_true.depth, self.if_false.depth]
        child_depths.append(1 if isinstance(self.threshold, Weight)
                            else self.threshold.depth)
        return 1 + max(child_depths)

    def render(self, variable_names: Sequence[str]) -> str:
        threshold = (self.threshold.render() if isinstance(self.threshold, Weight)
                     else self.threshold.render(variable_names))
        return (f"lte({self.test.render(variable_names)}, {threshold}, "
                f"{self.if_true.render(variable_names)}, "
                f"{self.if_false.render(variable_names)})")


# ----------------------------------------------------------------------
# weighted sums (grammar symbols W + REPADD)
# ----------------------------------------------------------------------
@dataclasses.dataclass
class WeightedTerm:
    """One ``W * REPVC`` term inside a weighted sum."""

    weight: Weight
    term: "ProductTerm"

    def clone(self) -> "WeightedTerm":
        return WeightedTerm(weight=self.weight.copy(), term=self.term.clone())


@dataclasses.dataclass
class WeightedSum(ExpressionNode):
    """``W + sum_k W_k * REPVC_k``: the argument form of every operator."""

    offset: Weight
    terms: List[WeightedTerm] = dataclasses.field(default_factory=list)

    def evaluate(self, X: np.ndarray) -> np.ndarray:
        result = np.full(X.shape[0], self.offset.value)
        for weighted in self.terms:
            result = result + weighted.weight.value * weighted.term.evaluate(X)
        return result

    def clone(self) -> "WeightedSum":
        return WeightedSum(offset=self.offset.copy(),
                           terms=[t.clone() for t in self.terms])

    def children(self) -> Tuple[ExpressionNode, ...]:
        return tuple(t.term for t in self.terms)

    @property
    def n_nodes(self) -> int:
        return 1 + 1 + sum(1 + t.term.n_nodes for t in self.terms)

    @property
    def depth(self) -> int:
        if not self.terms:
            return 1
        return 1 + max(t.term.depth for t in self.terms)

    def render(self, variable_names: Sequence[str]) -> str:
        parts = [self.offset.render()]
        for weighted in self.terms:
            parts.append(f"{weighted.weight.render()} * "
                         f"{weighted.term.render(variable_names)}")
        return " + ".join(parts)


# ----------------------------------------------------------------------
# product terms (grammar symbol REPVC) -- the basis functions
# ----------------------------------------------------------------------
@dataclasses.dataclass
class ProductTerm(ExpressionNode):
    """A basis function: product of a variable combo and operator terms.

    Either component may be absent, but not both: ``REPVC`` always derives to
    at least one ``VC`` or one ``REPOP``.
    """

    vc: Optional[VariableCombo] = None
    ops: List[OpTerm] = dataclasses.field(default_factory=list)

    def __post_init__(self) -> None:
        if self.vc is None and not self.ops:
            raise ValueError(
                "a product term needs a variable combo or at least one operator term")

    def evaluate(self, X: np.ndarray) -> np.ndarray:
        result = np.ones(np.asarray(X).shape[0])
        if self.vc is not None:
            result = result * self.vc.evaluate(X)
        for op_term in self.ops:
            result = result * op_term.evaluate(X)
        return result

    def clone(self) -> "ProductTerm":
        return ProductTerm(vc=self.vc.copy() if self.vc is not None else None,
                           ops=[op.clone() for op in self.ops])

    def children(self) -> Tuple[ExpressionNode, ...]:
        return tuple(self.ops)

    @property
    def n_nodes(self) -> int:
        total = 1 + (1 if self.vc is not None else 0)
        total += sum(op.n_nodes for op in self.ops)
        return total

    @property
    def depth(self) -> int:
        if not self.ops:
            return 1
        return 1 + max(op.depth for op in self.ops)

    def render(self, variable_names: Sequence[str]) -> str:
        parts: List[str] = []
        if self.vc is not None and not self.vc.is_constant:
            parts.append(self.vc.render(variable_names))
        for op_term in self.ops:
            parts.append(op_term.render(variable_names))
        if not parts:
            return "1"
        return " * ".join(parts)


# ----------------------------------------------------------------------
# structural hashing
# ----------------------------------------------------------------------
def structural_key(node: Union[ExpressionNode, Weight, VariableCombo,
                               WeightedTerm]) -> Tuple:
    """Canonical hashable key of a subtree's exact structure and parameters.

    Two subtrees have equal keys if and only if they evaluate identically on
    every input *by the same sequence of floating-point operations*: operator
    names, argument order, stored weight values and variable-combo exponents
    are all part of the key, and no algebraic normalization (e.g. reordering
    commutative products) is applied.  That strictness is what lets the
    evaluation cache (:mod:`repro.core.evaluation`) substitute a cached
    column for a fresh evaluation bit-for-bit.

    Crossover and cloning copy subtrees verbatim, so identical keys are
    common across an evolving population even without normalization.

    Operators are identified by name; keys are only meaningful within one
    function set (which holds for any single CAFFEINE run).
    """
    if isinstance(node, Weight):
        return ("w", node.stored, node.exponent_bound)
    if isinstance(node, VariableCombo):
        return ("vc", node.exponents)
    if isinstance(node, WeightedTerm):
        return ("wt", structural_key(node.weight), structural_key(node.term))
    if isinstance(node, ProductTerm):
        vc_key = structural_key(node.vc) if node.vc is not None else None
        return ("pt", vc_key, tuple(structural_key(op) for op in node.ops))
    if isinstance(node, WeightedSum):
        return ("ws", structural_key(node.offset),
                tuple(structural_key(t) for t in node.terms))
    if isinstance(node, UnaryOpTerm):
        return ("op1", node.op.name, structural_key(node.argument))
    if isinstance(node, BinaryOpTerm):
        return ("op2", node.op.name, structural_key(node.left),
                structural_key(node.right))
    if isinstance(node, ConditionalOpTerm):
        return ("lte", structural_key(node.test), structural_key(node.threshold),
                structural_key(node.if_true), structural_key(node.if_false))
    raise TypeError(f"cannot compute a structural key for {type(node).__name__}")


def cached_structural_key(node: Union[ExpressionNode, Weight, VariableCombo,
                                      WeightedTerm]) -> Tuple:
    """:func:`structural_key` memoized on the nodes themselves.

    Safe only under the structure-sharing freshness contract (module
    docstring): a node's memo is written the first time its key is asked
    for, so callers must not query a node that will still be edited in
    place.  The hot paths that use this -- ``canonicalize_factors``'s sort
    keys, the evaluation backends' basis keys -- all run at or after
    canonicalization, when the subtree is final.  :func:`structural_key`
    itself stays memo-free for callers that inspect trees mid-edit.
    """
    key = getattr(node, "_structural_key", None)
    if key is not None:
        return key
    if isinstance(node, Weight):
        key = ("w", node.stored, node.exponent_bound)
    elif isinstance(node, VariableCombo):
        key = ("vc", node.exponents)
    elif isinstance(node, WeightedTerm):
        key = ("wt", cached_structural_key(node.weight),
               cached_structural_key(node.term))
    elif isinstance(node, ProductTerm):
        vc_key = (cached_structural_key(node.vc)
                  if node.vc is not None else None)
        key = ("pt", vc_key, tuple(cached_structural_key(op)
                                   for op in node.ops))
    elif isinstance(node, WeightedSum):
        key = ("ws", cached_structural_key(node.offset),
               tuple(cached_structural_key(t) for t in node.terms))
    elif isinstance(node, UnaryOpTerm):
        key = ("op1", node.op.name, cached_structural_key(node.argument))
    elif isinstance(node, BinaryOpTerm):
        key = ("op2", node.op.name, cached_structural_key(node.left),
               cached_structural_key(node.right))
    elif isinstance(node, ConditionalOpTerm):
        key = ("lte", cached_structural_key(node.test),
               cached_structural_key(node.threshold),
               cached_structural_key(node.if_true),
               cached_structural_key(node.if_false))
    else:
        raise TypeError(
            f"cannot compute a structural key for {type(node).__name__}")
    node._structural_key = key
    return key


def cached_depth(node: ExpressionNode) -> int:
    """``node.depth`` memoized on the nodes (same freshness contract as
    :func:`cached_structural_key`); shared subtrees answer in O(1)."""
    depth = getattr(node, "_depth", None)
    if depth is not None:
        return depth
    if isinstance(node, ProductTerm):
        depth = 1 if not node.ops else 1 + max(cached_depth(op)
                                               for op in node.ops)
    elif isinstance(node, WeightedSum):
        depth = 1 if not node.terms else 1 + max(cached_depth(t.term)
                                                 for t in node.terms)
    elif isinstance(node, UnaryOpTerm):
        depth = 1 + cached_depth(node.argument)
    elif isinstance(node, BinaryOpTerm):
        depth = 1 + max(1 if isinstance(arg, Weight) else cached_depth(arg)
                        for arg in (node.left, node.right))
    elif isinstance(node, ConditionalOpTerm):
        parts = [cached_depth(node.test), cached_depth(node.if_true),
                 cached_depth(node.if_false),
                 1 if isinstance(node.threshold, Weight)
                 else cached_depth(node.threshold)]
        depth = 1 + max(parts)
    else:
        depth = node.depth
    node._depth = depth
    return depth


# ----------------------------------------------------------------------
# traversal helpers
# ----------------------------------------------------------------------
def iter_nodes(root: ExpressionNode) -> Iterator[ExpressionNode]:
    """Pre-order iteration over all (non-terminal) nodes of a subtree."""
    stack: List[ExpressionNode] = [root]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children()))


def iter_weights(root: ExpressionNode) -> Iterator[Weight]:
    """All :class:`Weight` terminals in a subtree (mutable references)."""
    for node in iter_nodes(root):
        if isinstance(node, WeightedSum):
            yield node.offset
            for weighted in node.terms:
                yield weighted.weight
        elif isinstance(node, BinaryOpTerm):
            if isinstance(node.left, Weight):
                yield node.left
            if isinstance(node.right, Weight):
                yield node.right
        elif isinstance(node, ConditionalOpTerm):
            if isinstance(node.threshold, Weight):
                yield node.threshold


def iter_variable_combos(root: ExpressionNode
                         ) -> Iterator[Tuple[ProductTerm, VariableCombo]]:
    """All variable combos with their owning product term."""
    for node in iter_nodes(root):
        if isinstance(node, ProductTerm) and node.vc is not None:
            yield node, node.vc
