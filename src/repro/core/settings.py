"""Run settings for CAFFEINE.

All tunables of the algorithm live in :class:`CaffeineSettings`, mirroring
the paper's Section 6.1 run settings: maximum number of basis functions (15),
population size (200), number of generations (5000), maximum tree depth (8),
weight range ``[-1e10, -1e-10] U {0} U [1e-10, 1e10]`` (i.e. exponent bound
``B = 10``), equal operator probabilities except parameter mutation being 5x
more likely, and complexity-measure constants ``wb = 10`` and ``wvc = 0.25``.

Two constructors are provided: :meth:`CaffeineSettings.paper_settings` with
the full budgets of the paper (hours of runtime) and the default constructor
with reduced budgets suitable for laptops and for the benchmark harness.

Beyond the paper's tunables, the ``evaluation_*`` / ``basis_cache_size``
fields configure the population-evaluation subsystem
(:mod:`repro.core.evaluation`): how many evaluated basis columns the LRU
cache retains and whether uncached columns are computed serially or on a
thread/process pool.  These knobs trade memory and cores for wall-clock time
only -- every backend and cache size produces bit-for-bit identical models.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Optional

from repro.core.functions import FunctionSet, default_function_set
from repro.core.registry import backend_names

__all__ = ["CaffeineSettings"]

#: Fields that can never change a run's evolved models -- backends, cache
#: budgets and worker counts are all bit-for-bit identical by contract
#: (enforced by the test suite and the CI equivalence gates), and fault
#: injection only decides *whether* a run completes, not what it computes.
#: :meth:`CaffeineSettings.fingerprint` excludes them, so a checkpoint
#: taken under one backend/cache configuration resumes under another.
_RESULT_NEUTRAL_FIELDS = frozenset({
    "evaluation_backend", "evaluation_workers", "column_backend",
    "basis_cache_size", "fit_backend", "gram_pool_size", "pareto_backend",
    "residual_backend", "genome_backend", "kernel_cache_size",
    "adaptive_cache_budgets", "fault_injection",
})


@dataclasses.dataclass
class CaffeineSettings:
    """All tunables of a CAFFEINE run."""

    # -- evolutionary budget -------------------------------------------------
    population_size: int = 100
    n_generations: int = 40
    random_seed: Optional[int] = 0

    # -- model structure -----------------------------------------------------
    max_basis_functions: int = 15
    max_tree_depth: int = 8
    #: largest |exponent| a variable may take inside a variable combo
    max_vc_exponent: int = 4
    #: allow negative exponents (rational variable combos); turning this off
    #: restricts combos to plain monomials
    allow_negative_exponents: bool = True
    #: expected number of active variables in a freshly generated combo
    expected_vc_variables: float = 1.5
    #: enable the ``lte`` conditional construct (off by default: least
    #: interpretable allowed construct)
    enable_conditionals: bool = False

    # -- weights ---------------------------------------------------------------
    #: exponent bound B: interpreted weights live in [1e-B, 1e+B] magnitudes
    weight_exponent_bound: float = 10.0
    #: scale of the zero-mean Cauchy mutation applied to stored weight values
    weight_mutation_scale: float = 1.0

    # -- operator probabilities ------------------------------------------------
    #: relative probability of parameter (weight) mutation; the paper makes it
    #: 5x more likely than the other operators, which all have weight 1
    parameter_mutation_bias: float = 5.0

    # -- generation shape -------------------------------------------------------
    #: probability that a freshly generated product term contains a variable combo
    p_variable_combo: float = 0.85
    #: probability of adding (another) nonlinear operator factor to a product term
    p_operator_factor: float = 0.25
    #: probability of adding (another) weighted term inside an operator argument
    p_extra_sum_term: float = 0.35
    #: initial number of basis functions is drawn uniformly from [1, this]
    max_initial_basis_functions: int = 4

    # -- objectives --------------------------------------------------------------
    #: complexity constant per basis function (paper: wb = 10)
    basis_function_cost: float = 10.0
    #: complexity cost per unit of |exponent| in variable combos (paper: wvc = 0.25)
    vc_exponent_cost: float = 0.25

    # -- function set -------------------------------------------------------------
    function_set: FunctionSet = dataclasses.field(default_factory=default_function_set)

    # -- post-processing -----------------------------------------------------------
    #: run PRESS + forward regression simplification after generation
    simplify_after_generation: bool = True
    #: minimum relative PRESS improvement a basis function must bring to survive
    sag_min_relative_improvement: float = 1e-4

    # -- evaluation subsystem --------------------------------------------------------
    #: backend of :class:`~repro.core.evaluation.PopulationEvaluator` used to
    #: compute uncached basis columns: ``"serial"`` (default), ``"thread"``
    #: (a :class:`~concurrent.futures.ThreadPoolExecutor`; NumPy releases the
    #: GIL in the heavy kernels) or ``"process"`` (the default function set
    #: is picklable, so trees genuinely cross the process boundary; custom
    #: operators built from lambdas fall back to threads with a warning).
    #: All backends produce bit-for-bit identical results; only wall-clock
    #: time differs.
    evaluation_backend: str = "serial"
    #: worker count for the parallel evaluation backends (0 = os.cpu_count())
    evaluation_workers: int = 0
    #: how basis columns are computed on a cache miss: ``"compiled"``
    #: (default) lowers each tree once to a fused postorder NumPy tape
    #: (:class:`~repro.core.compile.TreeCompiler`); ``"interp"`` walks the
    #: tree node by node.  Both are bit-for-bit identical (enforced by
    #: property tests); compiled is faster on the fresh-offspring stream.
    column_backend: str = "compiled"
    #: maximum number of entries retained by *each* of the two LRU evaluation
    #: caches: the basis-column cache (one entry = one evaluated basis
    #: function on one dataset) and the individual-level fit cache (one entry
    #: = one fitted basis sequence).  0 disables both caches entirely -- i.e.
    #: it turns off fit-result reuse as well, not just column memory.  Even
    #: then, one batch evaluation still computes its duplicate columns only
    #: once (batch-local sharing) and still uses the parallel backend.
    #: Leaving the class default in place makes the budget *size-adaptive*:
    #: it grows with ``population_size`` via
    #: :meth:`resolved_basis_cache_size`, so ``population_size >= 1000``
    #: runs do not churn a budget tuned for population 100.  Any other
    #: value (including 0) is honored exactly; to pin a hard cap that
    #: happens to equal the default, set ``adaptive_cache_budgets=False``.
    basis_cache_size: int = 20000
    #: how the linear weights are fitted: ``"gram"`` (default) batches the
    #: generation's normal-equation scalars through the
    #: :class:`~repro.core.evaluation.GramPool` so each fit is a small
    #: gather-and-solve; ``"direct"`` runs a full
    #: :func:`~repro.regression.least_squares.fit_linear` per individual.
    #: Both produce bit-for-bit identical fits, errors and trade-offs.
    fit_backend: str = "gram"
    #: maximum number of pairwise column dot products retained by the gram
    #: pool (each entry is one float; column-level stats are bounded by the
    #: same number).  0 disables the pool, which implies direct fits.  Like
    #: ``basis_cache_size``, the class default is a size-adaptive floor
    #: (see :meth:`resolved_gram_pool_size`); explicit values are honored.
    gram_pool_size: int = 200000
    #: Pareto/NSGA-II kernels: ``"numpy"`` (default) uses the vectorized
    #: broadcasting implementations in :mod:`repro.core.pareto`; ``"python"``
    #: the pure-Python reference.  Identical results (fronts are
    #: canonicalized to ascending index order in both), different speed.
    pareto_backend: str = "numpy"
    #: how the prediction/residual step after each linear fit is computed:
    #: ``"batched"`` (default) runs one stacked left-to-right accumulation
    #: plus one row-stacked pairwise residual reduction per basis width and
    #: generation (:func:`repro.regression.least_squares.predict_linear_batch`
    #: + :func:`repro.data.metrics.relative_rmse_rows`); ``"scalar"`` scores
    #: each individual on its own.  Both are bit-for-bit identical (the
    #: canonical recipes are batch-shape independent by construction,
    #: enforced by property tests), so this knob only trades Python/NumPy
    #: call overhead for memory.
    residual_backend: str = "batched"
    #: how variation operators build children from parents: ``"shared"``
    #: (default) path-copies -- a child rebuilds only the spine from each
    #: edited slot to its basis root and shares every untouched subtree
    #: with its parents, so cached structural keys/skeletons/columns flow
    #: through for free; ``"deepcopy"`` is the original reference path
    #: (clone the whole parent, edit the clone in place), kept for
    #: equivalence testing.  Both are fixed-seed bit-identical (gated by
    #: the ``genome_shared_vs_deepcopy`` equivalence key in CI).  Unlike
    #: the ``*_backend`` knobs above this is a closed two-way switch, not
    #: a registry: the set of genome representations is a property of the
    #: operator layer, not a pluggable computation strategy.
    genome_backend: str = "shared"
    #: maximum number of compiled tapes the ``"compiled"`` column backend
    #: retains, keyed by weight-free tree skeleton.  The class default is a
    #: size-adaptive floor (:meth:`resolved_kernel_cache_size`) so large
    #: populations do not thrash the kernel LRU; explicit values are
    #: honored, and 0 compiles fresh on every miss.
    kernel_cache_size: int = 4096
    #: when True (default), a cache budget left at its class default
    #: (``basis_cache_size``/``gram_pool_size``/``kernel_cache_size``) is
    #: treated as an adaptive *floor* that grows with ``population_size``
    #: (see the ``resolved_*`` accessors).  A dataclass cannot tell an
    #: untouched default from the same number typed deliberately, so this
    #: flag is the explicit escape hatch: set it to False to pin every
    #: budget to exactly its configured value, including values that equal
    #: the defaults.
    adaptive_cache_budgets: bool = True

    # -- fault injection (testing/CI only) ---------------------------------------
    #: optional :mod:`repro.core.faults` spec string (same syntax as the
    #: ``REPRO_FAULTS`` environment variable) armed when an engine is built
    #: from these settings.  Because per-problem settings travel into
    #: session worker processes, this is how recovery tests inject failures
    #: inside a specific worker.  Never changes what a surviving run
    #: computes -- only whether/when it fails.
    fault_injection: Optional[str] = None

    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise ``ValueError`` for inconsistent settings."""
        if self.population_size < 4:
            raise ValueError("population_size must be at least 4")
        if self.n_generations < 1:
            raise ValueError("n_generations must be at least 1")
        if self.max_basis_functions < 1:
            raise ValueError("max_basis_functions must be at least 1")
        if self.max_tree_depth < 2:
            raise ValueError("max_tree_depth must be at least 2")
        if self.max_vc_exponent < 1:
            raise ValueError("max_vc_exponent must be at least 1")
        if not 0.0 <= self.p_variable_combo <= 1.0:
            raise ValueError("p_variable_combo must be a probability")
        if not 0.0 <= self.p_operator_factor <= 1.0:
            raise ValueError("p_operator_factor must be a probability")
        if not 0.0 <= self.p_extra_sum_term <= 1.0:
            raise ValueError("p_extra_sum_term must be a probability")
        if self.max_initial_basis_functions < 1:
            raise ValueError("max_initial_basis_functions must be at least 1")
        if self.max_initial_basis_functions > self.max_basis_functions:
            raise ValueError(
                "max_initial_basis_functions cannot exceed max_basis_functions")
        if self.weight_exponent_bound <= 0:
            raise ValueError("weight_exponent_bound must be positive")
        if self.weight_mutation_scale <= 0:
            raise ValueError("weight_mutation_scale must be positive")
        if self.parameter_mutation_bias <= 0:
            raise ValueError("parameter_mutation_bias must be positive")
        if self.basis_function_cost < 0 or self.vc_exponent_cost < 0:
            raise ValueError("complexity constants must be non-negative")
        if self.sag_min_relative_improvement < 0:
            raise ValueError("sag_min_relative_improvement must be non-negative")
        # Backend names validate against the live registries
        # (repro.core.registry), so backends registered by callers are
        # accepted everywhere a built-in name is.
        self._validate_backend("evaluation", self.evaluation_backend)
        if self.evaluation_workers < 0:
            raise ValueError("evaluation_workers must be non-negative")
        self._validate_backend("column", self.column_backend)
        if self.basis_cache_size < 0:
            raise ValueError("basis_cache_size must be non-negative")
        self._validate_backend("fit", self.fit_backend)
        if self.gram_pool_size < 0:
            raise ValueError("gram_pool_size must be non-negative")
        self._validate_backend("pareto", self.pareto_backend)
        self._validate_backend("residual", self.residual_backend)
        if self.genome_backend not in ("shared", "deepcopy"):
            raise ValueError(
                "genome_backend must be 'shared' or 'deepcopy', "
                f"got {self.genome_backend!r}")
        if self.kernel_cache_size < 0:
            raise ValueError("kernel_cache_size must be non-negative")
        if self.fault_injection is not None:
            from repro.core import faults

            try:
                faults.parse_faults(self.fault_injection)
            except ValueError as error:
                raise ValueError(
                    f"fault_injection does not parse: {error}") from None

    @staticmethod
    def _validate_backend(kind: str, name: str) -> None:
        registered = backend_names(kind)
        if name not in registered:
            raise ValueError(
                f"{kind}_backend must be one of {registered}, got {name!r}")

    # ------------------------------------------------------------------
    # size-adaptive cache budgets
    #
    # The class defaults of the three LRU budgets below were tuned for the
    # paper-scale population of 100-200.  At population >= 1000 every
    # generation produces ~10x the unique columns, fits, skeletons and gram
    # pairs, and a fixed budget turns into pure churn: entries are evicted
    # before the next generation can reuse them (the profiling cliff the
    # ROADMAP predicted).  Each ``resolved_*`` accessor therefore treats a
    # budget *equal to its class default* as an adaptive floor that scales
    # with ``population_size`` (and the per-individual term counts); any
    # other value -- including 0 -- is returned verbatim.  A dataclass
    # cannot distinguish an untouched default from the same number typed
    # deliberately, so a caller who really wants a hard cap that happens to
    # equal a default sets ``adaptive_cache_budgets=False`` (which pins
    # every budget exactly).  Budgets only ever affect wall-clock time,
    # never results, so the adaptive default is safe.
    # ------------------------------------------------------------------
    def resolved_basis_cache_size(self) -> int:
        """Effective column/fit LRU budget (size-adaptive at the default).

        Scaled to hold roughly four generations of columns at the configured
        population size (offspring reuse parental basis functions heavily,
        so a few generations of headroom is what converts churn into hits).
        """
        if not self.adaptive_cache_budgets \
                or self.basis_cache_size != type(self).basis_cache_size:
            return self.basis_cache_size
        per_generation = self.population_size * self.max_basis_functions
        return max(self.basis_cache_size, 4 * per_generation)

    def resolved_gram_pool_size(self) -> int:
        """Effective gram-pool pair budget (size-adaptive at the default).

        A width-``k`` individual touches ``k*(k+1)/2`` pairs; the pool must
        hold a few generations' worth or cross-generation gathers miss.
        """
        if not self.adaptive_cache_budgets \
                or self.gram_pool_size != type(self).gram_pool_size:
            return self.gram_pool_size
        pairs_per_individual = (self.max_basis_functions
                                * (self.max_basis_functions + 1)) // 2
        return max(self.gram_pool_size,
                   3 * self.population_size * pairs_per_individual)

    def resolved_kernel_cache_size(self) -> int:
        """Effective compiled-kernel LRU budget (size-adaptive at the default)."""
        if not self.adaptive_cache_budgets \
                or self.kernel_cache_size != type(self).kernel_cache_size:
            return self.kernel_cache_size
        return max(self.kernel_cache_size, 8 * self.population_size)

    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Hex digest over every *result-affecting* field.

        Two settings objects with equal fingerprints are guaranteed to
        evolve bit-identical models from the same data and seed; fields
        that only trade wall-clock for memory/cores (backends, cache
        budgets, workers -- see ``_RESULT_NEUTRAL_FIELDS``) are excluded.
        :class:`~repro.core.cache_store.RunCheckpointStore` snapshots carry
        this digest so a checkpoint refuses to resume under settings that
        would silently diverge from the interrupted run, while still
        resuming freely under a different backend or cache configuration.
        """
        parts = []
        for field in sorted(f.name for f in dataclasses.fields(self)):
            if field in _RESULT_NEUTRAL_FIELDS:
                continue
            value = getattr(self, field)
            if isinstance(value, FunctionSet):
                value = value.fingerprint()
            parts.append(f"{field}={value!r}")
        return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    @classmethod
    def paper_settings(cls, random_seed: Optional[int] = 0) -> "CaffeineSettings":
        """The full run settings of the paper's experiments (Section 6.1).

        Population 200, 5000 generations, at most 15 basis functions, tree
        depth 8, ``B = 10``, ``wb = 10``, ``wvc = 0.25``.  A single run with
        these settings took about 12 hours on the paper's 3 GHz workstation;
        expect comparable magnitudes here.
        """
        return cls(
            population_size=200,
            n_generations=5000,
            random_seed=random_seed,
            max_basis_functions=15,
            max_tree_depth=8,
            weight_exponent_bound=10.0,
            parameter_mutation_bias=5.0,
            basis_function_cost=10.0,
            vc_exponent_cost=0.25,
        )

    @classmethod
    def fast_settings(cls, random_seed: Optional[int] = 0) -> "CaffeineSettings":
        """Reduced budgets for tests and quick exploration (seconds, not hours)."""
        return cls(
            population_size=40,
            n_generations=15,
            random_seed=random_seed,
            max_basis_functions=8,
            max_initial_basis_functions=3,
            max_tree_depth=6,
        )

    def copy(self, **overrides: object) -> "CaffeineSettings":
        """A copy with selected fields replaced."""
        return dataclasses.replace(self, **overrides)  # type: ignore[arg-type]
