"""``Session``: run many :class:`~repro.core.problem.Problem`\\ s over one
shared, persistently cached substrate.

The paper's evaluation is a *sweep*: six CAFFEINE runs over six OTA
performances that all evaluate basis functions on the same ``X``.  A
:class:`Session` is that sweep as an object -- an ordered list of problems
run serially or on a process pool, sharing one fingerprinted column cache
(in memory when serial, through a lock-protected
:class:`~repro.core.cache_store.ColumnCacheStore` file when parallel or
persistent), with a structured callback API replacing the ad-hoc
``progress`` callable of :func:`~repro.core.engine.run_caffeine`::

    from repro import Problem, Session

    session = Session([Problem(train_pm, test_pm, name="PM"),
                       Problem(train_alf, test_alf, name="ALF")],
                      settings=settings, jobs=2,
                      column_cache_path="columns.cache")
    outcome = session.run()
    outcome["PM"].best_model().expression()

Guarantees (same discipline as the engine's other fast paths):

* the Session path is **bit-for-bit identical** to looping
  ``run_caffeine`` by hand -- each problem runs its own engine under its
  own (or the session's) settings and seed, and caches never change
  results, only wall-clock time;
* ``jobs > 1`` is bit-for-bit identical to serial: runs are independent,
  so process-pool scheduling cannot reorder any run's random stream;
* concurrent workers saving the shared cache file merge under an advisory
  lock -- no run's columns are lost (see
  :meth:`~repro.core.cache_store.ColumnCacheStore.save`).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.cache_store import ColumnCacheStore
from repro.core.engine import CaffeineEngine, CaffeineResult, GenerationStats
from repro.core.evaluation import BasisColumnCache
from repro.core.problem import Problem
from repro.core.settings import CaffeineSettings

__all__ = ["Session", "SessionCallback", "SessionResult", "ProgressPrinter",
           "LegacyProgressCallback"]


class SessionCallback:
    """Structured observer of a session run (all hooks default to no-ops).

    Subclass and override what you need; pass instances via
    ``Session(callbacks=[...])``.  Hooks fire on the orchestrating process:
    every hook fires for serial sessions, while under ``jobs > 1`` the
    per-generation hook cannot (generations happen inside worker
    processes) -- problem-level hooks still fire in submission/completion
    order.
    """

    def on_session_start(self, problems: Sequence[Problem]) -> None:
        """Before the first problem runs."""

    def on_problem_start(self, problem: Problem, index: int,
                         total: int) -> None:
        """Before (serial) or at submission of (parallel) one problem."""

    def on_generation(self, problem: Problem, generation: int,
                      stats: GenerationStats) -> None:
        """After each generation of a serial run (never fires when
        ``jobs > 1``; the engine loop is in another process)."""

    def on_problem_end(self, problem: Problem, result: CaffeineResult,
                       index: int, total: int) -> None:
        """After one problem's result is available."""

    def on_checkpoint(self, problem: Problem, path: str,
                      n_entries: int) -> None:
        """After a mid-session column-cache checkpoint was written."""

    def on_session_end(self, result: "SessionResult") -> None:
        """After every problem finished and the cache (if any) was saved."""


class ProgressPrinter(SessionCallback):
    """Prints one line per problem and (serially) per generation."""

    def __init__(self, every: int = 10, printer: Callable = print) -> None:
        self.every = max(1, int(every))
        self.printer = printer

    def on_problem_start(self, problem: Problem, index: int,
                         total: int) -> None:
        self.printer(f"[{index + 1}/{total}] {problem.name}: starting")

    def on_generation(self, problem: Problem, generation: int,
                      stats: GenerationStats) -> None:
        if generation % self.every == 0:
            self.printer(f"[{problem.name}] {stats}")

    def on_problem_end(self, problem: Problem, result: CaffeineResult,
                       index: int, total: int) -> None:
        self.printer(f"[{index + 1}/{total}] {problem.name}: "
                     f"{result.n_models} models in "
                     f"{result.runtime_seconds:.1f} s")


class LegacyProgressCallback(SessionCallback):
    """Adapter: the old ``progress(generation, stats)`` callable as a
    callback (what the :func:`~repro.core.engine.run_caffeine` shim uses)."""

    def __init__(self, progress: Callable[[int, GenerationStats], None]
                 ) -> None:
        self.progress = progress

    def on_generation(self, problem: Problem, generation: int,
                      stats: GenerationStats) -> None:
        self.progress(generation, stats)


@dataclasses.dataclass(frozen=True)
class SessionResult:
    """Everything a session run produced, in problem order."""

    problems: Tuple[Problem, ...]
    #: per-problem results, keyed by problem name, in run order
    results: Dict[str, CaffeineResult]
    runtime_seconds: float
    jobs: int

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[str]:
        return iter(self.results)

    def __getitem__(self, key: Union[str, int]) -> CaffeineResult:
        """Result by problem name, or by position in run order."""
        if isinstance(key, int):
            return self.results[tuple(self.results)[key]]
        return self.results[key]

    def items(self):
        return self.results.items()

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(self.results)

    def single(self) -> CaffeineResult:
        """The result of a one-problem session (ValueError otherwise)."""
        if len(self.results) != 1:
            raise ValueError(
                f"session ran {len(self.results)} problems, not 1")
        return next(iter(self.results.values()))


class Session:
    """Orchestrates CAFFEINE runs over a list of problems.

    Parameters
    ----------
    problems:
        Initial problems (more via :meth:`add`); names must be unique.
    settings:
        Shared :class:`CaffeineSettings` for problems without their own.
    jobs:
        1 (default) runs serially on this process with one shared
        in-memory column cache; ``n > 1`` runs up to ``n`` problems
        concurrently on a process pool, sharing columns through
        ``column_cache_path`` (if given).  Results are identical either
        way -- see the module docstring.
    column_cache:
        Optional in-memory cache to share (serial only); defaults to a
        fresh one sized to the largest per-problem ``basis_cache_size``.
        Problems whose effective settings disable caching
        (``basis_cache_size=0``) never touch the shared cache.
    column_cache_path:
        Optional :class:`ColumnCacheStore` path: the session warm-starts
        from it and saves back everything it computed.  With ``jobs > 1``
        every worker loads it at start and merge-saves at end (under the
        store's advisory lock), so parallel sweeps still pool their
        columns across problems and across sessions.
    callbacks:
        :class:`SessionCallback` instances observing the run.
    checkpoint_column_cache:
        Serially, save the shared cache to ``column_cache_path`` after
        *each* problem (not just at the end), so an interrupted sweep
        keeps the warmth it paid for.  Parallel sessions checkpoint
        inherently (each worker saves on completion).
    """

    def __init__(self, problems: Sequence[Problem] = (),
                 settings: Optional[CaffeineSettings] = None, *,
                 jobs: int = 1,
                 column_cache: Optional[BasisColumnCache] = None,
                 column_cache_path: Optional[str] = None,
                 callbacks: Sequence[SessionCallback] = (),
                 checkpoint_column_cache: bool = False) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        if column_cache is not None and jobs > 1:
            raise ValueError(
                "an in-memory column_cache cannot be shared across "
                "processes; use column_cache_path with jobs > 1")
        if checkpoint_column_cache and column_cache_path is None:
            raise ValueError(
                "checkpoint_column_cache=True has nothing to write to; "
                "pass column_cache_path as well")
        self.problems: List[Problem] = []
        self.settings = settings
        self.jobs = int(jobs)
        self.column_cache = column_cache
        self.column_cache_path = (str(column_cache_path)
                                  if column_cache_path is not None else None)
        self.callbacks: List[SessionCallback] = list(callbacks)
        self.checkpoint_column_cache = bool(checkpoint_column_cache)
        for problem in problems:
            self.add(problem)

    # ------------------------------------------------------------------
    def add(self, problem: Problem) -> "Session":
        """Append a problem (chainable); names must stay unique."""
        if not isinstance(problem, Problem):
            raise TypeError(f"expected a Problem, got {type(problem).__name__}")
        if any(existing.name == problem.name for existing in self.problems):
            raise ValueError(
                f"a problem named {problem.name!r} is already scheduled "
                f"(names key the result mapping and must be unique)")
        self.problems.append(problem)
        return self

    def add_callback(self, callback: SessionCallback) -> "Session":
        self.callbacks.append(callback)
        return self

    # ------------------------------------------------------------------
    def run(self) -> SessionResult:
        """Run every problem and return the ordered result mapping."""
        if not self.problems:
            raise ValueError("session has no problems to run")
        start = time.perf_counter()
        self._fire("on_session_start", tuple(self.problems))
        if self.jobs > 1 and len(self.problems) > 1:
            results = self._run_parallel()
        else:
            results = self._run_serial()
        outcome = SessionResult(
            problems=tuple(self.problems),
            results=results,
            runtime_seconds=time.perf_counter() - start,
            jobs=self.jobs,
        )
        self._fire("on_session_end", outcome)
        return outcome

    # ------------------------------------------------------------------
    def _run_serial(self) -> Dict[str, CaffeineResult]:
        # The shared cache is sized to the largest per-problem request so
        # no problem's working set is squeezed by a smaller neighbour;
        # problems that *disable* caching (basis_cache_size=0) opt out of
        # sharing entirely below (their engines build their own disabled
        # caches, which also keeps their fit caches off).
        cache_sizes = [problem.effective_settings(self.settings)
                       .resolved_basis_cache_size()
                       for problem in self.problems]
        cache = (self.column_cache if self.column_cache is not None
                 else BasisColumnCache(max(cache_sizes)))
        store = (ColumnCacheStore(self.column_cache_path)
                 if self.column_cache_path is not None else None)
        total = len(self.problems)
        results: Dict[str, CaffeineResult] = {}
        loaded_namespaces = set()
        for index, problem in enumerate(self.problems):
            self._fire("on_problem_start", problem, index, total)
            effective = problem.effective_settings(self.settings)
            engine = CaffeineEngine(
                problem.train, test=problem.test, settings=effective,
                column_cache=(cache if effective.basis_cache_size > 0
                              else None))
            if store is not None and effective.basis_cache_size > 0:
                # Admit only this problem's namespace into the LRU (a shared
                # store file only grows; foreign namespaces would occupy --
                # and at capacity evict -- the warm columns this sweep
                # actually uses).  Each namespace loads once per session.
                dataset_key = engine.evaluator.dataset_key
                if dataset_key not in loaded_namespaces:
                    loaded_namespaces.add(dataset_key)
                    store.load_into(cache, dataset_key=dataset_key)
            progress = self._generation_progress(problem)
            result = engine.run(progress=progress)
            results[problem.name] = result
            self._fire("on_problem_end", problem, result, index, total)
            if store is not None and self.checkpoint_column_cache \
                    and index + 1 < total:
                n_entries = store.save(cache)
                self._fire("on_checkpoint", problem, str(store.path),
                           n_entries)
        if store is not None:
            store.save(cache)
        return results

    def _run_parallel(self) -> Dict[str, CaffeineResult]:
        import concurrent.futures

        self._check_backends_survive_workers()
        total = len(self.problems)
        workers = min(self.jobs, total)
        results: Dict[str, CaffeineResult] = {}
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=workers) as pool:
            futures = []
            for index, problem in enumerate(self.problems):
                self._fire("on_problem_start", problem, index, total)
                futures.append(pool.submit(
                    _run_problem_task, problem,
                    problem.effective_settings(self.settings),
                    self.column_cache_path))
            # Collect in submission order: the result mapping (and the
            # callbacks' completion order) stay deterministic regardless
            # of which worker finishes first.
            for index, (problem, future) in enumerate(
                    zip(self.problems, futures)):
                result = future.result()
                results[problem.name] = result
                self._fire("on_problem_end", problem, result, index, total)
        return results

    # ------------------------------------------------------------------
    def _check_backends_survive_workers(self) -> None:
        """Fail fast when runtime-registered backends cannot reach workers.

        Backend registries are per-process: ``fork``-started workers (the
        Linux default) inherit the parent's runtime registrations, but
        ``spawn``-started ones import the registry fresh and only know the
        built-ins -- a custom backend name would die inside the pool with
        an opaque KeyError.  Raise a diagnosable error here instead.
        """
        from repro.core.registry import is_builtin_backend, \
            worker_start_method

        method = worker_start_method()
        if method == "fork":
            return
        for problem in self.problems:
            settings = problem.effective_settings(self.settings)
            for kind, name in (("column", settings.column_backend),
                               ("fit", settings.fit_backend),
                               ("pareto", settings.pareto_backend),
                               ("evaluation", settings.evaluation_backend)):
                if not is_builtin_backend(kind, name):
                    raise ValueError(
                        f"problem {problem.name!r} uses the runtime-"
                        f"registered {kind} backend {name!r}, but jobs="
                        f"{self.jobs} worker processes start via "
                        f"{method!r} and only know the built-in backends; "
                        f"run serially (jobs=1), switch to the 'fork' "
                        f"start method, or register the backend at import "
                        f"time of a module the workers import")

    def _generation_progress(self, problem: Problem):
        callbacks = self.callbacks
        if not callbacks:
            return None

        def progress(generation: int, stats: GenerationStats) -> None:
            for callback in callbacks:
                callback.on_generation(problem, generation, stats)

        return progress

    def _fire(self, hook: str, *args) -> None:
        for callback in self.callbacks:
            getattr(callback, hook)(*args)


def _run_problem_task(problem: Problem, settings: CaffeineSettings,
                      column_cache_path: Optional[str]) -> CaffeineResult:
    """One worker's whole job: warm-load, run, merge-save (picklable)."""
    cache = BasisColumnCache(settings.resolved_basis_cache_size())
    store = (ColumnCacheStore(column_cache_path)
             if column_cache_path is not None else None)
    engine = CaffeineEngine(problem.train, test=problem.test,
                            settings=settings, column_cache=cache)
    if store is not None:
        # Namespace-filtered, like the serial path: only this problem's
        # columns occupy LRU room (save() below still merges, never erases).
        store.load_into(cache, dataset_key=engine.evaluator.dataset_key)
    result = engine.run()
    if store is not None:
        store.save(cache)
    return result
