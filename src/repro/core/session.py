"""``Session``: fault-tolerant multi-problem orchestration over one shared,
persistently cached substrate.

The paper's evaluation is a *sweep*: six CAFFEINE runs over six OTA
performances that all evaluate basis functions on the same ``X``.  A
:class:`Session` is that sweep as an object -- an ordered list of problems
run serially or on worker processes, sharing one fingerprinted column cache
(in memory when serial, through a lock-protected
:class:`~repro.core.cache_store.ColumnCacheStore` file when parallel or
persistent), with a structured callback API replacing the ad-hoc
``progress`` callable of :func:`~repro.core.engine.run_caffeine`::

    from repro import Problem, Session

    session = Session([Problem(train_pm, test_pm, name="PM"),
                       Problem(train_alf, test_alf, name="ALF")],
                      settings=settings, jobs=2,
                      column_cache_path="columns.cache",
                      checkpoint_path="sweep.ckpt", timeout=3600.0)
    outcome = session.run()
    outcome["PM"].best_model().expression()

Guarantees (same discipline as the engine's other fast paths):

* the Session path is **bit-for-bit identical** to looping
  ``run_caffeine`` by hand -- each problem runs its own engine under its
  own (or the session's) settings and seed, and caches never change
  results, only wall-clock time;
* ``jobs > 1`` is bit-for-bit identical to serial: runs are independent,
  so worker scheduling cannot reorder any run's random stream;
* concurrent workers saving the shared cache file merge under an advisory
  lock -- no run's columns are lost (see
  :meth:`~repro.core.cache_store.ColumnCacheStore.save`).

Fault tolerance (all opt-out rather than opt-in -- a long sweep should
survive by default):

* **one problem's failure never aborts the sweep** (default
  ``failure_policy="continue"``): a worker that crashes (killed pid,
  segfault), times out (``timeout`` seconds per problem) or raises is
  retried up to ``retries`` times with exponential backoff + jitter, then
  -- if ``fallback_serial`` -- run once more in-process; only after all
  that does the problem land in :attr:`SessionResult.failures` as a
  structured :class:`ProblemFailure` (and
  :meth:`SessionCallback.on_problem_error` fires) while every other
  problem's result is returned normally;
* **crash-safe checkpoints** (``checkpoint_path``): each problem's engine
  periodically snapshots its generation boundary to a
  :class:`~repro.core.cache_store.RunCheckpointStore` (and stores its
  final result on completion), so :meth:`Session.resume` warm-restarts an
  interrupted sweep -- finished problems return instantly, in-flight ones
  continue **bit-identically** from their last snapshot;
* **Ctrl-C returns what finished**: a ``KeyboardInterrupt`` saves the
  running problem's last boundary checkpoint, stops the sweep, and returns
  a partial :class:`SessionResult` (``interrupted=True``) instead of
  discarding hours of completed work (with ``failure_policy="raise"`` it
  propagates, preserving the legacy shim's semantics).
"""

from __future__ import annotations

import dataclasses
import random
import time
import traceback as traceback_module
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core import faults
from repro.core.cache_store import ColumnCacheStore, RunCheckpointStore
from repro.core.engine import CaffeineEngine, CaffeineResult, GenerationStats
from repro.core.evaluation import BasisColumnCache
from repro.core.problem import Problem
from repro.core.settings import CaffeineSettings

__all__ = ["Session", "SessionCallback", "SessionResult", "ProblemFailure",
           "ProgressPrinter", "LegacyProgressCallback"]


class SessionCallback:
    """Structured observer of a session run (all hooks default to no-ops).

    Subclass and override what you need; pass instances via
    ``Session(callbacks=[...])``.  Hooks fire on the orchestrating process:
    every hook fires for serial sessions, while under ``jobs > 1`` the
    per-generation hook cannot (generations happen inside worker
    processes) -- problem-level hooks still fire in submission/completion
    order.
    """

    def on_session_start(self, problems: Sequence[Problem]) -> None:
        """Before the first problem runs."""

    def on_problem_start(self, problem: Problem, index: int,
                         total: int) -> None:
        """Before (serial) or at first launch of (parallel) one problem."""

    def on_generation(self, problem: Problem, generation: int,
                      stats: GenerationStats) -> None:
        """After each generation of a serial run (never fires when
        ``jobs > 1``; the engine loop is in another process)."""

    def on_problem_end(self, problem: Problem, result: CaffeineResult,
                       index: int, total: int) -> None:
        """After one problem's result is available."""

    def on_problem_retry(self, problem: Problem, failure: "ProblemFailure",
                         delay: float) -> None:
        """After a failed attempt that will be retried in ``delay`` s
        (``failure`` describes the attempt that just failed)."""

    def on_problem_error(self, problem: Problem,
                         failure: "ProblemFailure") -> None:
        """After one problem failed *terminally* (every retry and fallback
        exhausted); the sweep continues under ``failure_policy="continue"``."""

    def on_checkpoint(self, problem: Problem, path: str,
                      n_entries: int) -> None:
        """After a mid-session column-cache checkpoint was written."""

    def on_session_end(self, result: "SessionResult") -> None:
        """After every problem finished/failed and caches were saved."""


class ProgressPrinter(SessionCallback):
    """Prints one line per problem and (serially) per generation."""

    def __init__(self, every: int = 10, printer: Callable = print) -> None:
        self.every = max(1, int(every))
        self.printer = printer

    def on_problem_start(self, problem: Problem, index: int,
                         total: int) -> None:
        self.printer(f"[{index + 1}/{total}] {problem.name}: starting")

    def on_generation(self, problem: Problem, generation: int,
                      stats: GenerationStats) -> None:
        if generation % self.every == 0:
            self.printer(f"[{problem.name}] {stats}")

    def on_problem_end(self, problem: Problem, result: CaffeineResult,
                       index: int, total: int) -> None:
        self.printer(f"[{index + 1}/{total}] {problem.name}: "
                     f"{result.n_models} models in "
                     f"{result.runtime_seconds:.1f} s")

    def on_problem_retry(self, problem: Problem, failure: "ProblemFailure",
                         delay: float) -> None:
        self.printer(f"[{problem.name}] attempt {failure.attempts} failed "
                     f"({failure.phase}: {failure.message}); retrying in "
                     f"{delay:.1f} s")

    def on_problem_error(self, problem: Problem,
                         failure: "ProblemFailure") -> None:
        self.printer(f"[{problem.name}] FAILED after {failure.attempts} "
                     f"attempt(s): {failure.phase}: {failure.message}")


class LegacyProgressCallback(SessionCallback):
    """Adapter: the old ``progress(generation, stats)`` callable as a
    callback (what the :func:`~repro.core.engine.run_caffeine` shim uses)."""

    def __init__(self, progress: Callable[[int, GenerationStats], None]
                 ) -> None:
        self.progress = progress

    def on_generation(self, problem: Problem, generation: int,
                      stats: GenerationStats) -> None:
        self.progress(generation, stats)


@dataclasses.dataclass(frozen=True)
class ProblemFailure:
    """Structured record of one problem's terminal (or per-attempt) failure.

    ``phase`` is one of ``"worker-crash"`` (the worker process died -- a
    negative exitcode names the signal), ``"timeout"`` (the per-problem
    ``timeout`` elapsed and the worker was killed), ``"exception"`` (the
    run raised; ``error_type``/``message``/``traceback`` carry it) or
    ``"interrupted"`` (a ``KeyboardInterrupt`` stopped the sweep while this
    problem was in flight -- its checkpoint, if any, was saved).
    """

    problem: Problem
    phase: str
    error_type: str
    message: str
    #: how many attempts were made in total (first try counts as 1)
    attempts: int
    traceback: str = ""
    #: True when the last attempt was the in-process serial fallback
    fell_back_serial: bool = False

    @property
    def name(self) -> str:
        return self.problem.name

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{self.problem.name}: {self.phase} after {self.attempts} "
                f"attempt(s) ({self.error_type}: {self.message})")


@dataclasses.dataclass(frozen=True)
class SessionResult:
    """Everything a session run produced, in problem order.

    A fault-tolerant run can be *partial*: problems that failed terminally
    are absent from :attr:`results` and present in :attr:`failures`
    instead, and a ``KeyboardInterrupt`` sets :attr:`interrupted` (problems
    that never started appear in neither mapping).  What IS in
    :attr:`results` is always a complete, trustworthy
    :class:`~repro.core.engine.CaffeineResult` -- bit-identical to what an
    undisturbed run would have produced for that problem.
    """

    problems: Tuple[Problem, ...]
    #: per-problem results, keyed by problem name, in run order
    results: Dict[str, CaffeineResult]
    runtime_seconds: float
    jobs: int
    #: terminally failed problems, keyed by name, in run order
    failures: Dict[str, "ProblemFailure"] = dataclasses.field(
        default_factory=dict)
    #: True when a KeyboardInterrupt cut the sweep short
    interrupted: bool = False

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[str]:
        return iter(self.results)

    def __getitem__(self, key: Union[str, int]) -> CaffeineResult:
        """Result by problem name, or by position in run order."""
        if isinstance(key, int):
            return self.results[tuple(self.results)[key]]
        if key not in self.results and key in self.failures:
            failure = self.failures[key]
            raise KeyError(
                f"problem {key!r} has no result: it failed terminally "
                f"({failure.phase} after {failure.attempts} attempt(s): "
                f"{failure.message})")
        return self.results[key]

    def items(self):
        return self.results.items()

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(self.results)

    @property
    def complete(self) -> bool:
        """True when every scheduled problem produced a result."""
        return (not self.interrupted
                and len(self.results) == len(self.problems))

    def raise_failures(self) -> "SessionResult":
        """Raise ``RuntimeError`` if any problem failed; chainable."""
        if self.failures:
            summary = "; ".join(str(f) for f in self.failures.values())
            raise RuntimeError(
                f"{len(self.failures)} problem(s) failed: {summary}")
        if self.interrupted:
            raise RuntimeError("session was interrupted before completing")
        return self

    def single(self) -> CaffeineResult:
        """The result of a one-problem session (ValueError otherwise)."""
        if len(self.results) != 1:
            if len(self.problems) == 1 and self.failures:
                failure = next(iter(self.failures.values()))
                raise RuntimeError(
                    f"the session's one problem failed: {failure}")
            raise ValueError(
                f"session ran {len(self.results)} problems, not 1")
        return next(iter(self.results.values()))


@dataclasses.dataclass
class _Attempt:
    """One queued (re)try of one problem in the parallel runner."""

    index: int
    problem: Problem
    attempt: int = 0
    #: monotonic time before which this attempt must not launch (backoff)
    ready_at: float = 0.0


@dataclasses.dataclass
class _Running:
    """One in-flight worker process in the parallel runner."""

    process: "object"
    problem: Problem
    index: int
    attempt: int
    #: monotonic deadline (None = no per-problem timeout)
    deadline: Optional[float]


class Session:
    """Orchestrates CAFFEINE runs over a list of problems.

    Parameters
    ----------
    problems:
        Initial problems (more via :meth:`add`); names must be unique.
    settings:
        Shared :class:`CaffeineSettings` for problems without their own.
    jobs:
        1 (default) runs serially on this process with one shared
        in-memory column cache; ``n > 1`` runs up to ``n`` problems
        concurrently, each in its own worker process, sharing columns
        through ``column_cache_path`` (if given).  Results are identical
        either way -- see the module docstring.
    column_cache:
        Optional in-memory cache to share (serial only); defaults to a
        fresh one sized to the largest per-problem ``basis_cache_size``.
        Problems whose effective settings disable caching
        (``basis_cache_size=0``) never touch the shared cache.
    column_cache_path:
        Optional :class:`ColumnCacheStore` path: the session warm-starts
        from it and saves back everything it computed.  With ``jobs > 1``
        every worker loads it at start and merge-saves at end (under the
        store's advisory lock), so parallel sweeps still pool their
        columns across problems and across sessions.
    callbacks:
        :class:`SessionCallback` instances observing the run.
    checkpoint_column_cache:
        Serially, save the shared cache to ``column_cache_path`` after
        *each* problem (not just at the end), so an interrupted sweep
        keeps the warmth it paid for.  Parallel sessions checkpoint
        inherently (each worker saves on completion).
    checkpoint_path:
        Optional :class:`~repro.core.cache_store.RunCheckpointStore` path
        making every problem's run crash-safe: its engine snapshots the
        generation boundary every ``checkpoint_every`` generations (slot =
        problem name) and stores the final result on completion, so
        :meth:`resume` warm-restarts an interrupted sweep bit-identically.
    checkpoint_every:
        Generation cadence of those snapshots (default 1 -- every
        boundary; raise it to trade crash granularity for less pickling).
    timeout:
        Optional per-problem wall-clock budget in seconds (``jobs > 1``
        only -- an in-process run cannot be preempted): a worker past its
        deadline is killed and the problem retried/failed like a crash.
    retries:
        How many times a crashed / timed-out / raising problem is retried
        (fresh worker, exponential backoff with jitter) before the serial
        fallback or terminal failure.  Default 1.
    retry_backoff:
        Base backoff delay in seconds; attempt ``k`` waits
        ``retry_backoff * 2**(k-1)`` (+ up to 25% jitter).  Default 0.5.
    fallback_serial:
        After all parallel retries fail, try the problem once more
        in-process (default True) -- degraded throughput beats a lost
        problem when the failure was pool-related.
    failure_policy:
        ``"continue"`` (default): terminal failures become structured
        :class:`ProblemFailure` records in a partial
        :class:`SessionResult` and the sweep keeps going.  ``"raise"``:
        the first failure propagates as an exception (the legacy
        :func:`~repro.core.engine.run_caffeine` contract) and a
        ``KeyboardInterrupt`` propagates instead of returning partials.
    """

    def __init__(self, problems: Sequence[Problem] = (),
                 settings: Optional[CaffeineSettings] = None, *,
                 jobs: int = 1,
                 column_cache: Optional[BasisColumnCache] = None,
                 column_cache_path: Optional[str] = None,
                 callbacks: Sequence[SessionCallback] = (),
                 checkpoint_column_cache: bool = False,
                 checkpoint_path: Optional[str] = None,
                 checkpoint_every: int = 1,
                 timeout: Optional[float] = None,
                 retries: int = 1,
                 retry_backoff: float = 0.5,
                 fallback_serial: bool = True,
                 failure_policy: str = "continue") -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        if column_cache is not None and jobs > 1:
            raise ValueError(
                "an in-memory column_cache cannot be shared across "
                "processes; use column_cache_path with jobs > 1")
        if checkpoint_column_cache and column_cache_path is None:
            raise ValueError(
                "checkpoint_column_cache=True has nothing to write to; "
                "pass column_cache_path as well")
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be at least 1")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if retry_backoff < 0:
            raise ValueError("retry_backoff must be non-negative")
        if failure_policy not in ("continue", "raise"):
            raise ValueError(
                f"failure_policy must be 'continue' or 'raise', "
                f"got {failure_policy!r}")
        self.problems: List[Problem] = []
        self.settings = settings
        self.jobs = int(jobs)
        self.column_cache = column_cache
        self.column_cache_path = (str(column_cache_path)
                                  if column_cache_path is not None else None)
        self.callbacks: List[SessionCallback] = list(callbacks)
        self.checkpoint_column_cache = bool(checkpoint_column_cache)
        self.checkpoint_path = (str(checkpoint_path)
                                if checkpoint_path is not None else None)
        self.checkpoint_every = int(checkpoint_every)
        self.timeout = timeout
        self.retries = int(retries)
        self.retry_backoff = float(retry_backoff)
        self.fallback_serial = bool(fallback_serial)
        self.failure_policy = failure_policy
        for problem in problems:
            self.add(problem)

    # ------------------------------------------------------------------
    def add(self, problem: Problem) -> "Session":
        """Append a problem (chainable); names must stay unique."""
        if not isinstance(problem, Problem):
            raise TypeError(f"expected a Problem, got {type(problem).__name__}")
        if any(existing.name == problem.name for existing in self.problems):
            raise ValueError(
                f"a problem named {problem.name!r} is already scheduled "
                f"(names key the result mapping and must be unique)")
        self.problems.append(problem)
        return self

    def add_callback(self, callback: SessionCallback) -> "Session":
        self.callbacks.append(callback)
        return self

    # ------------------------------------------------------------------
    def run(self, *, resume: bool = False) -> SessionResult:
        """Run every problem and return the ordered result mapping.

        ``resume=True`` (requires ``checkpoint_path``) warm-restarts from
        the checkpoint store: problems with a stored final result return
        it without re-running, problems with a generation snapshot
        continue bit-identically from it, everything else starts cold.
        """
        if not self.problems:
            raise ValueError("session has no problems to run")
        if resume and self.checkpoint_path is None:
            raise ValueError(
                "resume=True has no checkpoint store to read; "
                "pass checkpoint_path")
        start = time.perf_counter()
        self._fire("on_session_start", tuple(self.problems))
        if self.jobs > 1 and len(self.problems) > 1:
            results, failures, interrupted = self._run_parallel(resume)
        else:
            results, failures, interrupted = self._run_serial(resume)
        outcome = SessionResult(
            problems=tuple(self.problems),
            results=results,
            runtime_seconds=time.perf_counter() - start,
            jobs=self.jobs,
            failures=failures,
            interrupted=interrupted,
        )
        self._fire("on_session_end", outcome)
        return outcome

    def resume(self) -> SessionResult:
        """Warm-restart the sweep from ``checkpoint_path`` (see :meth:`run`)."""
        return self.run(resume=True)

    # ------------------------------------------------------------------
    def _checkpoint_store(self) -> Optional[RunCheckpointStore]:
        return (RunCheckpointStore(self.checkpoint_path)
                if self.checkpoint_path is not None else None)

    def _backoff_delay(self, failed_attempt: int) -> float:
        """Exponential backoff with up to 25% jitter (wall-clock only)."""
        base = self.retry_backoff * (2.0 ** failed_attempt)
        # repro-lint: allow[determinism] -- retry-backoff jitter shapes wall-clock waits only, never results
        return base * (1.0 + 0.25 * random.random())

    # ------------------------------------------------------------------
    def _run_serial(self, resume: bool
                    ) -> Tuple[Dict[str, CaffeineResult],
                               Dict[str, ProblemFailure], bool]:
        # The shared cache is sized to the largest per-problem request so
        # no problem's working set is squeezed by a smaller neighbour;
        # problems that *disable* caching (basis_cache_size=0) opt out of
        # sharing entirely below (their engines build their own disabled
        # caches, which also keeps their fit caches off).
        cache_sizes = [problem.effective_settings(self.settings)
                       .resolved_basis_cache_size()
                       for problem in self.problems]
        cache = (self.column_cache if self.column_cache is not None
                 else BasisColumnCache(max(cache_sizes)))
        store = (ColumnCacheStore(self.column_cache_path)
                 if self.column_cache_path is not None else None)
        checkpoints = self._checkpoint_store()
        total = len(self.problems)
        results: Dict[str, CaffeineResult] = {}
        failures: Dict[str, ProblemFailure] = {}
        interrupted = False
        loaded_namespaces = set()
        current: Optional[Problem] = None
        try:
            for index, problem in enumerate(self.problems):
                current = problem
                self._fire("on_problem_start", problem, index, total)
                effective = problem.effective_settings(self.settings)
                progress = self._generation_progress(problem)
                attempt = 0
                while True:
                    engine = CaffeineEngine(
                        problem.train, test=problem.test, settings=effective,
                        column_cache=(cache if effective.basis_cache_size > 0
                                      else None))
                    if store is not None and effective.basis_cache_size > 0:
                        # Admit only this problem's namespace into the LRU
                        # (a shared store file only grows; foreign
                        # namespaces would occupy -- and at capacity evict
                        # -- the warm columns this sweep actually uses).
                        # Each namespace loads once per session.
                        dataset_key = engine.evaluator.dataset_key
                        if dataset_key not in loaded_namespaces:
                            loaded_namespaces.add(dataset_key)
                            store.load_into(cache, dataset_key=dataset_key)
                    try:
                        # A retry resumes from the failed attempt's own
                        # checkpoints: completed generations stay paid for.
                        result = engine.run(
                            progress=progress,
                            checkpoint=checkpoints,
                            checkpoint_every=self.checkpoint_every,
                            checkpoint_slot=problem.name,
                            resume=resume or attempt > 0)
                    except KeyboardInterrupt:
                        raise
                    except Exception as error:
                        if self.failure_policy == "raise":
                            raise
                        attempt += 1
                        failure = ProblemFailure(
                            problem=problem, phase="exception",
                            error_type=type(error).__name__,
                            message=str(error), attempts=attempt,
                            traceback=traceback_module.format_exc())
                        if attempt <= self.retries:
                            delay = self._backoff_delay(attempt - 1)
                            self._fire("on_problem_retry", problem, failure,
                                       delay)
                            time.sleep(delay)
                            continue
                        failures[problem.name] = failure
                        self._fire("on_problem_error", problem, failure)
                        break
                    results[problem.name] = result
                    self._fire("on_problem_end", problem, result, index,
                               total)
                    break
                if store is not None and self.checkpoint_column_cache \
                        and index + 1 < total:
                    n_entries = store.save(cache)
                    self._fire("on_checkpoint", problem, str(store.path),
                               n_entries)
        except KeyboardInterrupt:
            # The engine already saved the interrupted problem's last
            # completed generation boundary (when checkpointing is on);
            # report what finished instead of discarding it.
            if self.failure_policy == "raise":
                raise
            interrupted = True
            if current is not None and current.name not in results:
                failures[current.name] = ProblemFailure(
                    problem=current, phase="interrupted",
                    error_type="KeyboardInterrupt",
                    message=("interrupted by user"
                             + ("; checkpoint saved"
                                if checkpoints is not None else "")),
                    attempts=1)
        if store is not None:
            store.save(cache)
        return results, failures, interrupted

    # ------------------------------------------------------------------
    def _run_parallel(self, resume: bool
                      ) -> Tuple[Dict[str, CaffeineResult],
                                 Dict[str, ProblemFailure], bool]:
        """Run problems on per-problem worker processes, surviving faults.

        Unlike a ``ProcessPoolExecutor`` -- where one killed worker breaks
        the whole pool and fails every outstanding future -- each problem
        gets its own :class:`multiprocessing.Process` and result pipe, so
        a crash, stall or timeout is contained to its problem: the worker
        is reaped (or killed, for timeouts), the problem retried with
        backoff, degraded to in-process execution, or recorded as a
        structured failure, while every other worker keeps running.

        Determinism: runs are independent (each worker owns its engine and
        RNG), so scheduling cannot change any result; ``on_problem_start``
        fires at first launch in problem order, and completion callbacks /
        the result mapping are emitted in problem order after the pool
        drains, regardless of which worker finished first.
        """
        import multiprocessing
        from multiprocessing.connection import wait as connection_wait

        self._check_backends_survive_workers()
        ctx = multiprocessing.get_context()
        total = len(self.problems)
        max_workers = min(self.jobs, total)
        outcomes: Dict[str, CaffeineResult] = {}
        failures: Dict[str, ProblemFailure] = {}
        serial_queue: List[_Attempt] = []
        pending: List[_Attempt] = [
            _Attempt(index=index, problem=problem)
            for index, problem in enumerate(self.problems)]
        running: Dict[object, _Running] = {}  # recv-pipe -> worker
        started: set = set()
        interrupted = False

        def launch(item: _Attempt) -> None:
            if item.index not in started:
                started.add(item.index)
                self._fire("on_problem_start", item.problem, item.index,
                           total)
            recv_conn, send_conn = ctx.Pipe(duplex=False)
            process = ctx.Process(
                target=_worker_main,
                args=(send_conn, item.problem,
                      item.problem.effective_settings(self.settings),
                      self.column_cache_path, self.checkpoint_path,
                      self.checkpoint_every,
                      resume or item.attempt > 0, item.attempt),
                # not daemonic: workers may themselves use the "process"
                # evaluation backend
                daemon=False)
            process.start()
            send_conn.close()  # orchestrator keeps only the read end
            deadline = (time.monotonic() + self.timeout
                        if self.timeout is not None else None)
            running[recv_conn] = _Running(process=process,
                                          problem=item.problem,
                                          index=item.index,
                                          attempt=item.attempt,
                                          deadline=deadline)

        def attempt_failed(worker: _Running, phase: str, error_type: str,
                           message: str, trace: str = "") -> None:
            attempts = worker.attempt + 1
            failure = ProblemFailure(
                problem=worker.problem, phase=phase, error_type=error_type,
                message=message, attempts=attempts, traceback=trace)
            if self.failure_policy == "raise":
                raise RuntimeError(
                    f"problem {worker.problem.name!r} failed "
                    f"({phase}: {error_type}: {message})"
                    + (f"\n{trace}" if trace else ""))
            if worker.attempt < self.retries:
                delay = self._backoff_delay(worker.attempt)
                self._fire("on_problem_retry", worker.problem, failure,
                           delay)
                pending.append(_Attempt(
                    index=worker.index, problem=worker.problem,
                    attempt=worker.attempt + 1,
                    ready_at=time.monotonic() + delay))
            elif self.fallback_serial:
                self._fire("on_problem_retry", worker.problem, failure, 0.0)
                serial_queue.append(_Attempt(
                    index=worker.index, problem=worker.problem,
                    attempt=attempts))
            else:
                failures[worker.problem.name] = failure

        def reap(conn, worker: _Running) -> None:
            """Collect one finished/broken worker's outcome."""
            message = None
            try:
                if conn.poll():
                    message = conn.recv()
            except (EOFError, OSError):
                message = None
            finally:
                conn.close()
            worker.process.join(timeout=30)
            if message is None:
                exitcode = worker.process.exitcode
                detail = (f"killed by signal {-exitcode}"
                          if exitcode is not None and exitcode < 0
                          else f"exitcode {exitcode}")
                attempt_failed(
                    worker, "worker-crash", "WorkerCrash",
                    f"worker pid {worker.process.pid} died without "
                    f"reporting a result ({detail})")
            elif message[0] == "result":
                outcomes[worker.problem.name] = message[1]
            else:  # ("error", type_name, message, traceback)
                _tag, error_type, text, trace = message
                attempt_failed(worker, "exception", error_type, text, trace)

        try:
            while pending or running:
                now = time.monotonic()
                ready = [item for item in pending if item.ready_at <= now]
                while len(running) < max_workers and ready:
                    item = ready.pop(0)
                    pending.remove(item)
                    launch(item)
                if not running and not pending:
                    break
                waits = []
                if self.timeout is not None and running:
                    waits.extend(worker.deadline - now
                                 for worker in running.values()
                                 if worker.deadline is not None)
                if pending and len(running) < max_workers:
                    waits.append(min(item.ready_at for item in pending) - now)
                wait_timeout = max(0.0, min(waits)) if waits else None
                if running:
                    for conn in connection_wait(list(running),
                                                timeout=wait_timeout):
                        reap(conn, running.pop(conn))
                elif wait_timeout:
                    time.sleep(min(wait_timeout, 0.5))
                if self.timeout is not None:
                    now = time.monotonic()
                    for conn, worker in list(running.items()):
                        if worker.deadline is not None \
                                and now >= worker.deadline:
                            del running[conn]
                            worker.process.kill()
                            worker.process.join(timeout=30)
                            conn.close()
                            attempt_failed(
                                worker, "timeout", "TimeoutError",
                                f"problem exceeded the per-problem timeout "
                                f"of {self.timeout} s and was killed")
        except KeyboardInterrupt:
            if self.failure_policy == "raise":
                raise
            interrupted = True
            for worker in running.values():
                failures.setdefault(worker.problem.name, ProblemFailure(
                    problem=worker.problem, phase="interrupted",
                    error_type="KeyboardInterrupt",
                    message=("interrupted by user"
                             + ("; last checkpoint kept"
                                if self.checkpoint_path is not None
                                else "")),
                    attempts=worker.attempt + 1))
        finally:
            for conn, worker in running.items():
                worker.process.kill()
                worker.process.join(timeout=30)
                try:
                    conn.close()
                except OSError:  # pragma: no cover - already closed
                    pass
            running.clear()

        # Graceful degradation: problems that kept dying in workers get one
        # in-process attempt (resuming their checkpoints, if any) -- slower,
        # but immune to pool-level pathologies.
        if not interrupted:
            for item in serial_queue:
                try:
                    result = _run_problem_task(
                        item.problem,
                        item.problem.effective_settings(self.settings),
                        self.column_cache_path,
                        checkpoint_path=self.checkpoint_path,
                        checkpoint_every=self.checkpoint_every,
                        resume=True)
                except KeyboardInterrupt:
                    interrupted = True
                    failures[item.problem.name] = ProblemFailure(
                        problem=item.problem, phase="interrupted",
                        error_type="KeyboardInterrupt",
                        message="interrupted during serial fallback",
                        attempts=item.attempt + 1, fell_back_serial=True)
                    break
                except Exception as error:
                    failures[item.problem.name] = ProblemFailure(
                        problem=item.problem, phase="exception",
                        error_type=type(error).__name__,
                        message=str(error), attempts=item.attempt + 1,
                        traceback=traceback_module.format_exc(),
                        fell_back_serial=True)
                else:
                    outcomes[item.problem.name] = result

        # Emit completion callbacks and the result mapping in problem
        # order, whatever order the workers actually finished in.
        results: Dict[str, CaffeineResult] = {}
        for index, problem in enumerate(self.problems):
            if problem.name in outcomes:
                results[problem.name] = outcomes[problem.name]
                self._fire("on_problem_end", problem, results[problem.name],
                           index, total)
            elif problem.name in failures \
                    and failures[problem.name].phase != "interrupted":
                self._fire("on_problem_error", problem,
                           failures[problem.name])
        ordered_failures = {problem.name: failures[problem.name]
                            for problem in self.problems
                            if problem.name in failures}
        return results, ordered_failures, interrupted

    # ------------------------------------------------------------------
    def _check_backends_survive_workers(self) -> None:
        """Fail fast when runtime-registered backends cannot reach workers.

        Backend registries are per-process: ``fork``-started workers (the
        Linux default) inherit the parent's runtime registrations, but
        ``spawn``-started ones import the registry fresh and only know the
        built-ins -- a custom backend name would die inside the pool with
        an opaque KeyError.  Raise a diagnosable error here instead.
        """
        from repro.core.registry import is_builtin_backend, \
            worker_start_method

        method = worker_start_method()
        if method == "fork":
            return
        for problem in self.problems:
            settings = problem.effective_settings(self.settings)
            for kind, name in (("column", settings.column_backend),
                               ("fit", settings.fit_backend),
                               ("pareto", settings.pareto_backend),
                               ("evaluation", settings.evaluation_backend)):
                if not is_builtin_backend(kind, name):
                    raise ValueError(
                        f"problem {problem.name!r} uses the runtime-"
                        f"registered {kind} backend {name!r}, but jobs="
                        f"{self.jobs} worker processes start via "
                        f"{method!r} and only know the built-in backends; "
                        f"run serially (jobs=1), switch to the 'fork' "
                        f"start method, or register the backend at import "
                        f"time of a module the workers import")

    def _generation_progress(self, problem: Problem):
        callbacks = self.callbacks
        if not callbacks:
            return None

        def progress(generation: int, stats: GenerationStats) -> None:
            for callback in callbacks:
                callback.on_generation(problem, generation, stats)

        return progress

    def _fire(self, hook: str, *args) -> None:
        for callback in self.callbacks:
            getattr(callback, hook)(*args)


def _run_problem_task(problem: Problem, settings: CaffeineSettings,
                      column_cache_path: Optional[str],
                      checkpoint_path: Optional[str] = None,
                      checkpoint_every: int = 1,
                      resume: bool = False) -> CaffeineResult:
    """One worker's whole job: warm-load, run, merge-save (picklable)."""
    cache = BasisColumnCache(settings.resolved_basis_cache_size())
    store = (ColumnCacheStore(column_cache_path)
             if column_cache_path is not None else None)
    engine = CaffeineEngine(problem.train, test=problem.test,
                            settings=settings, column_cache=cache)
    if store is not None:
        # Namespace-filtered, like the serial path: only this problem's
        # columns occupy LRU room (save() below still merges, never erases).
        store.load_into(cache, dataset_key=engine.evaluator.dataset_key)
    checkpoints = (RunCheckpointStore(checkpoint_path)
                   if checkpoint_path is not None else None)
    result = engine.run(checkpoint=checkpoints,
                        checkpoint_every=checkpoint_every,
                        checkpoint_slot=problem.name, resume=resume)
    if store is not None:
        store.save(cache)
    return result


def _worker_main(conn, problem: Problem, settings: CaffeineSettings,
                 column_cache_path: Optional[str],
                 checkpoint_path: Optional[str], checkpoint_every: int,
                 resume: bool, attempt: int) -> None:
    """Entry point of one parallel worker process.

    Reports exactly one message on ``conn``: ``("result", CaffeineResult)``
    or ``("error", type_name, message, traceback)``.  A worker that dies
    before reporting (kill, segfault, injected SIGKILL) is detected by the
    orchestrator through the pipe's EOF plus the process exitcode.
    """
    try:
        if settings.fault_injection:
            # Arm before the fault points below -- engine construction
            # (which also arms) happens after them.
            faults.install_from_string(settings.fault_injection)
        faults.raise_point("worker.exception", problem=problem.name,
                           attempt=attempt)
        faults.kill_point("worker.kill", problem=problem.name,
                          attempt=attempt)
        faults.stall_point("problem.stall", problem=problem.name,
                           attempt=attempt)
        result = _run_problem_task(problem, settings, column_cache_path,
                                   checkpoint_path=checkpoint_path,
                                   checkpoint_every=checkpoint_every,
                                   resume=resume)
        conn.send(("result", result))
    except BaseException as error:
        try:
            conn.send(("error", type(error).__name__, str(error),
                       traceback_module.format_exc()))
        except Exception:  # pragma: no cover - pipe already gone
            pass
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
