"""Weight terminals (``W`` nodes) of the CAFFEINE grammar.

The grammar stores a real value in ``[-2B, +2B]`` at each ``W`` node; during
interpretation the stored value is mapped onto
``[-1e+B, -1e-B] U {0} U [1e-B, 1e+B]`` so that an evolved parameter can take
very small or very large magnitudes of either sign while mutation operates on
a compact, well-scaled representation.  Zero-mean Cauchy mutation (Yao,
Liu & Lin 1999) perturbs the stored value; its heavy tails occasionally make
large jumps, which is what lets the search escape poor local parameter
choices.
"""

from __future__ import annotations

import dataclasses
import math
import numpy as np

__all__ = ["Weight", "transform_stored_value", "cauchy_mutated_value"]

#: Default exponent bound B of the paper ("B is user-set, e.g. 10").
DEFAULT_EXPONENT_BOUND = 10.0


def transform_stored_value(stored: float, exponent_bound: float = DEFAULT_EXPONENT_BOUND
                           ) -> float:
    """Map a stored value in ``[-2B, 2B]`` to its interpreted magnitude.

    * ``stored == 0``      -> ``0.0``
    * ``stored in (0, 2B]`` -> ``+10**(stored - B)``  (magnitudes 1e-B .. 1e+B)
    * ``stored in [-2B, 0)``-> ``-10**(-stored - B)`` (same magnitudes, negative)

    The clip is branch-based rather than ``np.clip`` purely for speed: the
    transform runs once per weight per tree evaluation (and once per weight
    in the compiled backend's skeleton walks), and the NumPy scalar path is
    ~13x slower.  The branches replicate ``np.clip`` bit for bit, NaN
    passthrough and signed zeros included (property-tested).
    """
    bound = float(exponent_bound)
    if bound <= 0:
        raise ValueError("exponent_bound must be positive")
    stored = float(stored)
    upper = 2.0 * bound
    if stored > upper:
        clipped = upper
    elif stored < -upper:
        clipped = -upper
    else:
        clipped = stored  # NaN lands here, exactly like np.clip
    if clipped == 0.0:
        return 0.0
    if clipped > 0:
        return 10.0 ** (clipped - bound)
    return -(10.0 ** (-clipped - bound))


def inverse_transform_value(value: float,
                            exponent_bound: float = DEFAULT_EXPONENT_BOUND) -> float:
    """Stored value that interprets to ``value`` (inverse of the transform)."""
    bound = float(exponent_bound)
    if value == 0.0:
        return 0.0
    magnitude = min(max(abs(value), 10.0 ** (-bound)), 10.0 ** bound)
    stored = math.log10(magnitude) + bound
    if stored == 0.0:
        # The smallest representable magnitude (1e-B) lands exactly on the
        # stored value 0.0, which the transform reserves for the value 0;
        # nudge it into the positive branch so the round trip stays exact.
        stored = math.nextafter(0.0, 1.0)
    return stored if value > 0 else -stored


def cauchy_mutated_value(stored: float, scale: float,
                         rng: np.random.Generator,
                         exponent_bound: float = DEFAULT_EXPONENT_BOUND) -> float:
    """Zero-mean Cauchy mutation of a stored value, clipped to ``[-2B, 2B]``."""
    if scale <= 0:
        raise ValueError("mutation scale must be positive")
    perturbed = stored + scale * rng.standard_cauchy()
    return float(np.clip(perturbed, -2.0 * exponent_bound, 2.0 * exponent_bound))


@dataclasses.dataclass
class Weight:
    """A ``W`` grammar terminal: an evolvable real parameter.

    ``stored`` lives in ``[-2B, 2B]``; :attr:`value` is the interpreted
    parameter used when evaluating expressions.
    """

    stored: float
    exponent_bound: float = DEFAULT_EXPONENT_BOUND

    def __post_init__(self) -> None:
        if self.exponent_bound <= 0:
            raise ValueError("exponent_bound must be positive")
        self.stored = float(np.clip(self.stored, -2.0 * self.exponent_bound,
                                    2.0 * self.exponent_bound))

    # ------------------------------------------------------------------
    @property
    def value(self) -> float:
        """Interpreted parameter value."""
        return transform_stored_value(self.stored, self.exponent_bound)

    @classmethod
    def from_value(cls, value: float,
                   exponent_bound: float = DEFAULT_EXPONENT_BOUND) -> "Weight":
        """Build a weight whose interpreted value is (approximately) ``value``."""
        return cls(stored=inverse_transform_value(value, exponent_bound),
                   exponent_bound=exponent_bound)

    @classmethod
    def random(cls, rng: np.random.Generator,
               exponent_bound: float = DEFAULT_EXPONENT_BOUND) -> "Weight":
        """A uniformly random stored value in ``[-2B, 2B]``."""
        stored = rng.uniform(-2.0 * exponent_bound, 2.0 * exponent_bound)
        return cls(stored=stored, exponent_bound=exponent_bound)

    # ------------------------------------------------------------------
    def mutated(self, rng: np.random.Generator, scale: float = 1.0) -> "Weight":
        """Return a Cauchy-mutated copy (the original is left untouched)."""
        return Weight(stored=cauchy_mutated_value(self.stored, scale, rng,
                                                  self.exponent_bound),
                      exponent_bound=self.exponent_bound)

    def copy(self) -> "Weight":
        return Weight(stored=self.stored, exponent_bound=self.exponent_bound)

    # ------------------------------------------------------------------
    def render(self, precision: int = 4) -> str:
        """Human-readable rendering of the interpreted value."""
        return format_number(self.value, precision)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Weight(value={self.value:.4g})"


def format_number(value: float, precision: int = 4) -> str:
    """Format a coefficient the way the paper's tables do.

    Plain decimal notation for moderate magnitudes, scientific notation
    (``2.36e+07`` style) otherwise.
    """
    if value == 0.0:
        return "0"
    magnitude = abs(value)
    if 1e-3 <= magnitude < 1e5:
        text = f"{value:.{precision}g}"
    else:
        text = f"{value:.{max(precision - 2, 2)}e}"
    return text
