"""Named, introspectable registries for the engine's pluggable backends.

Every performance-relevant subsystem of the engine is selected by a string
field on :class:`~repro.core.settings.CaffeineSettings` -- how basis columns
are computed on a cache miss (``column_backend``), how linear weights are
fitted (``fit_backend``), which Pareto/NSGA-II kernels run
(``pareto_backend``) and where uncached column work executes
(``evaluation_backend``).  Before this module those strings were matched
against literals scattered through ``settings.py``, ``evaluation.py`` and
``pareto.py``, so adding a backend (a numexpr/GPU column evaluator, a
stacked-GEMM fit path, a distributed executor) meant editing the engine.

Now each *kind* of backend has one :class:`BackendRegistry` mapping names to
factories.  Settings validation accepts exactly the registered names, and
the dispatch sites resolve through :func:`get_backend` -- so an external
package (or a test) can do::

    from repro.core.registry import register_backend

    register_backend("pareto", "my-kernels", lambda: MyParetoKernels())
    settings = CaffeineSettings(pareto_backend="my-kernels")

and the engine will run with it, no core edits required.

Factory contracts by kind (what ``factory(...)`` must accept and return):

``"column"``
    ``factory(X, settings) -> backend`` where ``backend`` exposes
    ``basis_key(basis) -> hashable`` (the exact evaluation-recipe identity
    used as the cache key), ``evaluate(basis, key) -> ndarray`` (compute one
    column given a precomputed key) and ``column(basis) -> ndarray`` (key +
    evaluate in one call, used by worker processes).  An optional
    ``compiler`` attribute exposes a :class:`~repro.core.compile.TreeCompiler`
    for introspection.  A backend that cannot bit-for-bit reproduce the
    interpreter must say so in its docs -- the engine's equivalence
    guarantees only cover backends that can.

``"fit"``
    ``factory(evaluator) -> backend`` where ``backend`` exposes
    ``prepare_batch(pending)`` (batch-precompute whatever the coming
    evaluations need; may be a no-op) and ``evaluate(individual,
    basis_keys)`` (set ``fit``/``error``/``complexity``/``normalization``
    on the individual in place).  ``evaluator`` is the calling
    :class:`~repro.core.evaluation.PopulationEvaluator`; its caches, data
    and settings are the backend's toolbox.

``"pareto"``
    ``factory() -> backend`` where ``backend`` exposes
    ``nondominated_indices(vectors)``, ``fast_nondominated_sort(vectors)``
    and ``crowding_distances(vectors)`` over sequences of objective tuples,
    with the canonical ascending-front ordering documented in
    :mod:`repro.core.pareto`.

``"evaluation"``
    ``factory(workers, X, column_backend) -> executor or None`` where the
    executor exposes ``map(fn, iterable)`` (order-preserving) and
    ``shutdown(wait=..., cancel_futures=...)``; ``None`` means run on the
    calling thread.  ``column_backend`` is the configured column-backend
    *name* so process-pool workers can rebuild their per-process state.

``"residual"``
    ``factory(y, normalization) -> backend`` where ``backend`` exposes
    ``error(fit, basis_matrix) -> float`` (one individual's
    ``relative_rmse`` against ``y``) and ``errors(fits, basis_matrices) ->
    list[float]`` (a same-width group of individuals, scored together).
    Both built-ins -- ``"scalar"`` (per-individual reference) and
    ``"batched"`` (default; one stacked prediction/residual pass per basis
    width) -- are bit-for-bit identical by the canonical-accumulation
    argument in :mod:`repro.regression.least_squares`; a registered backend
    that cannot reproduce them exactly must say so in its docs.

The built-in names are registered at import time with lazily-importing
factories, so the registries are fully populated as soon as this module
loads (settings validation may run before the heavyweight modules import).

One caveat for *runtime* registrations: registries are per-process state.
Worker processes created with the ``fork`` start method (the Linux
default) inherit the parent's registrations, but ``spawn``-started workers
(macOS/Windows defaults) import this module fresh and only know the
built-ins -- so a custom backend used together with
``Session(jobs > 1)`` or ``evaluation_backend="process"`` must be
registered at import time of a module the worker also imports (or run
under ``fork``).  :class:`~repro.core.session.Session` fails fast on this
combination; :func:`is_builtin_backend` is the check it uses.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Iterator, Tuple

__all__ = [
    "BACKEND_KINDS",
    "BackendRegistry",
    "available_backends",
    "backend_names",
    "backend_registry",
    "get_backend",
    "is_builtin_backend",
    "register_backend",
    "unregister_backend",
    "worker_start_method",
]


def worker_start_method() -> str:
    """The multiprocessing start method new worker pools will use.

    Reads the configured method *without pinning the default* (a bare
    ``multiprocessing.get_start_method()`` -- and even
    ``get_context().get_start_method()`` -- set it as a side effect,
    making a later ``set_start_method()`` by the embedding application
    raise).  Shared by every site that must decide whether runtime backend
    registrations survive into worker processes ("fork" inherits them;
    "spawn"/"forkserver" re-import this module fresh).
    """
    import multiprocessing

    method = multiprocessing.get_start_method(allow_none=True)
    if method is None:
        # Documented: the first supported method is the platform default.
        method = multiprocessing.get_all_start_methods()[0]
    return method

#: The backend kinds the engine dispatches on (one registry per kind).
BACKEND_KINDS = ("column", "fit", "pareto", "evaluation", "residual")


class BackendRegistry:
    """One named-factory table for one kind of backend.

    Registration and lookup are thread-safe; factories themselves are
    stored as given and called at the dispatch sites (see the per-kind
    contracts in the module docstring).
    """

    def __init__(self, kind: str) -> None:
        self.kind = str(kind)
        self._factories: Dict[str, Callable] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def register(self, name: str, factory: Callable, *,
                 replace: bool = False) -> None:
        """Register ``factory`` under ``name``.

        Re-registering an existing name raises unless ``replace=True`` --
        silently shadowing a built-in is how bit-for-bit guarantees die.
        """
        if not isinstance(name, str) or not name:
            raise ValueError("backend name must be a non-empty string")
        if not callable(factory):
            raise TypeError(f"backend factory for {name!r} must be callable")
        with self._lock:
            if name in self._factories and not replace:
                raise ValueError(
                    f"{self.kind} backend {name!r} is already registered "
                    f"(pass replace=True to shadow it deliberately)")
            self._factories[name] = factory

    def unregister(self, name: str) -> Callable:
        """Remove and return the factory registered under ``name``."""
        with self._lock:
            try:
                return self._factories.pop(name)
            except KeyError:
                raise KeyError(
                    f"no {self.kind} backend named {name!r} "
                    f"(registered: {self.names()})") from None

    def get(self, name: str) -> Callable:
        """The factory registered under ``name`` (KeyError lists options)."""
        try:
            return self._factories[name]
        except KeyError:
            raise KeyError(
                f"no {self.kind} backend named {name!r} "
                f"(registered: {self.names()})") from None

    # ------------------------------------------------------------------
    def names(self) -> Tuple[str, ...]:
        """Registered backend names, sorted."""
        return tuple(sorted(self._factories))

    def __contains__(self, name: object) -> bool:
        return name in self._factories

    def __len__(self) -> int:
        return len(self._factories)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BackendRegistry({self.kind!r}, names={list(self.names())})"


_REGISTRIES: Dict[str, BackendRegistry] = {
    kind: BackendRegistry(kind) for kind in BACKEND_KINDS
}


def backend_registry(kind: str) -> BackendRegistry:
    """The registry for one backend kind (KeyError on unknown kinds)."""
    try:
        return _REGISTRIES[kind]
    except KeyError:
        raise KeyError(
            f"unknown backend kind {kind!r} (kinds: {BACKEND_KINDS})") from None


def register_backend(kind: str, name: str, factory: Callable, *,
                     replace: bool = False) -> None:
    """Register ``factory`` as the ``kind`` backend named ``name``."""
    backend_registry(kind).register(name, factory, replace=replace)


def unregister_backend(kind: str, name: str) -> Callable:
    """Remove (and return) a registered backend factory."""
    return backend_registry(kind).unregister(name)


def get_backend(kind: str, name: str) -> Callable:
    """The factory for the ``kind`` backend named ``name``."""
    return backend_registry(kind).get(name)


def backend_names(kind: str) -> Tuple[str, ...]:
    """Registered names for one kind (what settings validation accepts)."""
    return backend_registry(kind).names()


def available_backends() -> Dict[str, Tuple[str, ...]]:
    """Every registered backend name, keyed by kind (introspection aid)."""
    return {kind: _REGISTRIES[kind].names() for kind in BACKEND_KINDS}


# ----------------------------------------------------------------------
# Built-in backends.  Factories import lazily: the registries must be fully
# populated the moment this module loads (settings validation runs early),
# but importing the implementation modules here would be circular.
# ----------------------------------------------------------------------
def _interp_column_factory(X, settings):
    from repro.core.evaluation import InterpColumnBackend

    return InterpColumnBackend(X, settings)


def _compiled_column_factory(X, settings):
    from repro.core.evaluation import CompiledColumnBackend

    return CompiledColumnBackend(X, settings)


def _direct_fit_factory(evaluator):
    from repro.core.evaluation import DirectFitBackend

    return DirectFitBackend(evaluator)


def _gram_fit_factory(evaluator):
    from repro.core.evaluation import DirectFitBackend, GramFitBackend

    # A zero pool size disables the pool, which implies direct fits -- the
    # documented semantics of CaffeineSettings.gram_pool_size.
    if evaluator.settings.gram_pool_size <= 0:
        return DirectFitBackend(evaluator)
    return GramFitBackend(evaluator)


def _numpy_pareto_factory():
    from repro.core.pareto import NUMPY_PARETO_BACKEND

    return NUMPY_PARETO_BACKEND


def _python_pareto_factory():
    from repro.core.pareto import PYTHON_PARETO_BACKEND

    return PYTHON_PARETO_BACKEND


def _serial_executor_factory(workers, X, column_backend):
    return None


def _thread_executor_factory(workers, X, column_backend):
    import concurrent.futures

    return concurrent.futures.ThreadPoolExecutor(max_workers=workers)


def _process_executor_factory(workers, X, column_backend):
    import concurrent.futures

    from repro.core.evaluation import _init_worker

    # Workers rebuild the column backend by *name*; under a non-fork start
    # method they import this registry fresh, so a runtime-registered (or
    # replace=True-shadowed) name would die as an opaque KeyError inside
    # the pool.  Fail fast with the cause instead.
    method = worker_start_method()
    if method != "fork" and not is_builtin_backend("column", column_backend):
        raise ValueError(
            f"evaluation_backend='process' worker processes start via "
            f"{method!r} and resolve column_backend={column_backend!r} "
            f"against a freshly imported registry that only knows the "
            f"built-in bindings; use a thread/serial evaluation backend, "
            f"switch to the 'fork' start method, or register the backend "
            f"at import time of a module the workers import")
    # X is shipped once per worker via the initializer; tasks then carry
    # only the basis trees.
    return concurrent.futures.ProcessPoolExecutor(
        max_workers=workers, initializer=_init_worker,
        initargs=(X, column_backend))


def _scalar_residual_factory(y, normalization):
    from repro.core.evaluation import ScalarResidualBackend

    return ScalarResidualBackend(y, normalization)


def _batched_residual_factory(y, normalization):
    from repro.core.evaluation import BatchedResidualBackend

    return BatchedResidualBackend(y, normalization)


_REGISTRIES["column"].register("interp", _interp_column_factory)
_REGISTRIES["column"].register("compiled", _compiled_column_factory)
_REGISTRIES["fit"].register("direct", _direct_fit_factory)
_REGISTRIES["fit"].register("gram", _gram_fit_factory)
_REGISTRIES["pareto"].register("numpy", _numpy_pareto_factory)
_REGISTRIES["pareto"].register("python", _python_pareto_factory)
_REGISTRIES["evaluation"].register("serial", _serial_executor_factory)
_REGISTRIES["evaluation"].register("thread", _thread_executor_factory)
_REGISTRIES["evaluation"].register("process", _process_executor_factory)
_REGISTRIES["residual"].register("scalar", _scalar_residual_factory)
_REGISTRIES["residual"].register("batched", _batched_residual_factory)

#: the factories this module registered itself -- the only bindings a
#: ``spawn``-started worker process is guaranteed to reproduce (see the
#: module docstring's per-process caveat)
_BUILTIN_FACTORIES = {kind: dict(_REGISTRIES[kind]._factories)
                      for kind in BACKEND_KINDS}


def is_builtin_backend(kind: str, name: str) -> bool:
    """Whether ``name`` currently resolves to this module's own registration.

    False for caller-registered names *and* for built-in names shadowed via
    ``register_backend(..., replace=True)`` -- in both cases a fresh worker
    process would resolve the name differently than this process does.
    """
    if kind not in _BUILTIN_FACTORIES:
        raise KeyError(
            f"unknown backend kind {kind!r} (kinds: {BACKEND_KINDS})")
    original = _BUILTIN_FACTORIES[kind].get(name)
    if original is None:
        return False
    try:
        return _REGISTRIES[kind].get(name) is original
    except KeyError:  # a built-in that was unregistered outright
        return False
