"""The complexity objective (Equation 1 of the paper).

For a model ``f`` with ``M`` basis functions the complexity is::

    complexity(f) = sum_j ( wb + nnodes(j) + sum_k vccost(vc_{k,j}) )

where ``wb`` is a constant minimum cost per basis function (paper: 10),
``nnodes(j)`` counts the tree nodes of basis function ``j``, and every
variable combo ``vc`` adds ``vccost(vc) = wvc * sum_dim |vc(dim)|``
(paper: ``wvc = 0.25``).  The constant intercept contributes nothing, so a
constant-only model has complexity 0 -- the left end of every trade-off curve
in Figure 3.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.expression import ProductTerm
from repro.core.settings import CaffeineSettings
from repro.core.variable_combo import VariableCombo

__all__ = ["vc_cost", "basis_function_complexity", "model_complexity"]


def vc_cost(vc: VariableCombo, vc_exponent_cost: float) -> float:
    """Cost of one variable combo: ``wvc * sum_dim |exponent(dim)|``."""
    if vc_exponent_cost < 0:
        raise ValueError("vc_exponent_cost must be non-negative")
    return vc_exponent_cost * vc.total_order


def basis_function_complexity(basis: ProductTerm, basis_function_cost: float,
                              vc_exponent_cost: float) -> float:
    """Complexity contribution of a single basis function."""
    if basis_function_cost < 0:
        raise ValueError("basis_function_cost must be non-negative")
    total = basis_function_cost + basis.n_nodes
    for vc in basis.variable_combos():
        total += vc_cost(vc, vc_exponent_cost)
    return float(total)


def model_complexity(bases: Sequence[ProductTerm],
                     settings: CaffeineSettings) -> float:
    """Complexity of a whole model (sum over its basis functions)."""
    return float(sum(
        basis_function_complexity(basis, settings.basis_function_cost,
                                  settings.vc_exponent_cost)
        for basis in bases))
