"""Pareto-dominance utilities (all objectives minimized).

Shared by the NSGA-II selection machinery and by the post-processing steps
that filter models down to the trade-off of training error vs. complexity and
later of *testing* error vs. complexity (the rightmost column of the paper's
Figure 3).

Two interchangeable backends implement every kernel:

* ``"numpy"`` (the default) -- broadcasting implementations that build the
  pairwise domination matrix in vectorized chunks; this is what lets the
  engine scale ``population_size`` without the ranking step going
  quadratic-in-pure-Python (Deb's sort is O(N^2 M) either way, but the
  constant drops by two orders of magnitude);
* ``"python"`` -- the original pure-Python reference, kept as the oracle for
  the property-based equivalence tests.

Both backends return *identical* results: fronts are canonicalized to
ascending index order (a front is a set; ascending order is the
deterministic choice), crowding distances are computed with the same
floating-point operations in the same order, and ``inf`` objectives (the
engine's marker for infeasible individuals) follow IEEE comparison semantics
in both.  NaN objectives are not supported -- the engine never produces them
(errors are finite or exactly ``inf``), and the two backends' sorts would
disagree on NaN placement.

The module-level default backend is ``"numpy"``; pass ``backend=`` to pin a
specific one (the engine threads ``CaffeineSettings.pareto_backend``
through).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

from repro.core.registry import backend_names, get_backend

__all__ = ["PARETO_BACKENDS", "dominates", "nondominated_indices",
           "nondominated_filter", "fast_nondominated_sort",
           "crowding_distances",
           "NUMPY_PARETO_BACKEND", "PYTHON_PARETO_BACKEND"]

T = TypeVar("T")
Objectives = Tuple[float, ...]

#: The built-in values of the ``backend`` argument.  The authoritative set
#: is the ``"pareto"`` registry in :mod:`repro.core.registry` -- registered
#: third-party kernels are accepted everywhere this module takes a name.
PARETO_BACKENDS = ("numpy", "python")

_DEFAULT_BACKEND = "numpy"


def _resolve_backend(backend: Optional[str]):
    """The backend *object* for a name (default: numpy kernels).

    Names resolve through the ``"pareto"`` backend registry, so kernels
    registered by callers dispatch exactly like the built-ins.
    """
    name = _DEFAULT_BACKEND if backend is None else backend
    try:
        factory = get_backend("pareto", name)
    except KeyError:
        raise ValueError(
            f"backend must be one of {backend_names('pareto')}, "
            f"got {name!r}") from None
    return factory()


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when objective vector ``a`` Pareto-dominates ``b`` (minimization)."""
    if len(a) != len(b):
        raise ValueError("objective vectors must have the same length")
    at_least_as_good = all(x <= y for x, y in zip(a, b, strict=True))
    strictly_better = any(x < y for x, y in zip(a, b, strict=True))
    return at_least_as_good and strictly_better


def _objective_array(objective_vectors: Sequence[Sequence[float]]) -> np.ndarray:
    """The vectors as a float ``(n, m)`` array (raises on ragged input)."""
    array = np.asarray([tuple(v) for v in objective_vectors], dtype=float)
    if array.ndim == 1:
        # Zero-length objective vectors: asarray of empty tuples collapses.
        array = array.reshape(len(objective_vectors), 0)
    return array


def _domination_matrix(vectors: np.ndarray) -> np.ndarray:
    """Boolean ``D`` with ``D[i, j]`` true when ``i`` dominates ``j``.

    Built in row chunks so the broadcast temporaries stay bounded (a few MB)
    for the multi-thousand-point populations the benchmarks exercise.
    """
    n, n_objectives = vectors.shape
    matrix = np.empty((n, n), dtype=bool)
    chunk = max(1, 4_000_000 // max(1, n * max(1, n_objectives)))
    for start in range(0, n, chunk):
        block = vectors[start:start + chunk, None, :]
        not_worse = (block <= vectors[None, :, :]).all(axis=-1)
        strictly_better = (block < vectors[None, :, :]).any(axis=-1)
        matrix[start:start + chunk] = not_worse & strictly_better
    return matrix


# ----------------------------------------------------------------------
# nondominated indices / filter
# ----------------------------------------------------------------------
def _nondominated_indices_python(
        objective_vectors: Sequence[Sequence[float]]) -> List[int]:
    n = len(objective_vectors)
    result = []
    for i in range(n):
        dominated = False
        for j in range(n):
            if i != j and dominates(objective_vectors[j], objective_vectors[i]):
                dominated = True
                break
        if not dominated:
            result.append(i)
    return result


def _nondominated_indices_numpy(
        objective_vectors: Sequence[Sequence[float]]) -> List[int]:
    if len(objective_vectors) == 0:
        return []
    vectors = _objective_array(objective_vectors)
    if vectors.shape[1] == 2:
        return _nondominated_indices_two_objective(vectors)
    matrix = _domination_matrix(vectors)
    return [int(i) for i in np.flatnonzero(matrix.sum(axis=0) == 0)]


def _nondominated_indices_two_objective(vectors: np.ndarray) -> List[int]:
    """O(n log n) sweep for the two-objective (error, complexity) case.

    After a lexicographic sort by ``(o1, o2)``, every possible dominator of
    a point precedes it, so one pass tracking the running minimum of ``o2``
    (and, among points attaining it, the minimum ``o1`` -- needed to tell a
    duplicate point, which does not dominate, from a strictly better one)
    decides domination for each point in O(1).
    """
    o1 = vectors[:, 0]
    o2 = vectors[:, 1]
    order = np.lexsort((o2, o1))
    min_o2 = np.inf
    min_o2_o1 = np.inf
    keep: List[int] = []
    for idx in order:
        x = float(o1[idx])
        y = float(o2[idx])
        dominated = min_o2 < y or (min_o2 == y and min_o2_o1 < x)
        if not dominated:
            keep.append(int(idx))
        if y < min_o2:
            min_o2 = y
            min_o2_o1 = x
        elif y == min_o2 and x < min_o2_o1:
            min_o2_o1 = x
    keep.sort()
    return keep


def nondominated_indices(objective_vectors: Sequence[Sequence[float]],
                         backend: Optional[str] = None) -> List[int]:
    """Indices of the nondominated vectors (the Pareto front), ascending."""
    return _resolve_backend(backend).nondominated_indices(objective_vectors)


def nondominated_filter(items: Sequence[T],
                        key: Callable[[T], Sequence[float]],
                        backend: Optional[str] = None) -> List[T]:
    """Return the items whose ``key(item)`` objective vectors are nondominated."""
    vectors = [tuple(key(item)) for item in items]
    keep = set(nondominated_indices(vectors, backend=backend))
    return [item for index, item in enumerate(items) if index in keep]


# ----------------------------------------------------------------------
# fast nondominated sort
# ----------------------------------------------------------------------
def _fast_nondominated_sort_python(
        objective_vectors: Sequence[Sequence[float]]) -> List[List[int]]:
    n = len(objective_vectors)
    dominated_by: List[List[int]] = [[] for _ in range(n)]
    domination_count = [0] * n
    fronts: List[List[int]] = [[]]

    for i in range(n):
        for j in range(i + 1, n):
            if dominates(objective_vectors[i], objective_vectors[j]):
                dominated_by[i].append(j)
                domination_count[j] += 1
            elif dominates(objective_vectors[j], objective_vectors[i]):
                dominated_by[j].append(i)
                domination_count[i] += 1
        if domination_count[i] == 0:
            fronts[0].append(i)

    current = 0
    while fronts[current]:
        next_front: List[int] = []
        for i in fronts[current]:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    next_front.append(j)
        # Canonical ascending order (fronts are sets; the discovery order of
        # the peeling loop is an implementation accident the vectorized
        # backend should not have to replicate).
        next_front.sort()
        current += 1
        fronts.append(next_front)
    fronts.pop()  # last front is always empty
    return fronts


def _fast_nondominated_sort_two_objective(
        vectors: np.ndarray) -> List[List[int]]:
    """O(n log n) full front assignment for the two-objective case.

    Points are processed in lexicographic ``(o1, o2)`` order, so every
    dominator of a point is already assigned when the point is reached.  A
    front dominates the current point iff the front's minimum ``o2`` beats
    the point's (or ties it with a strictly smaller ``o1`` -- the duplicate
    vs. strictly-better distinction); because every front-``f+1`` member is
    dominated by a front-``f`` member, the predicate is monotone in the
    front index and the point's front is found by binary search.  Matches
    the peeling implementation exactly: same membership, and fronts are
    emitted as ascending index lists.
    """
    o1 = vectors[:, 0]
    o2 = vectors[:, 1]
    order = np.lexsort((o2, o1))
    assignment = np.empty(vectors.shape[0], dtype=np.intp)
    front_min_o2: List[float] = []
    front_min_o2_o1: List[float] = []
    for idx in order:
        x = float(o1[idx])
        y = float(o2[idx])
        low, high = 0, len(front_min_o2)
        while low < high:
            mid = (low + high) // 2
            m2 = front_min_o2[mid]
            if m2 < y or (m2 == y and front_min_o2_o1[mid] < x):
                low = mid + 1  # front ``mid`` dominates the point
            else:
                high = mid
        assignment[idx] = low
        if low == len(front_min_o2):
            front_min_o2.append(y)
            front_min_o2_o1.append(x)
        elif y < front_min_o2[low]:
            front_min_o2[low] = y
            front_min_o2_o1[low] = x
        elif y == front_min_o2[low] and x < front_min_o2_o1[low]:
            front_min_o2_o1[low] = x
    fronts: List[List[int]] = [[] for _ in range(len(front_min_o2))]
    for i, f in enumerate(assignment):
        fronts[f].append(int(i))
    return fronts


def _fast_nondominated_sort_numpy(
        objective_vectors: Sequence[Sequence[float]]) -> List[List[int]]:
    if len(objective_vectors) == 0:
        return []
    vectors = _objective_array(objective_vectors)
    n = vectors.shape[0]
    if vectors.shape[1] == 2:
        return _fast_nondominated_sort_two_objective(vectors)
    matrix = _domination_matrix(vectors)
    counts = matrix.sum(axis=0).astype(np.int64)
    unassigned = np.ones(n, dtype=bool)
    fronts: List[List[int]] = []
    while True:
        front = np.flatnonzero(unassigned & (counts == 0))
        if front.size == 0:
            break
        fronts.append([int(i) for i in front])
        unassigned[front] = False
        counts -= matrix[front].sum(axis=0)
    return fronts


def fast_nondominated_sort(objective_vectors: Sequence[Sequence[float]],
                           backend: Optional[str] = None) -> List[List[int]]:
    """Deb's fast nondominated sort: list of fronts (ascending index lists).

    Front 0 is the Pareto front; each subsequent front is nondominated once
    all previous fronts are removed.
    """
    return _resolve_backend(backend).fast_nondominated_sort(objective_vectors)


# ----------------------------------------------------------------------
# crowding distances
# ----------------------------------------------------------------------
def _crowding_distances_python(
        objective_vectors: Sequence[Sequence[float]]) -> List[float]:
    n = len(objective_vectors)
    if n == 0:
        return []
    n_objectives = len(objective_vectors[0])
    distances = [0.0] * n
    for m in range(n_objectives):
        order = sorted(range(n), key=lambda i, m=m: objective_vectors[i][m])
        lowest = objective_vectors[order[0]][m]
        highest = objective_vectors[order[-1]][m]
        distances[order[0]] = float("inf")
        distances[order[-1]] = float("inf")
        span = highest - lowest
        if span <= 0 or not (span < float("inf")):
            continue
        for position in range(1, n - 1):
            previous_value = objective_vectors[order[position - 1]][m]
            next_value = objective_vectors[order[position + 1]][m]
            distances[order[position]] += (next_value - previous_value) / span
    return distances


def _crowding_distances_numpy(
        objective_vectors: Sequence[Sequence[float]]) -> List[float]:
    if len(objective_vectors) == 0:
        return []
    vectors = _objective_array(objective_vectors)
    n = vectors.shape[0]
    distances = np.zeros(n)
    for m in range(vectors.shape[1]):
        column = vectors[:, m]
        # kind="stable" ties resolve to original order, matching Python's
        # Timsort on the same keys (signed zeros compare equal in both).
        order = np.argsort(column, kind="stable")
        column_sorted = column[order]
        distances[order[0]] = np.inf
        distances[order[-1]] = np.inf
        span = float(column_sorted[-1]) - float(column_sorted[0])
        if span <= 0 or not (span < float("inf")):
            continue
        if n > 2:
            # Same per-element arithmetic as the reference: the gap between
            # each point's sorted neighbours, normalized by the span, summed
            # objective by objective in the same order.
            distances[order[1:-1]] += \
                (column_sorted[2:] - column_sorted[:-2]) / span
    return [float(d) for d in distances]


def crowding_distances(objective_vectors: Sequence[Sequence[float]],
                       backend: Optional[str] = None) -> List[float]:
    """Crowding distance of each vector within its (single) front."""
    return _resolve_backend(backend).crowding_distances(objective_vectors)


# ----------------------------------------------------------------------
# backend objects (the ``"pareto"`` registry's factory targets)
# ----------------------------------------------------------------------
class _ParetoKernels:
    """One coherent set of the three Pareto kernels.

    Instances are what the ``"pareto"`` backend registry's factories
    return; third-party backends implement the same three methods (with
    the canonical ascending-front ordering documented in this module) and
    register a factory under their own name.
    """

    def __init__(self, name: str, nondominated_indices: Callable,
                 fast_nondominated_sort: Callable,
                 crowding_distances: Callable) -> None:
        self.name = name
        self.nondominated_indices = nondominated_indices
        self.fast_nondominated_sort = fast_nondominated_sort
        self.crowding_distances = crowding_distances

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"_ParetoKernels({self.name!r})"


#: Vectorized kernels (the default backend).
NUMPY_PARETO_BACKEND = _ParetoKernels(
    "numpy", _nondominated_indices_numpy, _fast_nondominated_sort_numpy,
    _crowding_distances_numpy)
#: Pure-Python reference kernels (the property tests' oracle).
PYTHON_PARETO_BACKEND = _ParetoKernels(
    "python", _nondominated_indices_python, _fast_nondominated_sort_python,
    _crowding_distances_python)
