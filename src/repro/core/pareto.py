"""Pareto-dominance utilities (all objectives minimized).

Shared by the NSGA-II selection machinery and by the post-processing steps
that filter models down to the trade-off of training error vs. complexity and
later of *testing* error vs. complexity (the rightmost column of the paper's
Figure 3).
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple, TypeVar

__all__ = ["dominates", "nondominated_indices", "nondominated_filter",
           "fast_nondominated_sort", "crowding_distances"]

T = TypeVar("T")
Objectives = Tuple[float, ...]


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when objective vector ``a`` Pareto-dominates ``b`` (minimization)."""
    if len(a) != len(b):
        raise ValueError("objective vectors must have the same length")
    at_least_as_good = all(x <= y for x, y in zip(a, b))
    strictly_better = any(x < y for x, y in zip(a, b))
    return at_least_as_good and strictly_better


def nondominated_indices(objective_vectors: Sequence[Sequence[float]]) -> List[int]:
    """Indices of the nondominated vectors (the Pareto front)."""
    n = len(objective_vectors)
    result = []
    for i in range(n):
        dominated = False
        for j in range(n):
            if i != j and dominates(objective_vectors[j], objective_vectors[i]):
                dominated = True
                break
        if not dominated:
            result.append(i)
    return result


def nondominated_filter(items: Sequence[T],
                        key: Callable[[T], Sequence[float]]) -> List[T]:
    """Return the items whose ``key(item)`` objective vectors are nondominated."""
    vectors = [tuple(key(item)) for item in items]
    keep = set(nondominated_indices(vectors))
    return [item for index, item in enumerate(items) if index in keep]


def fast_nondominated_sort(objective_vectors: Sequence[Sequence[float]]
                           ) -> List[List[int]]:
    """Deb's fast nondominated sort: list of fronts (lists of indices).

    Front 0 is the Pareto front; each subsequent front is nondominated once
    all previous fronts are removed.
    """
    n = len(objective_vectors)
    dominated_by: List[List[int]] = [[] for _ in range(n)]
    domination_count = [0] * n
    fronts: List[List[int]] = [[]]

    for i in range(n):
        for j in range(i + 1, n):
            if dominates(objective_vectors[i], objective_vectors[j]):
                dominated_by[i].append(j)
                domination_count[j] += 1
            elif dominates(objective_vectors[j], objective_vectors[i]):
                dominated_by[j].append(i)
                domination_count[i] += 1
        if domination_count[i] == 0:
            fronts[0].append(i)

    current = 0
    while fronts[current]:
        next_front: List[int] = []
        for i in fronts[current]:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    next_front.append(j)
        current += 1
        fronts.append(next_front)
    fronts.pop()  # last front is always empty
    return fronts


def crowding_distances(objective_vectors: Sequence[Sequence[float]]) -> List[float]:
    """Crowding distance of each vector within its (single) front."""
    n = len(objective_vectors)
    if n == 0:
        return []
    n_objectives = len(objective_vectors[0])
    distances = [0.0] * n
    for m in range(n_objectives):
        order = sorted(range(n), key=lambda i: objective_vectors[i][m])
        lowest = objective_vectors[order[0]][m]
        highest = objective_vectors[order[-1]][m]
        distances[order[0]] = float("inf")
        distances[order[-1]] = float("inf")
        span = highest - lowest
        if span <= 0 or not (span < float("inf")):
            continue
        for position in range(1, n - 1):
            previous_value = objective_vectors[order[position - 1]][m]
            next_value = objective_vectors[order[position + 1]][m]
            distances[order[position]] += (next_value - previous_value) / span
    return distances
