"""Simplification After Generation (SAG), Section 5.1 of the paper.

After the evolutionary run, each model in the trade-off is post-processed:

1. **PRESS + forward regression.**  The Predicted REsidual Sums of Squares
   statistic approximates leave-one-out cross-validation of the linear
   parameters; forward regression re-selects the basis functions of the
   model, pruning those that harm predictive ability.  The surviving basis
   functions are refitted by least squares.
2. **Testing-error filtering.**  The trade-off models are evaluated on
   separate testing data and filtered down to the models that are also on
   the trade-off of *testing* error vs. complexity (the 5-10 models per
   performance of most interest in the paper).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.individual import Individual, evaluate_basis_matrix
from repro.core.settings import CaffeineSettings
from repro.regression.forward_regression import forward_select

__all__ = ["simplify_individual", "simplify_population"]


def _evaluate(individual: Individual, X: np.ndarray, y: np.ndarray,
              settings: CaffeineSettings, evaluator) -> Individual:
    """Evaluate through the shared cache when an evaluator is supplied."""
    if evaluator is not None:
        evaluator.evaluate_individual(individual)
    else:
        individual.evaluate(X, y, settings)
    return individual


def _check_evaluator_data(evaluator, X: np.ndarray, y: np.ndarray,
                          settings: CaffeineSettings) -> None:
    """An evaluator silently replaces ``(X, y)`` and supplies the complexity
    constants from its own settings; refuse one bound to different data or
    different settings rather than returning silently wrong numbers."""
    if evaluator is None:
        return
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if evaluator.X.shape != X.shape or evaluator.y.shape != y.shape \
            or not (evaluator.X is X or np.array_equal(evaluator.X, X)) \
            or not (evaluator.y is y or np.array_equal(evaluator.y, y)):
        raise ValueError(
            "evaluator is bound to a different dataset than the (X, y) "
            "passed to simplify; pass the matching evaluator or none")
    es = evaluator.settings
    if es is not settings and (
            es.basis_function_cost != settings.basis_function_cost
            or es.vc_exponent_cost != settings.vc_exponent_cost):
        raise ValueError(
            "evaluator settings disagree with the settings passed to "
            "simplify on the complexity constants; pass the matching "
            "evaluator or none")


def simplify_individual(individual: Individual, X: np.ndarray, y: np.ndarray,
                        settings: CaffeineSettings,
                        evaluator=None) -> Individual:
    """PRESS-driven forward-regression pruning of one individual's bases.

    Returns a new, re-evaluated individual containing only the basis
    functions selected by forward regression (possibly all of them, possibly
    none -- then the model reduces to a constant).  The original individual
    is not modified.

    ``evaluator`` may be a :class:`~repro.core.evaluation.PopulationEvaluator`
    bound to the same ``(X, y)``; basis matrices and re-evaluations then come
    from its column cache (bit-for-bit identical, just faster).  An evaluator
    bound to different data raises ``ValueError``.
    """
    _check_evaluator_data(evaluator, X, y, settings)
    if not individual.bases:
        simplified = individual.clone()
        return _evaluate(simplified, X, y, settings, evaluator)

    basis_matrix = (evaluator.basis_matrix(individual.bases)
                    if evaluator is not None
                    else evaluate_basis_matrix(individual.bases, X))
    selection = forward_select(
        basis_matrix, np.asarray(y, dtype=float),
        max_terms=settings.max_basis_functions,
        min_relative_improvement=settings.sag_min_relative_improvement,
    )
    if len(selection.selected_indices) == len(individual.bases):
        kept = individual.clone()
    else:
        kept = Individual(
            bases=[individual.bases[i].clone()
                   for i in sorted(selection.selected_indices)],
            generation_born=individual.generation_born,
        )
        if not kept.bases:
            # All bases pruned: fall back to the constant model (an Individual
            # must hold at least one tree, so keep the cheapest original one
            # but let the linear fit decide; if even that hurts, the fit's
            # coefficient will be ~0).
            cheapest = min(individual.bases, key=lambda b: b.n_nodes)
            kept = Individual(bases=[cheapest.clone()],
                              generation_born=individual.generation_born)
    _evaluate(kept, X, y, settings, evaluator)
    # Keep the simplification only if it does not destroy the training fit.
    if kept.error <= individual.error * (1.0 + 1e-9) or not individual.is_feasible:
        return kept
    if kept.complexity < individual.complexity and np.isfinite(kept.error):
        return kept
    original = individual.clone()
    return _evaluate(original, X, y, settings, evaluator)


def simplify_population(individuals: Sequence[Individual], X: np.ndarray,
                        y: np.ndarray, settings: CaffeineSettings,
                        evaluator=None) -> List[Individual]:
    """Apply :func:`simplify_individual` to a whole trade-off set.

    Passing the engine's :class:`~repro.core.evaluation.PopulationEvaluator`
    as ``evaluator`` reuses the basis-column cache built during evolution.
    """
    return [simplify_individual(individual, X, y, settings, evaluator=evaluator)
            for individual in individuals]
