"""Formatting of CAFFEINE results in the style of the paper's tables/figures.

These helpers produce plain-text renderings:

* :func:`tradeoff_table` -- the data behind Figure 3 (training error, testing
  error and number of bases vs. complexity);
* :func:`models_table` -- Table II style: one row per model with errors and
  the expression, ordered by decreasing error / increasing complexity;
* :func:`target_summary_row` -- Table I style: the expression of the chosen
  model for a performance goal;
* :func:`comparison_table` -- Figure 4 style: CAFFEINE vs posynomial errors.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

import numpy as np

from repro.core.model import SymbolicModel, TradeoffSet, batch_test_errors

__all__ = [
    "tradeoff_table",
    "models_table",
    "target_summary_row",
    "comparison_table",
    "rescore_models",
    "rescore_table",
    "format_percent",
]


def format_percent(fraction: float, precision: int = 2) -> str:
    """Render a fractional error as a percentage string (NaN -> ``"-"``)."""
    if not np.isfinite(fraction):
        return "-"
    return f"{100.0 * fraction:.{precision}f}"


def tradeoff_table(tradeoff: TradeoffSet, title: str = "") -> str:
    """Figure 3 data: complexity, train error, test error, #bases per model."""
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{'complexity':>12} {'train err %':>12} {'test err %':>12} {'n_bases':>8}")
    for model in tradeoff:
        lines.append(
            f"{model.complexity:12.2f} {format_percent(model.train_error):>12} "
            f"{format_percent(model.test_error):>12} {model.n_bases:8d}")
    return "\n".join(lines)


def models_table(tradeoff: TradeoffSet, title: str = "",
                 max_expression_length: Optional[int] = 120) -> str:
    """Table II style listing: errors plus the model expression.

    Models are printed in order of decreasing training error / increasing
    complexity, matching the paper's presentation for PM.
    """
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{'test err %':>11} {'train err %':>12}  expression")
    ordered = sorted(tradeoff, key=lambda m: (-m.train_error, m.complexity))
    for model in ordered:
        expression = model.expression()
        if max_expression_length is not None and len(expression) > max_expression_length:
            expression = expression[: max_expression_length - 3] + "..."
        lines.append(f"{format_percent(model.test_error):>11} "
                     f"{format_percent(model.train_error):>12}  {expression}")
    return "\n".join(lines)


def target_summary_row(model: SymbolicModel,
                       max_expression_length: Optional[int] = None) -> str:
    """Table I style row: performance name, errors, expression."""
    expression = model.expression()
    if max_expression_length is not None and len(expression) > max_expression_length:
        expression = expression[: max_expression_length - 3] + "..."
    return (f"{model.target_name:>8}  train {format_percent(model.train_error):>6}%  "
            f"test {format_percent(model.test_error):>6}%  {expression}")


def rescore_models(models: Sequence[SymbolicModel], X: np.ndarray,
                   y: np.ndarray, backend: str = "batched") -> List[float]:
    """Relative RMS errors of frozen models on a fresh dataset, batch-scored.

    Each model is scored against ``(X, y)`` normalized by its own stored
    training range (the paper's qtc convention), through the generation-
    batched residual engine: unique basis columns evaluate once across all
    models and same-width groups score in one stacked pass -- bit-for-bit
    the value ``q_tc(y, model.predict_transformed(X), model.normalization)``
    computes per model.  Models are grouped by normalization so mixed-target
    trade-offs score correctly.
    """
    errors: List[float] = [float("nan")] * len(models)
    by_normalization: dict = {}
    for index, model in enumerate(models):
        by_normalization.setdefault(float(model.normalization),
                                    []).append(index)
    for normalization, indices in by_normalization.items():
        scored = batch_test_errors([models[i] for i in indices], X, y,
                                   normalization, backend=backend)
        for i, value in zip(indices, scored, strict=True):
            errors[i] = value
    return errors


def rescore_table(tradeoff: TradeoffSet, X: np.ndarray, y: np.ndarray,
                  title: str = "", backend: str = "batched") -> str:
    """Scenario table: every trade-off model re-scored on a new dataset.

    Answers "how do the models I already have do on this fresh data?"
    without rerunning anything: one batched scoring pass
    (:func:`rescore_models`) per call, rendered next to the stored training
    and testing errors.
    """
    models = list(tradeoff)
    fresh = rescore_models(models, X, y, backend=backend)
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{'complexity':>12} {'train err %':>12} {'test err %':>12} "
                 f"{'fresh err %':>12}")
    for model, error in zip(models, fresh, strict=True):
        lines.append(
            f"{model.complexity:12.2f} {format_percent(model.train_error):>12} "
            f"{format_percent(model.test_error):>12} "
            f"{format_percent(error):>12}")
    return "\n".join(lines)


def comparison_table(rows: Sequence[Mapping[str, float]],
                     title: str = "") -> str:
    """Figure 4 style comparison of CAFFEINE vs posynomial errors.

    Each row mapping must provide ``target``, ``caffeine_train``,
    ``caffeine_test``, ``posynomial_train`` and ``posynomial_test`` (errors as
    fractions).
    """
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{'target':>8} {'caff train %':>13} {'caff test %':>12} "
                 f"{'posy train %':>13} {'posy test %':>12} {'test ratio':>11}")
    for row in rows:
        caffeine_test = float(row["caffeine_test"])
        posynomial_test = float(row["posynomial_test"])
        if caffeine_test > 0 and np.isfinite(caffeine_test) and np.isfinite(posynomial_test):
            ratio = posynomial_test / caffeine_test
            ratio_text = f"{ratio:.2f}x"
        else:
            ratio_text = "-"
        lines.append(
            f"{str(row['target']):>8} {format_percent(float(row['caffeine_train'])):>13} "
            f"{format_percent(caffeine_test):>12} "
            f"{format_percent(float(row['posynomial_train'])):>13} "
            f"{format_percent(posynomial_test):>12} {ratio_text:>11}")
    return "\n".join(lines)
