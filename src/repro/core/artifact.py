"""Frozen Pareto-front artifacts: deployable trade-offs without the engine.

A CAFFEINE run's real product is its error/complexity trade-off, but until
now that trade-off died with the process (or lived inside a run checkpoint,
which drags the whole evolutionary state along).  This module freezes a
finished front into a small, versioned, checksummed file and loads it back
as a :class:`FrozenFront` -- a pure *prediction* object that reconstitutes
compiled kernels through :mod:`repro.core.compile` and never imports the
evolution machinery (engine, session, evaluator).

* :func:`save_front` serializes a :class:`~repro.core.engine.CaffeineResult`
  (or anything carrying a ``tradeoff``) through :class:`FrontArtifactStore`,
  a :class:`~repro.core.cache_store._VersionedFileStore` subclass: the file
  gets the same magic/version/sha256 header, atomic-replace write and
  damage-quarantine policy as the column cache and run checkpoints.
* :func:`load_front` validates the envelope and returns the
  :class:`FrozenFront`.  Damaged files are quarantined to
  ``<path>.corrupt-<n>`` (exactly the cache-store convention); a stored
  dataset fingerprint that disagrees with the caller's data **warns and
  serves anyway** -- mirroring the checkpoint "starting cold" convention --
  because a frozen model is *supposed* to be applied to fresh data; only a
  feature-count mismatch (the model literally cannot evaluate) rejects.

Prediction follows the engine's canonical recipes bit for bit: unique basis
columns are evaluated once across the front (compiled tapes via
:class:`~repro.core.compile.TreeCompiler`, bit-identical to the
interpreter), matrices assemble from the shared columns, and same-width
groups run through one
:func:`~repro.regression.least_squares.predict_linear_batch` pass -- so a
frozen front's predictions and :meth:`FrozenFront.rescore` errors equal the
originating run's :func:`repro.core.report.rescore_models` output exactly
(the ``artifact_roundtrip`` equivalence gate in CI).
"""

from __future__ import annotations

import dataclasses
import os
import time
import warnings
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.cache_store import _VersionedFileStore
from repro.core.compile import TreeCompiler
from repro.core.expression import structural_key
from repro.core.model import SymbolicModel, TradeoffSet
from repro.regression.least_squares import predict_linear_batch

__all__ = ["FRONT_ARTIFACT_VERSION", "FrontArtifactStore", "FrozenFront",
           "save_front", "load_front"]

#: payload schema version of the artifact document (independent of the
#: envelope's FORMAT_VERSION: the envelope guards the bytes, this guards
#: the document's keys)
FRONT_ARTIFACT_VERSION = 1


class FrontArtifactStore(_VersionedFileStore):
    """On-disk envelope of one frozen trade-off.

    Layout (shared with every versioned store in the project)::

        caffeine-pareto-front\\n   <- magic
        1\\n                       <- format version
        <sha256 hex of payload>\\n <- checksum
        <pickled document>         <- payload

    Writes are atomic (temp file + ``os.replace``); damaged payloads are
    quarantined to ``<path>.corrupt-<n>`` on read; files with a foreign
    magic or a future version are warned about but left in place.
    """

    MAGIC = b"caffeine-pareto-front"
    FORMAT_VERSION = 1
    KIND = "front-artifact"

    # ------------------------------------------------------------------
    def save_document(self, document: dict) -> None:
        """Atomically write ``document`` under the envelope."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.lock:
            self._write_document(
                {"format_version": self.FORMAT_VERSION, "front": document})

    def load_document(self) -> Optional[dict]:
        """The stored front document, or None (missing/foreign/damaged)."""
        stored = self._read_document()
        if stored is None:
            return None
        front = stored.get("front")
        if not isinstance(front, dict):
            self._warn("malformed front document", quarantine=True)
            return None
        return front


# ----------------------------------------------------------------------
# prediction helpers (the canonical batched recipe, engine-free)
# ----------------------------------------------------------------------

def _front_matrices(models: Sequence[SymbolicModel],
                    X: np.ndarray) -> List[np.ndarray]:
    """One basis matrix per model from *shared* compiled columns.

    Unique basis functions across the whole front evaluate once -- front
    models share bases heavily -- through a :class:`TreeCompiler` bound to
    ``X`` (recurring skeletons run as fused tapes, bit-identical to the
    interpreter), exactly the column-sharing discipline of
    :func:`repro.core.model.batch_test_errors`.
    """
    compiler = TreeCompiler(X)
    columns: Dict[object, np.ndarray] = {}
    matrices: List[np.ndarray] = []
    for model in models:
        assembled = []
        for basis in model.bases:
            key = structural_key(basis)
            column = columns.get(key)
            if column is None:
                column = compiler.column(basis)
                columns[key] = column
            assembled.append(column)
        matrices.append(np.column_stack(assembled) if assembled
                        else np.zeros((X.shape[0], 0)))
    return matrices


def _predict_models(models: Sequence[SymbolicModel], X: np.ndarray,
                    transformed: bool = False) -> np.ndarray:
    """``(n_models, n_samples)`` predictions via the batched recipe.

    Row ``i`` is bit-for-bit ``models[i].predict(X)`` (or
    ``predict_transformed`` with ``transformed=True``): the stacked
    left-to-right accumulation of :func:`predict_linear_batch` is
    row-independent by construction, and the ``10**`` unscaling is applied
    per row so its array shape matches the scalar path.
    """
    matrices = _front_matrices(models, X)
    predictions = np.zeros((len(models), X.shape[0]))
    groups: Dict[int, List[int]] = {}
    for index, model in enumerate(models):
        groups.setdefault(model.fit.n_terms, []).append(index)
    for _width, indices in groups.items():
        stacked = np.stack([matrices[i] for i in indices])
        rows = predict_linear_batch(
            np.array([models[i].fit.intercept for i in indices]),
            np.stack([np.asarray(models[i].fit.coefficients, dtype=float)
                      for i in indices]),
            stacked)
        for row, i in enumerate(indices):
            predictions[i] = rows[row]
    if not transformed:
        for index, model in enumerate(models):
            if model.log_scaled_target:
                predictions[index] = np.power(10.0, predictions[index])
    return predictions


# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class FrozenFront:
    """A loaded trade-off: models + identity metadata, prediction only.

    Everything needed to answer prediction requests -- and nothing else:
    no population, no RNG state, no caches.  Model selection follows the
    :meth:`~repro.core.engine.CaffeineResult.best_model` contract (``by=``
    rule with test->train fallback) plus an optional complexity bound, and
    :meth:`rescore` is literally :func:`repro.core.report.rescore_models`
    on the frozen models.
    """

    target_name: str
    variable_names: Tuple[str, ...]
    models: Tuple[SymbolicModel, ...]
    #: sha1 fingerprint of the training ``X`` the front was evolved on
    #: (None for artifacts frozen from results that predate fingerprinting)
    dataset_fingerprint: Optional[str] = None
    #: operator-implementation identity of the run's function set
    function_set_fingerprint: Optional[Tuple] = None
    #: result-affecting settings digest of the originating run
    settings_fingerprint: Optional[str] = None
    #: wall-clock seconds the originating run took (None when unknown)
    source_runtime_seconds: Optional[float] = None
    #: time.time() at freeze
    created_wall_time: Optional[float] = None

    # ------------------------------------------------------------------
    @property
    def n_models(self) -> int:
        return len(self.models)

    @property
    def n_variables(self) -> int:
        return len(self.variable_names)

    @property
    def tradeoff(self) -> TradeoffSet:
        """The frozen models as a :class:`TradeoffSet` (already a front)."""
        return TradeoffSet(self.models, deduplicate=False)

    @property
    def test_tradeoff(self) -> TradeoffSet:
        """Models nondominated in (testing error, complexity)."""
        return self.tradeoff.test_tradeoff()

    def expressions(self, precision: int = 4) -> Tuple[str, ...]:
        return tuple(model.expression(precision=precision)
                     for model in self.models)

    def describe(self) -> List[dict]:
        """JSON-ready per-model metadata (the serving ``/models`` payload)."""
        return [{
            "index": index,
            "complexity": float(model.complexity),
            "train_error": float(model.train_error),
            "test_error": float(model.test_error),
            "n_bases": int(model.n_bases),
            "expression": model.expression(),
        } for index, model in enumerate(self.models)]

    # ------------------------------------------------------------------
    def _check_features(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.n_variables:
            raise ValueError(
                f"X must have shape (n_samples, {self.n_variables}) for the "
                f"{len(self.variable_names)} design variables "
                f"{self.variable_names}, got {X.shape}")
        return X

    def check_dataset(self, X: np.ndarray) -> bool:
        """Compatibility of ``X`` with the front; True when fingerprints match.

        A feature-count mismatch raises ``ValueError`` -- the models cannot
        evaluate at all.  Matching features with a *different* dataset
        fingerprint only warns (and returns False): applying a frozen model
        to fresh data is the whole point of freezing it, so -- like a
        checkpoint that cannot resume "starts cold" instead of failing --
        the front serves anyway.
        """
        from repro.core.evaluation import dataset_fingerprint

        X = self._check_features(X)
        if self.dataset_fingerprint is None:
            return True
        fingerprint = dataset_fingerprint(X)
        if fingerprint != self.dataset_fingerprint:
            warnings.warn(
                f"dataset fingerprint {fingerprint[:12]}... does not match "
                f"the front's training data "
                f"{self.dataset_fingerprint[:12]}...; features are "
                "compatible, serving anyway (stored train/test errors "
                "describe the original data)",
                RuntimeWarning, stacklevel=2)
            return False
        return True

    # ------------------------------------------------------------------
    def select(self, by: str = "test", complexity_max: Optional[float] = None,
               model_index: Optional[int] = None) -> SymbolicModel:
        """Pick one model: by index, or by ``by=`` rule under a bound.

        Without a bound, ``select(by=...)`` returns exactly
        ``CaffeineResult.best_model(by=...)`` of the originating run:
        lowest test error with a train fallback for ``by="test"``, lowest
        train error for ``by="train"``, ties broken toward lower
        complexity.  ``complexity_max`` first restricts the candidates to
        models within the bound (the designer's "simplest model I can
        afford" query).
        """
        if model_index is not None:
            if not 0 <= int(model_index) < len(self.models):
                raise ValueError(
                    f"model_index {model_index} out of range "
                    f"[0, {len(self.models)})")
            return self.models[int(model_index)]
        candidates = [m for m in self.models
                      if complexity_max is None
                      or m.complexity <= complexity_max]
        if not candidates:
            raise ValueError(
                f"no model has complexity <= {complexity_max} "
                f"(simplest stored: {min(m.complexity for m in self.models):.2f})")
        if by == "test":
            with_test = [m for m in candidates if np.isfinite(m.test_error)]
            if with_test:
                return min(with_test,
                           key=lambda m: (m.test_error, m.complexity))
            by = "train"
        if by == "train":
            return min(candidates, key=lambda m: (m.train_error, m.complexity))
        raise ValueError(f"by must be 'train' or 'test', got {by!r}")

    def predict(self, X: np.ndarray, by: str = "test",
                complexity_max: Optional[float] = None,
                model_index: Optional[int] = None) -> np.ndarray:
        """Predictions of the selected model (original target domain).

        Bit-for-bit what ``self.select(...).predict(X)`` -- and therefore
        what the live run's model -- returns; computed through the batched
        kernel path.
        """
        X = self._check_features(X)
        model = self.select(by=by, complexity_max=complexity_max,
                            model_index=model_index)
        return _predict_models([model], X)[0]

    def predict_all(self, X: np.ndarray,
                    transformed: bool = False) -> np.ndarray:
        """``(n_models, n_samples)`` predictions of every frozen model."""
        X = self._check_features(X)
        return _predict_models(self.models, X, transformed=transformed)

    def rescore(self, X: np.ndarray, y: np.ndarray,
                backend: str = "batched") -> List[float]:
        """Per-model relative RMS errors on fresh data.

        Identical (bit-for-bit) to calling
        :func:`repro.core.report.rescore_models` on the originating run's
        trade-off -- the round-trip guarantee the ``artifact_roundtrip``
        equivalence key gates in CI.
        """
        from repro.core.report import rescore_models

        X = self._check_features(X)
        return rescore_models(list(self.models), X, y, backend=backend)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"FrozenFront({self.target_name!r}: {self.n_models} models, "
                f"{self.n_variables} variables)")


# ----------------------------------------------------------------------
def save_front(result, path: Union[str, os.PathLike]) -> int:
    """Freeze ``result``'s trade-off at ``path``; returns the model count.

    ``result`` may be a :class:`~repro.core.engine.CaffeineResult`, a
    :class:`FrozenFront` (re-freezing is lossless) or any object carrying
    ``tradeoff``/``target_name``/``variable_names``.  The artifact stores
    the models themselves (expression trees + fitted weights + error and
    complexity metadata) plus the run's identity fingerprints; it stores
    **no** population, RNG or cache state, so files are small and loading
    never touches the evolution machinery.
    """
    if isinstance(result, FrozenFront):
        models: Sequence[SymbolicModel] = result.models
    else:
        tradeoff = getattr(result, "tradeoff", None)
        if tradeoff is None:
            raise TypeError(
                "save_front needs a CaffeineResult, FrozenFront or any "
                f"object with a 'tradeoff' attribute, got {type(result)!r}")
        models = list(tradeoff)
    if not models:
        raise ValueError("refusing to freeze an empty trade-off")
    settings = getattr(result, "settings", None)
    document = {
        "artifact_version": FRONT_ARTIFACT_VERSION,
        "target_name": str(result.target_name),
        "variable_names": tuple(result.variable_names),
        "n_variables": len(result.variable_names),
        "models": tuple(models),
        "dataset_fingerprint": getattr(result, "dataset_fingerprint", None),
        "function_set_fingerprint": getattr(result,
                                            "function_set_fingerprint", None),
        "settings_fingerprint": (settings.fingerprint()
                                 if settings is not None else
                                 getattr(result, "settings_fingerprint",
                                         None)),
        "source_runtime_seconds": getattr(result, "runtime_seconds",
                                          getattr(result,
                                                  "source_runtime_seconds",
                                                  None)),
        # repro-lint: allow[determinism] -- provenance timestamp, excluded from fingerprints and predictions
        "created_wall_time": time.time(),
    }
    FrontArtifactStore(path).save_document(document)
    return len(models)


def load_front(path: Union[str, os.PathLike],
               dataset: Optional[np.ndarray] = None) -> FrozenFront:
    """Load a frozen trade-off saved by :func:`save_front`.

    Raises ``FileNotFoundError`` for a missing file and ``ValueError`` for
    an unreadable one (a corrupt/truncated artifact is first quarantined to
    ``<path>.corrupt-<n>`` with a warning, the cache-store convention).

    ``dataset`` optionally passes the data the caller intends to predict
    on (an ``(n, d)`` array): a feature-count mismatch raises immediately,
    while a mere dataset-fingerprint mismatch warns and loads anyway --
    see :meth:`FrozenFront.check_dataset`.
    """
    store = FrontArtifactStore(path)
    if not store.path.exists():
        raise FileNotFoundError(f"no front artifact at {store.path}")
    document = store.load_document()
    if document is None:
        raise ValueError(
            f"no readable front artifact at {store.path} (see the warning "
            "above for why; damaged files are quarantined)")
    version = document.get("artifact_version")
    if version != FRONT_ARTIFACT_VERSION:
        raise ValueError(
            f"front artifact schema {version!r} is not "
            f"{FRONT_ARTIFACT_VERSION} (artifact from another build)")
    models = tuple(document["models"])
    if not models or not all(isinstance(m, SymbolicModel) for m in models):
        raise ValueError(f"front artifact at {store.path} holds no models")
    front = FrozenFront(
        target_name=document["target_name"],
        variable_names=tuple(document["variable_names"]),
        models=models,
        dataset_fingerprint=document.get("dataset_fingerprint"),
        function_set_fingerprint=document.get("function_set_fingerprint"),
        settings_fingerprint=document.get("settings_fingerprint"),
        source_runtime_seconds=document.get("source_runtime_seconds"),
        created_wall_time=document.get("created_wall_time"),
    )
    if dataset is not None:
        front.check_dataset(dataset)
    return front
