"""The CAFFEINE engine: the NSGA-II evolutionary loop over canonical-form models.

:class:`CaffeineEngine` runs one modeling task: given a training dataset
(and optionally a testing dataset), it evolves a population of multi-tree
individuals under the two objectives (normalized training error,
complexity), applies simplification-after-generation, and returns a
:class:`CaffeineResult` holding the trade-off of symbolic models plus
per-generation statistics.  Engines are driven by the
:class:`~repro.core.session.Session` orchestrator (the preferred API,
alongside the :class:`repro.SymbolicRegressor` facade); :func:`run_caffeine`
remains as the legacy one-call shim over a one-problem session.

All fitness evaluation is routed through one
:class:`~repro.core.evaluation.PopulationEvaluator` bound to the training
data: identical basis functions (which crossover and cloning produce
constantly) are evaluated once per run via an LRU column cache, and uncached
columns can be computed on a thread/process pool
(``CaffeineSettings.evaluation_backend``).  Cached/uncached and
serial/parallel evaluation are bit-for-bit identical, so these settings never
change the evolved models -- only the wall-clock time.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import time
import warnings
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core import faults
from repro.core.evaluation import (
    BasisColumnCache,
    PopulationEvaluator,
    dataset_fingerprint,
)
from repro.core.generator import ExpressionGenerator
from repro.core.individual import Individual
from repro.core.model import SymbolicModel, TradeoffSet, batch_test_errors
from repro.core.nsga2 import (
    RankedPopulation,
    rank_population_arrays,
    select_and_rerank,
    tournament_winner,
)
from repro.core.operators import VariationOperators
from repro.core.pareto import nondominated_filter
from repro.core.settings import CaffeineSettings
from repro.core.simplify import simplify_population
from repro.data.dataset import Dataset

__all__ = ["GenerationStats", "CaffeineResult", "CaffeineEngine", "run_caffeine"]

#: Optional per-generation callback: ``callback(generation_index, stats)``.
ProgressCallback = Callable[[int, "GenerationStats"], None]


@dataclasses.dataclass(frozen=True)
class GenerationStats:
    """Summary statistics of one generation."""

    generation: int
    best_error: float
    median_error: float
    best_complexity: float
    front_size: int
    n_feasible: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"gen {self.generation:4d}: best error {100 * self.best_error:6.2f}%  "
                f"front {self.front_size:3d}  feasible {self.n_feasible:3d}")


@dataclasses.dataclass
class CaffeineResult:
    """Everything a CAFFEINE run produces."""

    target_name: str
    variable_names: Tuple[str, ...]
    #: final trade-off of symbolic models (training error vs. complexity)
    tradeoff: TradeoffSet
    #: the same models filtered on the testing-error trade-off (empty when no
    #: test data was given)
    test_tradeoff: TradeoffSet
    history: Tuple[GenerationStats, ...]
    settings: CaffeineSettings
    runtime_seconds: float
    #: identity of the training data the models were evolved on (sha1 of
    #: shape + bytes of X); travels into frozen artifacts so
    #: :func:`repro.core.artifact.load_front` can detect serving against
    #: different data.  None on results unpickled from older builds.
    dataset_fingerprint: Optional[str] = None
    #: operator-implementation identity of the run's function set
    function_set_fingerprint: Optional[Tuple] = None

    @property
    def n_models(self) -> int:
        return len(self.tradeoff)

    def best_model(self, by: str = "test") -> SymbolicModel:
        """Most accurate model by testing (default) or training error.

        ``by="test"`` falls back to the training-error winner when the run
        had no testing data (``test_tradeoff`` is empty).
        """
        if by == "test":
            if len(self.test_tradeoff) > 0:
                return self.test_tradeoff.most_accurate(by="test")
            return self.tradeoff.most_accurate(by="train")
        if by == "train":
            return self.tradeoff.most_accurate(by="train")
        raise ValueError(f"by must be 'train' or 'test', got {by!r}")


class CaffeineEngine:
    """Stateful engine; :func:`run_caffeine` wraps it for the common case."""

    def __init__(self, train: Dataset, test: Optional[Dataset] = None,
                 settings: Optional[CaffeineSettings] = None,
                 column_cache: Optional[BasisColumnCache] = None) -> None:
        self.train = train.drop_nonfinite()
        self.test = test.drop_nonfinite() if test is not None else None
        if self.test is not None and self.test.variable_names != self.train.variable_names:
            raise ValueError("train and test datasets use different design variables")
        self.settings = settings if settings is not None else CaffeineSettings()
        if self.settings.fault_injection:
            # Recovery-test hook: per-problem settings travel into session
            # worker processes, so arming here is what lets a test inject a
            # failure inside one specific worker (idempotent per string).
            faults.install_from_string(self.settings.fault_injection)
        self.rng = np.random.default_rng(self.settings.random_seed)
        self.generator = ExpressionGenerator(self.train.n_variables,
                                             self.settings, rng=self.rng)
        self.operators = VariationOperators(self.generator, self.settings, rng=self.rng)
        # column_cache may be shared across engines: its keys carry a
        # dataset + function-set fingerprint, so multi-target drivers that
        # evaluate on the same X with the same operator bindings (the
        # paper's six OTA performances) reuse each other's evaluated basis
        # columns; different data or operator bindings never collide.
        self.evaluator = PopulationEvaluator(self.train.X, self.train.y,
                                             self.settings,
                                             cache=column_cache)
        self._pareto_backend = self.settings.pareto_backend
        self.history: List[GenerationStats] = []
        self.population: List[Individual] = []
        # Rank/crowding arrays of the *current* population, produced by the
        # previous generation's select_and_rerank (or computed fresh on
        # first use).  Guarded by list identity: external drivers that
        # assign engine.population invalidate the cache automatically.
        self._ranked: Optional[RankedPopulation] = None
        self._tournament_bounds: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def initialize_population(self) -> None:
        """Create and batch-evaluate the initial random population."""
        self.population = [
            Individual(bases=self.generator.random_basis_functions())
            for _ in range(self.settings.population_size)
        ]
        self.evaluator.evaluate_population(self.population)

    def step(self, generation: int) -> GenerationStats:
        """Run one NSGA-II generation and return its statistics.

        Selection is array-native: the current population's rank/crowding
        vectors (cached from the previous generation's survivor selection,
        computed fresh at generation 0) drive the binary tournaments, with
        each offspring's four index draws batched into one ``rng.integers``
        call that reproduces the sequential draw stream exactly; after
        evaluation, :func:`~repro.core.nsga2.select_and_rerank` performs
        survivor selection and derives the survivors' arrays from one
        nondominated sort of the combined population.
        """
        ranked = self._ranked_population()
        population = self.population
        n = len(population)
        offspring: List[Individual] = []
        if n > 1:
            bounds = self._tournament_bounds
            if bounds is None or bounds[0] != n:
                bounds = np.array([n, n - 1, n, n - 1], dtype=np.int64)
                self._tournament_bounds = bounds
            for _ in range(self.settings.population_size):
                draws = self.rng.integers(0, bounds)
                parent_a = population[tournament_winner(ranked, draws[0],
                                                        draws[1])]
                parent_b = population[tournament_winner(ranked, draws[2],
                                                        draws[3])]
                child = self.operators.vary(parent_a, parent_b)
                child.generation_born = generation
                offspring.append(child)
        else:
            # Degenerate single-member population (never produced by the
            # engine itself, but external drivers may assign one): keep the
            # reference draw sequence of one integers(1) per tournament.
            for _ in range(self.settings.population_size):
                parent_a = population[int(self.rng.integers(n))]
                parent_b = population[int(self.rng.integers(n))]
                child = self.operators.vary(parent_a, parent_b)
                child.generation_born = generation
                offspring.append(child)
        # Variation (RNG-driven) is kept strictly separate from evaluation
        # (RNG-free), so batching the evaluation preserves the random stream.
        self.evaluator.evaluate_population(offspring)
        combined = self.population + offspring
        self.population, self._ranked = select_and_rerank(
            combined, self.settings.population_size,
            backend=self._pareto_backend)
        stats = self._collect_stats(generation)
        self.history.append(stats)
        return stats

    def _ranked_population(self) -> RankedPopulation:
        """Rank/crowding arrays for the current population (cached)."""
        ranked = self._ranked
        if ranked is None or ranked.individuals is not self.population:
            ranked = rank_population_arrays(self.population,
                                            backend=self._pareto_backend)
            self._ranked = ranked
        return ranked

    def _front_individuals(self) -> List[Individual]:
        """Feasible rank-0 members of the current population.

        Identical to ``nondominated_filter`` over the feasible subset --
        infeasible individuals all carry infinite error, so they never
        dominate a feasible one and every dominator of a feasible
        individual is itself feasible -- but answered from the cached rank
        vector when it is current.
        """
        ranked = self._ranked
        if ranked is not None and ranked.individuals is self.population:
            return [ind for ind, rank in zip(self.population, ranked.ranks, strict=True)
                    if rank == 0 and ind.is_feasible]
        feasible = [ind for ind in self.population if ind.is_feasible]
        if not feasible:
            return []
        return nondominated_filter(feasible, key=lambda ind: ind.objectives,
                                   backend=self._pareto_backend)

    def _collect_stats(self, generation: int) -> GenerationStats:
        feasible = [ind for ind in self.population if ind.is_feasible]
        errors = np.array([ind.error for ind in feasible]) if feasible else np.array([np.inf])
        front = self._front_individuals() if feasible else []
        best_complexity = min((ind.complexity for ind in front), default=float("inf"))
        return GenerationStats(
            generation=generation,
            best_error=float(np.min(errors)),
            median_error=float(np.median(errors)),
            best_complexity=float(best_complexity),
            front_size=len(front),
            n_feasible=len(feasible),
        )

    # ------------------------------------------------------------------
    def final_front(self) -> List[Individual]:
        """Feasible nondominated individuals of the final population."""
        return self._front_individuals()

    # ------------------------------------------------------------------
    # crash-safe checkpointing
    #
    # A run's restorable state is exactly: the RNG bit-generator state, the
    # population (with its fitted weights/objectives), the cached
    # rank/crowding arrays from the previous survivor selection, and the
    # stats history -- all captured at a *generation boundary* (after
    # select_and_rerank, before the next tournament draws).  Everything
    # else the engine holds (column cache, gram pool, compiled kernels) is
    # result-neutral by contract: a resumed run rebuilds those caches cold
    # and pays only wall-clock, never a changed model.  The rank/crowding
    # arrays DO have to travel: generation 0 computes them fresh, but every
    # later boundary inherits them from select_and_rerank, and recomputing
    # after restore would have to be proven identical -- snapshotting them
    # makes resume bit-identity true by construction.
    # ------------------------------------------------------------------

    #: schema version of capture_run_state / restore_run_state payloads
    RUN_STATE_VERSION = 1

    def checkpoint_fingerprint(self) -> str:
        """Identity of "the run this checkpoint belongs to".

        Combines the result-affecting settings fingerprint
        (:meth:`CaffeineSettings.fingerprint`) with the training data's
        content (X, y, target name), so a checkpoint can only resume a run
        that would have evolved the exact same models.  Testing data is
        deliberately excluded: it only scores the final front, so resuming
        with refreshed test data is rescoring, not divergence.
        """
        digest = hashlib.sha256()
        digest.update(self.settings.fingerprint().encode("ascii"))
        digest.update(dataset_fingerprint(self.train.X).encode("ascii"))
        digest.update(np.ascontiguousarray(self.train.y,
                                           dtype=float).tobytes())
        digest.update(str(self.train.target_name).encode("utf-8"))
        return digest.hexdigest()

    def capture_run_state(self, next_generation: int) -> dict:
        """Snapshot the boundary state; ``next_generation`` runs next.

        Cheap (references plus two small array copies); the expense is in
        :meth:`RunCheckpointStore.save_state`, which pickles it.
        """
        ranked = self._ranked
        if ranked is not None and ranked.individuals is not self.population:
            ranked = None  # stale cache (external population assignment)
        return {
            "state_version": self.RUN_STATE_VERSION,
            "kind": "generation",
            "fingerprint": self.checkpoint_fingerprint(),
            "generation": int(next_generation),
            "rng_state": self.rng.bit_generator.state,
            "population": list(self.population),
            "ranks": (np.array(ranked.ranks, copy=True)
                      if ranked is not None else None),
            "crowding": (np.array(ranked.crowding, copy=True)
                         if ranked is not None else None),
            "history": tuple(self.history),
            # repro-lint: allow[determinism] -- snapshot timestamp is provenance, excluded from the resume fingerprint
            "wall_time": time.time(),
        }

    def restore_run_state(self, state: dict) -> int:
        """Restore a :meth:`capture_run_state` snapshot; returns the
        generation index the run should continue from.

        Raises ``ValueError`` when the snapshot belongs to a different run
        (settings/data fingerprint mismatch) or a different state schema --
        resuming from it would silently diverge.  ``run(resume=True)``
        degrades such mismatches to a warning plus cold start instead.
        """
        if state.get("state_version") != self.RUN_STATE_VERSION:
            raise ValueError(
                f"run-state schema {state.get('state_version')!r} is not "
                f"{self.RUN_STATE_VERSION} (checkpoint from another build)")
        if state.get("kind") != "generation":
            raise ValueError(
                f"not a generation snapshot (kind={state.get('kind')!r})")
        if state.get("fingerprint") != self.checkpoint_fingerprint():
            raise ValueError(
                "checkpoint fingerprint mismatch: it was taken under "
                "different result-affecting settings or training data; "
                "resuming would not reproduce the interrupted run")
        self.rng.bit_generator.state = state["rng_state"]
        self.population = list(state["population"])
        self.history = list(state["history"])
        self._ranked = None
        if state.get("ranks") is not None:
            self._ranked = RankedPopulation(self.population,
                                            np.asarray(state["ranks"]),
                                            np.asarray(state["crowding"]))
        return int(state["generation"])

    @staticmethod
    def _as_checkpoint_store(checkpoint):
        from repro.core.cache_store import RunCheckpointStore

        if checkpoint is None or isinstance(checkpoint, RunCheckpointStore):
            return checkpoint
        return RunCheckpointStore(checkpoint)

    def run(self, progress: Optional[ProgressCallback] = None, *,
            checkpoint: Optional[Union[str, os.PathLike, "object"]] = None,
            checkpoint_every: int = 1,
            checkpoint_slot: Optional[str] = None,
            resume: bool = False) -> CaffeineResult:
        """Run the full evolutionary loop plus post-processing.

        ``checkpoint`` (a path or a
        :class:`~repro.core.cache_store.RunCheckpointStore`) makes the run
        crash-safe: every ``checkpoint_every`` generations the boundary
        state is snapshotted under ``checkpoint_slot`` (default: the
        training target's name), a ``KeyboardInterrupt`` saves the last
        completed boundary before propagating, and the final
        :class:`CaffeineResult` is stored in the slot on success.  With
        ``resume=True`` a compatible stored snapshot warm-restarts the run
        -- **bit-identically** to never having been interrupted -- and a
        stored final result is returned outright; an incompatible snapshot
        (different settings/data) warns and starts cold.  Without
        ``checkpoint`` both knobs are inert.

        The evaluator's worker pool (if a parallel backend is configured) is
        released when the run finishes; manual ``initialize_population`` /
        ``step`` drivers should call ``engine.evaluator.shutdown()``
        themselves when done.
        """
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be at least 1")
        store = self._as_checkpoint_store(checkpoint)
        slot = (checkpoint_slot if checkpoint_slot is not None
                else (self.train.target_name or "run"))
        start_time = time.perf_counter()
        start_generation = 0
        if store is not None and resume:
            state = store.load_state(slot)
            if state is not None:
                if state.get("kind") == "result" and \
                        state.get("fingerprint") == \
                        self.checkpoint_fingerprint():
                    self.evaluator.shutdown()
                    return state["result"]
                try:
                    start_generation = self.restore_run_state(state)
                except ValueError as error:
                    warnings.warn(
                        f"ignoring checkpoint slot {slot!r} at "
                        f"{store.path}: {error}; starting cold",
                        RuntimeWarning, stacklevel=2)
                    start_generation = 0
        boundary: Optional[dict] = None
        try:
            if start_generation == 0:
                self.initialize_population()
            try:
                for generation in range(start_generation,
                                        self.settings.n_generations):
                    stats = self.step(generation)
                    if progress is not None:
                        progress(generation, stats)
                    if store is not None:
                        boundary = self.capture_run_state(generation + 1)
                        if (generation + 1) % checkpoint_every == 0 \
                                and generation + 1 < self.settings.n_generations:
                            store.save_state(slot, boundary)
            except KeyboardInterrupt:
                # Persist the last *completed* generation boundary so the
                # interrupted run can continue exactly where it stopped
                # (a mid-step interrupt must never pair an advanced RNG
                # with a stale population -- boundary snapshots cannot).
                if store is not None and boundary is not None:
                    store.save_state(slot, boundary)
                raise

            front = self.final_front()
            if self.settings.simplify_after_generation:
                front = simplify_population(front, self.train.X, self.train.y,
                                            self.settings,
                                            evaluator=self.evaluator)
                front = [ind for ind in front if ind.is_feasible]
                front = nondominated_filter(front, key=lambda ind: ind.objectives,
                                            backend=self._pareto_backend)
        finally:
            self.evaluator.shutdown()

        models = self._freeze_models(front)
        tradeoff = TradeoffSet(models).train_tradeoff()
        test_tradeoff = tradeoff.test_tradeoff() if self.test is not None \
            else TradeoffSet([])
        runtime = time.perf_counter() - start_time
        result = CaffeineResult(
            target_name=self.train.target_name,
            variable_names=self.train.variable_names,
            tradeoff=tradeoff,
            test_tradeoff=test_tradeoff,
            history=tuple(self.history),
            settings=self.settings,
            runtime_seconds=runtime,
            dataset_fingerprint=dataset_fingerprint(self.train.X),
            function_set_fingerprint=self.settings.function_set.fingerprint(),
        )
        if store is not None:
            # Replace the generation snapshot with the finished result, so
            # a resumed sweep returns this problem without re-running it.
            store.save_state(slot, {
                "state_version": self.RUN_STATE_VERSION,
                "kind": "result",
                "fingerprint": self.checkpoint_fingerprint(),
                "result": result,
                # repro-lint: allow[determinism] -- result timestamp is provenance, excluded from the resume fingerprint
                "wall_time": time.time(),
            })
        return result

    def _freeze_models(self, front: Sequence[Individual]) -> List[SymbolicModel]:
        feasible = [ind for ind in front if ind.is_feasible]
        # Test-set scoring runs through the same residual engine as
        # training: unique basis columns are evaluated once on X_test across
        # the whole front and same-width groups score in stacked passes
        # (bit-for-bit the per-model scalar path; see batch_test_errors).
        test_errors: Optional[List[float]] = None
        if self.test is not None and feasible:
            test_errors = batch_test_errors(
                feasible, self.test.X, self.test.y,
                self.evaluator.normalization,
                backend=self.settings.residual_backend)
        models = []
        for index, individual in enumerate(feasible):
            models.append(SymbolicModel.from_individual(
                individual,
                target_name=self.train.target_name,
                variable_names=self.train.variable_names,
                log_scaled_target=self.train.log_scaled,
                test_error=(test_errors[index] if test_errors is not None
                            else None),
            ))
        return models


def run_caffeine(train: Dataset, test: Optional[Dataset] = None,
                 settings: Optional[CaffeineSettings] = None,
                 progress: Optional[ProgressCallback] = None,
                 column_cache: Optional[BasisColumnCache] = None,
                 column_cache_path: Optional[str] = None,
                 checkpoint_path: Optional[str] = None,
                 checkpoint_every: int = 1,
                 resume: bool = True) -> CaffeineResult:
    """Run CAFFEINE on a training dataset (and optional testing dataset).

    .. deprecated:: 1.1
        This is now a compatibility shim over the Problem/Session API --
        one :class:`~repro.core.problem.Problem` run by a one-problem
        :class:`~repro.core.session.Session` -- and is kept bit-for-bit
        identical to calling that API directly (asserted by the test
        suite).  New code should prefer :class:`~repro.core.session.Session`
        (multi-run orchestration, process pools, structured callbacks) or
        :class:`repro.SymbolicRegressor` (the sklearn-style facade); see
        the migration table in ``benchmarks/README.md``.

        One deliberate tightening rides along: ``Problem`` validates the
        train/test pair up front, so a ``test`` dataset whose target name
        or log-scaling disagrees with ``train`` -- silently accepted (and
        silently mis-scored) before -- now raises ``ValueError`` at the
        call instead of producing a result.  Valid pairs are unaffected.

    Usage::

        from repro import CaffeineSettings, run_caffeine
        result = run_caffeine(train, test, CaffeineSettings(population_size=100,
                                                            n_generations=50))
        for model in result.test_tradeoff:
            print(model.train_error_percent, model.expression())

    ``column_cache`` optionally shares one
    :class:`~repro.core.evaluation.BasisColumnCache` across runs; cache keys
    are namespaced by a dataset fingerprint, so runs on the same ``X``
    (e.g. the six OTA performances) reuse evaluated basis columns while
    runs on different data stay isolated.

    ``column_cache_path`` additionally persists that cache across
    *processes*: entries stored at the path are loaded before the run
    (damaged or stale files degrade to a cold start, see
    :class:`~repro.core.cache_store.ColumnCacheStore`) and the cache --
    including everything this run computed -- is saved back after a
    successful run, merged under the store's advisory lock so concurrent
    runs cannot erase each other's columns.  Neither knob ever changes the
    evolved models, only wall-clock time.

    ``checkpoint_path`` makes the run *crash-safe*: every
    ``checkpoint_every`` generations the run's boundary state (RNG state,
    population, rank arrays, history) is snapshotted to a
    :class:`~repro.core.cache_store.RunCheckpointStore` at the path, and --
    because ``resume`` defaults to True -- re-running the same call after a
    crash, SIGKILL or Ctrl-C warm-restarts from the last snapshot,
    **bit-identically** to a run that was never interrupted (a finished
    run's stored result is returned outright).  ``resume=False`` ignores
    any existing snapshot and starts cold.  Like the cache knobs, the
    checkpoint cadence never changes the evolved models.
    """
    # Imported here: session.py imports this module (CaffeineEngine).
    from repro.core.problem import Problem
    from repro.core.session import LegacyProgressCallback, Session

    callbacks = ([LegacyProgressCallback(progress)]
                 if progress is not None else ())
    session = Session([Problem(train=train, test=test)], settings=settings,
                      column_cache=column_cache,
                      column_cache_path=column_cache_path,
                      callbacks=callbacks,
                      checkpoint_path=checkpoint_path,
                      checkpoint_every=checkpoint_every,
                      failure_policy="raise")
    return session.run(resume=bool(checkpoint_path) and resume).single()
