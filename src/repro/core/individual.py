"""CAFFEINE individuals: sets of basis-function trees with linear weights.

"In CAFFEINE, the overall expression is a linear sum of weighted basis
functions; therefore, each individual is a set of GP trees."  An
:class:`Individual` holds those trees; fitting the outer linear weights
(intercept plus one coefficient per basis function) to the training data and
computing the two objectives (error, complexity) is delegated to
:mod:`repro.core.evaluation`, which caches basis columns by structural key
and can batch-evaluate whole populations (``Individual.evaluate`` remains as
the one-individual compatibility entry point).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.expression import ProductTerm
from repro.core.settings import CaffeineSettings
from repro.regression.least_squares import LinearFit

__all__ = ["Individual", "evaluate_basis_column", "evaluate_basis_matrix"]

#: Values beyond this magnitude are treated as numerical blow-ups.
_MAGNITUDE_LIMIT = 1e30


def evaluate_basis_column(basis: ProductTerm, X: np.ndarray) -> np.ndarray:
    """Evaluate one basis function on the sample matrix ``X``.

    Returns a vector of length ``n_samples``.  Absurd magnitudes are mapped to
    NaN; the linear-fit layer rejects such columns, which marks the owning
    individual as infeasible.  This is the single source of truth for basis
    evaluation: both the straight-through matrix assembly below and the
    column cache in :mod:`repro.core.evaluation` call it, which is what makes
    cached and uncached evaluation bit-for-bit identical.
    """
    with np.errstate(all="ignore"):
        values = np.asarray(basis.evaluate(X), dtype=float)
        return np.where(np.abs(values) > _MAGNITUDE_LIMIT, np.nan, values)


def evaluate_basis_matrix(bases: Sequence[ProductTerm], X: np.ndarray) -> np.ndarray:
    """Evaluate every basis function on the sample matrix ``X``.

    Returns an array of shape ``(n_samples, n_bases)``.  Non-finite values and
    absurd magnitudes are passed through unchanged; the linear-fit layer
    rejects such columns, which marks the individual as infeasible.
    """
    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise ValueError("X must be 2-D")
    if not bases:
        return np.zeros((X.shape[0], 0))
    return np.column_stack([evaluate_basis_column(basis, X) for basis in bases])


@dataclasses.dataclass
class Individual:
    """A candidate symbolic model during evolution."""

    bases: List[ProductTerm]
    #: linear fit of the outer weights (None until evaluated or if infeasible)
    fit: Optional[LinearFit] = None
    #: normalized RMS training error (the paper's qwc); inf when infeasible
    error: float = float("inf")
    #: complexity objective of Eq. (1)
    complexity: float = float("inf")
    #: reference scale used to normalize errors (the training-data range)
    normalization: float = 1.0
    #: age counter used only for reporting
    generation_born: int = 0

    # ------------------------------------------------------------------
    @property
    def n_bases(self) -> int:
        return len(self.bases)

    @property
    def is_evaluated(self) -> bool:
        return np.isfinite(self.complexity)

    @property
    def is_feasible(self) -> bool:
        """True when the linear fit succeeded and the error is finite."""
        return self.fit is not None and np.isfinite(self.error)

    @property
    def objectives(self) -> Tuple[float, float]:
        """(error, complexity) -- both minimized by NSGA-II."""
        return (self.error, self.complexity)

    def clone(self) -> "Individual":
        """Deep copy of the trees; evaluation results are reset."""
        return Individual(bases=[b.clone() for b in self.bases],
                          generation_born=self.generation_born)

    def shared_clone(self, bases: Optional[List[ProductTerm]] = None
                     ) -> "Individual":
        """Structure-sharing counterpart of :meth:`clone`.

        Returns a fresh individual with reset evaluation results and a
        *fresh bases list*, but the trees themselves are shared by
        reference -- callers must treat them as immutable (the
        ``genome_backend="shared"`` contract; see
        :mod:`repro.core.expression`).  Pass ``bases`` to substitute a
        ready-made list (already fresh, trees shared or new).
        """
        return Individual(bases=list(self.bases) if bases is None else bases,
                          generation_born=self.generation_born)

    # ------------------------------------------------------------------
    def evaluate(self, X: np.ndarray, y: np.ndarray,
                 settings: CaffeineSettings) -> None:
        """Fit the outer linear weights and compute both objectives.

        The error objective is the paper's ``qwc``: RMS training error
        divided by the training-data range (see :mod:`repro.data.metrics`).

        This is a thin compatibility wrapper: the actual work lives in
        :mod:`repro.core.evaluation`, which the engine drives in batch (with
        basis-column caching and optional parallelism) via
        :class:`~repro.core.evaluation.PopulationEvaluator`.
        """
        from repro.core.evaluation import evaluate_individual_inplace

        evaluate_individual_inplace(self, X, y, settings)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predictions of the fitted model on new samples."""
        if self.fit is None:
            raise RuntimeError("individual has not been (successfully) evaluated")
        basis_matrix = evaluate_basis_matrix(self.bases, X)
        return self.fit.predict(basis_matrix)

    # ------------------------------------------------------------------
    def render(self, variable_names: Sequence[str], precision: int = 4) -> str:
        """Readable model string ``w0 + w1 * basis1 + ...`` (requires a fit)."""
        from repro.core.weights import format_number

        if self.fit is None:
            bases_text = " , ".join(b.render(variable_names) for b in self.bases)
            return f"<unfitted model: {bases_text}>"
        parts = [format_number(self.fit.intercept, precision)]
        for coefficient, basis in zip(self.fit.coefficients, self.bases, strict=True):
            if coefficient == 0.0:
                continue
            sign = "-" if coefficient < 0 else "+"
            parts.append(f"{sign} {format_number(abs(coefficient), precision)} * "
                         f"{basis.render(variable_names)}")
        return " ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Individual(n_bases={self.n_bases}, error={self.error:.4g}, "
                f"complexity={self.complexity:.4g})")
