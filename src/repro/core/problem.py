"""``Problem``: one symbolic-modeling task, independent of the OTA substrate.

The paper's evaluation is six independent CAFFEINE runs -- one per OTA
performance -- but nothing about the algorithm is circuit-specific: a run
needs a training :class:`~repro.data.dataset.Dataset`, optionally a testing
one, and (optionally) its own :class:`~repro.core.settings.CaffeineSettings`.
:class:`Problem` packages exactly that, so any numeric dataset -- a CSV
export, an sklearn fetcher, a simulator sweep -- is a first-class modeling
scenario, and the :class:`~repro.core.session.Session` orchestrator can run
lists of them interchangeably.

Constructors cover the common sources::

    Problem(train, test)                        # existing Dataset objects
    Problem.from_arrays(X, y, target_name="PM") # plain numpy arrays
    Problem.from_csv("ota.csv", target="PM")    # a header-row CSV file

Problems are immutable and picklable (both underlying types are), which is
what lets a Session ship them to a process pool.
"""

from __future__ import annotations

import csv
import dataclasses
import os
from typing import Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.settings import CaffeineSettings
from repro.data.dataset import Dataset, validate_train_test_pair

__all__ = ["Problem"]


@dataclasses.dataclass(frozen=True)
class Problem:
    """One symbolic-regression task: data plus (optional) per-task settings.

    Parameters
    ----------
    train:
        Training dataset (non-finite rows are dropped by the engine).
    test:
        Optional testing dataset over the same design variables; enables
        the testing-error trade-off of the result.
    name:
        Identifier used by sessions, callbacks and result mappings.
        Defaults to the training target's name.
    settings:
        Optional per-problem :class:`CaffeineSettings`; a problem without
        its own settings runs under the session's shared ones.
    metadata:
        Free-form, read-only annotations (units, provenance, notes); never
        interpreted by the engine.
    """

    train: Dataset
    test: Optional[Dataset] = None
    name: str = ""
    settings: Optional[CaffeineSettings] = None
    metadata: Mapping[str, object] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.test is not None:
            # Same validation as the paper's DOE pairs: identical variables,
            # target and scaling (raises on mismatch).  Allocation-free --
            # the engine drops non-finite rows itself at run time.
            validate_train_test_pair(self.train, self.test)
        if not self.name:
            object.__setattr__(self, "name", self.train.target_name)
        # A plain copy, not a MappingProxyType: proxies do not pickle, and
        # problems must cross process boundaries for parallel sessions.
        object.__setattr__(self, "metadata", dict(self.metadata))

    # ------------------------------------------------------------------
    @property
    def n_variables(self) -> int:
        return self.train.n_variables

    @property
    def variable_names(self) -> Tuple[str, ...]:
        return self.train.variable_names

    def effective_settings(self,
                           default: Optional[CaffeineSettings] = None
                           ) -> CaffeineSettings:
        """This problem's settings, else ``default``, else library defaults."""
        if self.settings is not None:
            return self.settings
        if default is not None:
            return default
        return CaffeineSettings()

    def with_settings(self, settings: CaffeineSettings) -> "Problem":
        """A copy pinned to ``settings`` (overrides any session default)."""
        return dataclasses.replace(self, settings=settings,
                                   metadata=dict(self.metadata))

    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(cls, X: np.ndarray, y: np.ndarray,
                    variable_names: Optional[Sequence[str]] = None,
                    target_name: str = "y",
                    X_test: Optional[np.ndarray] = None,
                    y_test: Optional[np.ndarray] = None,
                    name: str = "",
                    settings: Optional[CaffeineSettings] = None,
                    log10_target: bool = False) -> "Problem":
        """Build a problem from plain arrays (names default to x0, x1, ...).

        ``log10_target`` applies the paper's ``fu`` convention: the target
        is modeled in log10 space and predictions return to the original
        domain automatically.
        """
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if variable_names is None:
            variable_names = tuple(f"x{i}" for i in range(X.shape[1]))
        train = Dataset(X, np.asarray(y, dtype=float),
                        variable_names=variable_names,
                        target_name=target_name)
        if log10_target:
            train = train.log10_target()
        test = None
        if X_test is not None:
            if y_test is None:
                raise ValueError("X_test was given without y_test")
            test = Dataset(np.asarray(X_test, dtype=float),
                           np.asarray(y_test, dtype=float),
                           variable_names=variable_names,
                           target_name=target_name)
            if log10_target:
                test = test.log10_target()
        elif y_test is not None:
            raise ValueError("y_test was given without X_test")
        return cls(train=train, test=test, name=name, settings=settings)

    @classmethod
    def from_csv(cls, path: Union[str, os.PathLike], target: str,
                 test_path: Optional[Union[str, os.PathLike]] = None,
                 feature_columns: Optional[Sequence[str]] = None,
                 name: str = "",
                 settings: Optional[CaffeineSettings] = None,
                 log10_target: bool = False,
                 delimiter: str = ",") -> "Problem":
        """Build a problem from a header-row CSV file.

        ``target`` names the modeled column; every other numeric column is
        a design variable unless ``feature_columns`` narrows the list.  An
        optional ``test_path`` CSV (same header) supplies testing data.
        Non-numeric cells -- and whole rows whose cell count disagrees
        with the header -- become NaN and the engine drops those rows,
        which matches the paper's treatment of non-converged simulations.
        """
        header, rows = _read_csv(path, delimiter)
        if target not in header:
            raise ValueError(
                f"target column {target!r} not in {path} "
                f"(columns: {header})")
        if feature_columns is None:
            feature_columns = tuple(c for c in header if c != target)
        else:
            feature_columns = tuple(feature_columns)
            missing = [c for c in feature_columns if c not in header]
            if missing:
                raise ValueError(
                    f"feature columns {missing} not in {path} "
                    f"(columns: {header})")
            if target in feature_columns:
                raise ValueError(
                    f"target column {target!r} cannot also be a feature")
        if not feature_columns:
            raise ValueError(f"no feature columns left in {path}")

        def build(header_, rows_, source):
            if header_ != header:
                raise ValueError(
                    f"{source} has columns {header_}, expected {header}")
            X, y = _columns_to_arrays(header_, rows_, feature_columns, target)
            dataset = Dataset(X, y, variable_names=feature_columns,
                              target_name=target)
            return dataset.log10_target() if log10_target else dataset

        train = build(header, rows, path)
        test = None
        if test_path is not None:
            test_header, test_rows = _read_csv(test_path, delimiter)
            test = build(test_header, test_rows, test_path)
        return cls(train=train, test=test, name=name, settings=settings)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Problem(name={self.name!r}, "
                f"n_train={self.train.n_samples}, "
                f"n_test={self.test.n_samples if self.test else 0}, "
                f"n_variables={self.n_variables})")


def _read_csv(path, delimiter: str):
    """``(header, data_rows)`` of a CSV file (header row required)."""
    with open(path, "r", newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        rows = [row for row in reader if row and any(c.strip() for c in row)]
    if len(rows) < 2:
        raise ValueError(f"{path} needs a header row and at least one sample")
    header = tuple(cell.strip() for cell in rows[0])
    if len(set(header)) != len(header):
        raise ValueError(f"{path} has duplicate column names: {header}")
    return header, rows[1:]


def _columns_to_arrays(header, rows, feature_columns, target):
    indices = {column: position for position, column in enumerate(header)}
    width = len(header)

    def parse(cell: str) -> float:
        try:
            return float(cell)
        except ValueError:
            return float("nan")  # dropped later, like a failed simulation

    def parse_row(row):
        if len(row) != width:
            # Truncated/overlong lines become all-NaN rows: they stay in
            # the sample count and are dropped exactly like non-numeric
            # cells, never silently skipped.
            return [float("nan")] * width
        return [parse(cell) for cell in row]

    table = np.array([parse_row(row) for row in rows], dtype=float)
    if table.size == 0:
        raise ValueError("no complete data rows")
    X = table[:, [indices[column] for column in feature_columns]]
    y = table[:, indices[target]]
    # A column with no numeric cell at all is almost certainly a label/id
    # column, not a failed simulation -- including it would NaN every row
    # and silently empty the dataset.  Name it instead.
    label_like = [column for position, column in enumerate(feature_columns)
                  if np.isnan(X[:, position]).all()]
    if label_like:
        raise ValueError(
            f"feature columns {label_like} contain no numeric data; "
            f"pass feature_columns=... to exclude label columns")
    if np.isnan(y).all():
        raise ValueError(
            f"target column {target!r} contains no numeric data")
    return X, y
