"""Result types: symbolic models and trade-off sets.

A CAFFEINE run does not return a single model; it returns a *set* of models
that collectively trade off error against complexity.  :class:`SymbolicModel`
is one immutable member of that set (expression trees + fitted linear
weights + measured errors); :class:`TradeoffSet` is the collection, with the
filtering operations the paper applies (training-error trade-off,
testing-error trade-off, "all models under 10% train and test error", ...).
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.expression import ProductTerm, structural_key
from repro.core.individual import (
    Individual,
    evaluate_basis_column,
    evaluate_basis_matrix,
)
from repro.core.pareto import nondominated_filter
from repro.core.registry import get_backend
from repro.data.metrics import q_tc
from repro.regression.least_squares import LinearFit

__all__ = ["SymbolicModel", "TradeoffSet", "batch_test_errors"]


def batch_test_errors(individuals: Sequence, X: np.ndarray,
                      y: np.ndarray, normalization: float,
                      backend: str = "batched") -> List[float]:
    """Per-individual ``qtc`` on ``(X, y)``, scored generation-style.

    ``individuals`` may be :class:`Individual` or :class:`SymbolicModel`
    instances -- anything carrying ``fit`` and ``bases``.

    This is the test-error analogue of the evaluator's residual engine:
    unique basis columns are evaluated once across all individuals (front
    models share basis functions heavily), matrices are assembled from the
    shared columns, and same-width groups are scored through the configured
    ``"residual"`` backend -- one stacked prediction/residual pass per width
    under ``"batched"``.  Every returned value is bit-for-bit what the
    scalar path (``q_tc(y, individual.predict(X), normalization)``) returns:
    columns come from the same :func:`evaluate_basis_column`, predictions
    from the same canonical accumulation, and the row-stacked residual
    reduction is batch-shape independent.

    All individuals must carry a successful fit; ``normalization`` is the
    *training*-data range shared by the individuals (the paper's qtc
    denominator).
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    residual = get_backend("residual", backend)(y, normalization)
    columns: dict = {}
    matrices: List[np.ndarray] = []
    for individual in individuals:
        if individual.fit is None:
            raise ValueError(
                "batch_test_errors requires successfully fitted individuals")
        assembled = []
        for basis in individual.bases:
            key = structural_key(basis)
            column = columns.get(key)
            if column is None:
                column = evaluate_basis_column(basis, X)
                columns[key] = column
            assembled.append(column)
        matrices.append(np.column_stack(assembled) if assembled
                        else np.zeros((X.shape[0], 0)))
    groups: dict = {}
    for index, individual in enumerate(individuals):
        groups.setdefault(individual.fit.n_terms, []).append(index)
    errors: List[float] = [float("nan")] * len(matrices)
    for indices in groups.values():
        group_errors = residual.errors(
            [individuals[i].fit for i in indices],
            [matrices[i] for i in indices])
        for i, value in zip(indices, group_errors, strict=True):
            errors[i] = float(value)
    return errors


@dataclasses.dataclass(frozen=True)
class SymbolicModel:
    """One interpretable symbolic performance model.

    Errors are normalized RMS errors as fractions (multiply by 100 for the
    percentages quoted in the paper); ``test_error`` is NaN when no testing
    data was supplied.
    """

    target_name: str
    variable_names: Tuple[str, ...]
    bases: Tuple[ProductTerm, ...]
    fit: LinearFit
    complexity: float
    train_error: float
    test_error: float = float("nan")
    #: reference scale (training-data range) both errors are normalized by
    normalization: float = 1.0
    #: True when the modeled target was log10-scaled (the paper's fu);
    #: :meth:`predict` then returns values in the original domain.
    log_scaled_target: bool = False

    # ------------------------------------------------------------------
    @classmethod
    def from_individual(cls, individual: Individual, target_name: str,
                        variable_names: Sequence[str],
                        X_test: Optional[np.ndarray] = None,
                        y_test: Optional[np.ndarray] = None,
                        log_scaled_target: bool = False,
                        test_error: Optional[float] = None) -> "SymbolicModel":
        """Freeze an evaluated individual into a result model.

        ``test_error`` lets callers that scored a whole front in one batched
        pass (:func:`batch_test_errors`, as the engine does) hand the value
        in instead of re-predicting per model; it must then be the same
        quantity the scalar path below computes (bit-for-bit, when produced
        by the residual engine).
        """
        if individual.fit is None:
            raise ValueError("individual must have a successful linear fit")
        if test_error is None:
            test_error = float("nan")
            if X_test is not None and y_test is not None:
                predictions = individual.predict(np.asarray(X_test, dtype=float))
                # The paper's qtc: the testing error is normalized by the
                # *training*-data range (individual.normalization), the same
                # reference as the training error, never the testing range.
                test_error = q_tc(np.asarray(y_test, dtype=float), predictions,
                                  individual.normalization)
        return cls(
            target_name=target_name,
            variable_names=tuple(variable_names),
            bases=tuple(basis.clone() for basis in individual.bases),
            fit=individual.fit,
            complexity=float(individual.complexity),
            train_error=float(individual.error),
            test_error=test_error,
            normalization=float(individual.normalization),
            log_scaled_target=log_scaled_target,
        )

    # ------------------------------------------------------------------
    @property
    def n_bases(self) -> int:
        """Number of basis functions, not counting the constant intercept."""
        return len(self.bases)

    @property
    def is_constant(self) -> bool:
        """True for the zero-complexity, intercept-only model."""
        return self.n_bases == 0 or all(c == 0.0 for c in self.fit.coefficients)

    @property
    def train_error_percent(self) -> float:
        return 100.0 * self.train_error

    @property
    def test_error_percent(self) -> float:
        return 100.0 * self.test_error

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Evaluate the model on new design points (original target domain)."""
        basis_matrix = evaluate_basis_matrix(list(self.bases), np.asarray(X, dtype=float))
        predictions = self.fit.predict(basis_matrix)
        if self.log_scaled_target:
            return np.power(10.0, predictions)
        return predictions

    def predict_transformed(self, X: np.ndarray) -> np.ndarray:
        """Evaluate in the (possibly log-scaled) training domain."""
        basis_matrix = evaluate_basis_matrix(list(self.bases), np.asarray(X, dtype=float))
        return self.fit.predict(basis_matrix)

    # ------------------------------------------------------------------
    def expression(self, precision: int = 4) -> str:
        """Readable model expression, e.g. ``90.5 + 190.6 * id1 / vsg1 + ...``.

        For a log-scaled target the expression is wrapped in ``10^(...)`` to
        show the model in its true form, as the paper does for ``fu``.
        """
        from repro.core.weights import format_number

        parts = [format_number(self.fit.intercept, precision)]
        for coefficient, basis in zip(self.fit.coefficients, self.bases, strict=True):
            if coefficient == 0.0:
                continue
            sign = "-" if coefficient < 0 else "+"
            parts.append(f"{sign} {format_number(abs(coefficient), precision)} * "
                         f"{basis.render(self.variable_names)}")
        body = " ".join(parts)
        if self.log_scaled_target:
            return f"10^( {body} )"
        return body

    def used_variables(self) -> Tuple[str, ...]:
        """Design variables that actually appear in the model.

        The paper highlights that each expression contains only a (sometimes
        small) subset of the design variables; this is how that subset is
        obtained programmatically.
        """
        used = set()
        for coefficient, basis in zip(self.fit.coefficients, self.bases, strict=True):
            if coefficient == 0.0:
                continue
            for vc in basis.variable_combos():
                for index in vc.used_variables():
                    used.add(self.variable_names[index])
        return tuple(name for name in self.variable_names if name in used)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SymbolicModel({self.target_name}: train={self.train_error_percent:.2f}%, "
                f"test={self.test_error_percent:.2f}%, complexity={self.complexity:.1f}, "
                f"bases={self.n_bases})")


class TradeoffSet:
    """An error-vs-complexity trade-off: a set of :class:`SymbolicModel`.

    Models are kept sorted by increasing complexity (and increasing training
    error as a tie break).
    """

    def __init__(self, models: Sequence[SymbolicModel],
                 deduplicate: bool = True) -> None:
        ordered = sorted(models, key=lambda m: (m.complexity, m.train_error))
        if deduplicate:
            seen = set()
            unique: List[SymbolicModel] = []
            for model in ordered:
                key = model.expression()
                if key in seen:
                    continue
                seen.add(key)
                unique.append(model)
            ordered = unique
        self._models: List[SymbolicModel] = ordered

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._models)

    def __iter__(self) -> Iterator[SymbolicModel]:
        return iter(self._models)

    def __getitem__(self, index: int) -> SymbolicModel:
        return self._models[index]

    @property
    def models(self) -> Tuple[SymbolicModel, ...]:
        return tuple(self._models)

    @property
    def is_empty(self) -> bool:
        return not self._models

    # ------------------------------------------------------------------
    def complexities(self) -> np.ndarray:
        return np.array([m.complexity for m in self._models])

    def train_errors(self) -> np.ndarray:
        return np.array([m.train_error for m in self._models])

    def test_errors(self) -> np.ndarray:
        return np.array([m.test_error for m in self._models])

    def n_bases(self) -> np.ndarray:
        return np.array([m.n_bases for m in self._models])

    # ------------------------------------------------------------------
    def train_tradeoff(self) -> "TradeoffSet":
        """Models nondominated in (training error, complexity)."""
        return TradeoffSet(nondominated_filter(
            self._models, key=lambda m: (m.train_error, m.complexity)))

    def test_tradeoff(self) -> "TradeoffSet":
        """Models nondominated in (testing error, complexity).

        This is the paper's final filtering step (rightmost column of
        Figure 3); models without testing error are dropped.  Every
        ``test_error`` here is the paper's qtc -- normalized by the
        *training*-data range (see :meth:`SymbolicModel.from_individual`), so
        filtering compares like with like.
        """
        with_test = [m for m in self._models if np.isfinite(m.test_error)]
        return TradeoffSet(nondominated_filter(
            with_test, key=lambda m: (m.test_error, m.complexity)))

    def within_error(self, max_train_error: float,
                     max_test_error: Optional[float] = None) -> "TradeoffSet":
        """Models with train (and optionally test) error below the thresholds.

        With both thresholds at 0.10 this answers the paper's Table I
        question: "what are all the symbolic models that provide less than
        10% error in both training and testing data?"
        """
        selected = []
        for model in self._models:
            if model.train_error > max_train_error:
                continue
            if max_test_error is not None:
                if not np.isfinite(model.test_error) or model.test_error > max_test_error:
                    continue
            selected.append(model)
        return TradeoffSet(selected)

    def simplest(self) -> SymbolicModel:
        """The lowest-complexity model (raises on an empty set)."""
        if not self._models:
            raise ValueError("trade-off set is empty")
        return self._models[0]

    def most_accurate(self, by: str = "train") -> SymbolicModel:
        """The model with the lowest training (or testing) error.

        Ties are broken towards the lower-complexity model, so a perfect fit
        never hides behind a needlessly complex duplicate.
        """
        if not self._models:
            raise ValueError("trade-off set is empty")
        if by == "train":
            return min(self._models, key=lambda m: (m.train_error, m.complexity))
        if by == "test":
            candidates = [m for m in self._models if np.isfinite(m.test_error)]
            if not candidates:
                raise ValueError("no model has a testing error")
            return min(candidates, key=lambda m: (m.test_error, m.complexity))
        raise ValueError("by must be 'train' or 'test'")

    def closest_train_error(self, target_error: float) -> SymbolicModel:
        """Model whose training error is closest to ``target_error``.

        Used for the Figure 4 comparison, where a CAFFEINE model is picked by
        fixing its training error to what the posynomial achieved.
        """
        if not self._models:
            raise ValueError("trade-off set is empty")
        return min(self._models, key=lambda m: abs(m.train_error - target_error))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TradeoffSet(n_models={len(self._models)})"
