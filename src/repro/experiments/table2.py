"""Table II: the sequence of phase-margin models of decreasing error.

The paper examines how the PM expression is refined as complexity grows: a
constant (~90 degrees) already gives a few percent test error, and each more
complex model injects additional basis functions (current ratios,
drive-voltage ratios of matched devices) that capture second-order effects.
:func:`run_table2` reproduces that listing from the testing-error trade-off
of a CAFFEINE run on PM.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from repro.core.engine import CaffeineResult
from repro.core.model import SymbolicModel, TradeoffSet
from repro.core.report import models_table
from repro.core.settings import CaffeineSettings
from repro.experiments.setup import OtaDatasets, generate_ota_datasets, \
    run_caffeine_for_target

__all__ = ["Table2Result", "run_table2"]


@dataclasses.dataclass(frozen=True)
class Table2Result:
    """The ordered PM model sequence plus the underlying run."""

    target: str
    models: Tuple[SymbolicModel, ...]
    result: CaffeineResult

    @property
    def n_models(self) -> int:
        return len(self.models)

    def errors_decrease_with_complexity(self) -> bool:
        """True when training error is non-increasing along the sequence."""
        errors = [m.train_error for m in self.models]
        return all(earlier >= later - 1e-12
                   for earlier, later in zip(errors, errors[1:], strict=False))

    def render(self) -> str:
        return models_table(
            TradeoffSet(self.models),
            title=f"Table II: CAFFEINE-generated models of {self.target}, "
                  "in order of decreasing error and increasing complexity")


def run_table2(datasets: Optional[OtaDatasets] = None,
               settings: Optional[CaffeineSettings] = None,
               target: str = "PM",
               result: Optional[CaffeineResult] = None,
               column_cache_path: Optional[str] = None) -> Table2Result:
    """Regenerate Table II (by default for the phase margin).

    A pre-computed CAFFEINE result may be passed to avoid re-running the
    evolutionary search; otherwise one Session-backed run is made
    (``column_cache_path`` warm-starts it from a persistent column cache).
    The listed models are those on the testing-error trade-off (the
    paper's "models of most interest"), ordered from the simplest/least
    accurate to the most complex/most accurate.
    """
    if result is None:
        datasets = datasets if datasets is not None else generate_ota_datasets()
        settings = settings if settings is not None else CaffeineSettings()
        result = run_caffeine_for_target(datasets, target, settings,
                                         column_cache_path=column_cache_path)
    source = result.test_tradeoff if len(result.test_tradeoff) > 0 else result.tradeoff
    ordered = sorted(source, key=lambda m: (m.complexity, -m.train_error))
    return Table2Result(target=target, models=tuple(ordered), result=result)
