"""Figure 3: error / complexity trade-offs for every OTA performance.

For each performance goal the paper shows (left columns) the training error
``qwc``, testing error ``qtc`` and number of basis functions of every model
on the training-error-vs-complexity trade-off, and (rightmost column) only
the models that are also on the testing-error-vs-complexity trade-off.

:func:`run_figure3` runs CAFFEINE once per performance and returns the same
series; :meth:`Figure3Result.render` prints them as text tables, one per
performance, which is the benchmark harness' output.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.core.engine import CaffeineResult
from repro.core.report import tradeoff_table
from repro.core.settings import CaffeineSettings
from repro.experiments.setup import OtaDatasets, generate_ota_datasets, \
    session_for_targets

__all__ = ["Figure3Series", "Figure3Result", "run_figure3"]


@dataclasses.dataclass(frozen=True)
class Figure3Series:
    """The plotted series of one performance goal."""

    target: str
    complexity: Tuple[float, ...]
    train_error: Tuple[float, ...]
    test_error: Tuple[float, ...]
    n_bases: Tuple[int, ...]
    #: indices (into the arrays above) of models also on the test trade-off
    test_tradeoff_indices: Tuple[int, ...]

    @property
    def n_models(self) -> int:
        return len(self.complexity)

    @property
    def constant_model_train_error(self) -> float:
        """Training error of the least complex (ideally constant) model."""
        return self.train_error[0] if self.train_error else float("nan")

    @property
    def best_train_error(self) -> float:
        return min(self.train_error) if self.train_error else float("nan")


@dataclasses.dataclass(frozen=True)
class Figure3Result:
    """All per-performance series plus the underlying CAFFEINE results."""

    series: Mapping[str, Figure3Series]
    results: Mapping[str, CaffeineResult]
    settings: CaffeineSettings

    @property
    def targets(self) -> Tuple[str, ...]:
        return tuple(self.series.keys())

    def render(self) -> str:
        """Text rendering of the Figure 3 data."""
        blocks = []
        for target, series in self.series.items():
            result = self.results[target]
            blocks.append(tradeoff_table(
                result.tradeoff,
                title=f"Figure 3 [{target}] - training-error trade-off "
                      f"({series.n_models} models)"))
            blocks.append(tradeoff_table(
                result.test_tradeoff,
                title=f"Figure 3 [{target}] - testing-error trade-off "
                      f"({len(result.test_tradeoff)} models)"))
        return "\n\n".join(blocks)


def _series_from_result(target: str, result: CaffeineResult) -> Figure3Series:
    tradeoff = result.tradeoff
    test_models = set(id(m) for m in result.test_tradeoff)
    indices = tuple(i for i, model in enumerate(tradeoff)
                    if id(model) in test_models)
    return Figure3Series(
        target=target,
        complexity=tuple(float(c) for c in tradeoff.complexities()),
        train_error=tuple(float(e) for e in tradeoff.train_errors()),
        test_error=tuple(float(e) for e in tradeoff.test_errors()),
        n_bases=tuple(int(n) for n in tradeoff.n_bases()),
        test_tradeoff_indices=indices,
    )


def run_figure3(datasets: Optional[OtaDatasets] = None,
                settings: Optional[CaffeineSettings] = None,
                targets: Optional[Sequence[str]] = None,
                column_cache_path: Optional[str] = None,
                jobs: int = 1,
                checkpoint_path: Optional[str] = None,
                checkpoint_every: int = 1,
                resume: bool = False) -> Figure3Result:
    """Regenerate the Figure 3 data (optionally for a subset of performances).

    The sweep is one :class:`~repro.core.session.Session` over the selected
    performances: all six evaluate on the same ``X``, so the session's
    shared (fingerprinted) column cache lets each run reuse the columns the
    previous ones computed.  ``column_cache_path`` persists that cache on
    disk so repeated sweeps -- and the other drivers pointed at the same
    path -- start warm; ``jobs > 1`` runs performances concurrently.
    ``checkpoint_path`` makes the sweep crash-safe and ``resume=True``
    warm-restarts it from there (finished performances return their stored
    results, interrupted ones continue bit-identically).  None of these
    change the models.
    """
    datasets = datasets if datasets is not None else generate_ota_datasets()
    settings = settings if settings is not None else CaffeineSettings()
    selected = tuple(targets) if targets is not None else datasets.performance_names

    outcome = session_for_targets(datasets, selected, settings,
                                  column_cache_path=column_cache_path,
                                  jobs=jobs,
                                  checkpoint_path=checkpoint_path,
                                  checkpoint_every=checkpoint_every,
                                  ).run(resume=resume).raise_failures()
    results: Dict[str, CaffeineResult] = dict(outcome.items())
    series: Dict[str, Figure3Series] = {
        target: _series_from_result(target, results[target])
        for target in selected
    }
    return Figure3Result(series=series, results=results, settings=settings)
