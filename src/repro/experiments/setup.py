"""The paper's experimental setup (Section 6.1) on the reproduction's substrate.

The paper models a high-speed CMOS OTA in a 0.7 um, 5 V technology with a
10 pF load, using the operating-point-driven formulation (13 design
variables).  Training data comes from a full orthogonal-hypercube DOE with
243 samples and relative step ``dx = 0.10``; testing data uses the same DOE
with ``dx = 0.03`` (so testing measures *interpolation* ability).  Six
performances are modeled: ``ALF``, ``fu`` (log10-scaled for fitting), ``PM``,
``voffset``, ``SRp`` and ``SRn``.

:func:`generate_ota_datasets` reproduces that data-generation flow on the
analytic OTA substrate; :func:`run_caffeine_for_target` wraps a CAFFEINE run
for one performance, applying the same scaling conventions as the paper.
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import Dict, Iterator, Mapping, Optional, Sequence, Tuple

from repro.circuits.ota import (
    OTA_NOMINAL_POINT,
    OTA_PERFORMANCE_NAMES,
    OTA_VARIABLE_NAMES,
    SymmetricalOta,
    simulate_ota_performances,
)
from repro.core.cache_store import ColumnCacheStore
from repro.core.engine import CaffeineResult, run_caffeine
from repro.core.evaluation import BasisColumnCache
from repro.core.problem import Problem
from repro.core.session import Session, SessionCallback
from repro.core.settings import CaffeineSettings
from repro.data.dataset import Dataset, train_test_from_doe
from repro.doe.sampling import DoePlan

__all__ = ["OtaDatasets", "generate_ota_datasets", "run_caffeine_for_target",
           "problems_for_targets", "session_for_targets",
           "shared_column_cache", "persistent_shared_cache",
           "DEFAULT_TRAIN_DX", "DEFAULT_TEST_DX", "DEFAULT_N_RUNS"]

#: Paper values: training DOE step, testing DOE step, number of DOE runs.
DEFAULT_TRAIN_DX = 0.10
DEFAULT_TEST_DX = 0.03
DEFAULT_N_RUNS = 243

#: Performances whose target is log10-scaled before fitting (the paper: fu).
LOG_SCALED_TARGETS: Tuple[str, ...] = ("fu",)


@dataclasses.dataclass(frozen=True)
class OtaDatasets:
    """Train/test datasets of all six OTA performances."""

    train: Mapping[str, Dataset]
    test: Mapping[str, Dataset]
    train_dx: float
    test_dx: float

    @property
    def performance_names(self) -> Tuple[str, ...]:
        return tuple(self.train.keys())

    def for_target(self, target: str) -> Tuple[Dataset, Dataset]:
        """(train, test) datasets for one performance, cleaned and validated."""
        if target not in self.train:
            raise KeyError(f"unknown performance {target!r}; "
                           f"known: {sorted(self.train)}")
        return train_test_from_doe(self.train[target], self.test[target])

    def summary(self) -> str:
        lines = [f"OTA datasets (train dx={self.train_dx}, test dx={self.test_dx}):"]
        for name in self.performance_names:
            train, test = self.for_target(name)
            lines.append(f"  {name:8s}: {train.n_samples} train / "
                         f"{test.n_samples} test samples"
                         f"{' (log10-scaled)' if train.log_scaled else ''}")
        return "\n".join(lines)


def _datasets_from_plan(plan: DoePlan, ota: SymmetricalOta,
                        log_scaled: Sequence[str]) -> Dict[str, Dataset]:
    performances = simulate_ota_performances(plan.points, plan.variable_names,
                                              ota=ota)
    datasets: Dict[str, Dataset] = {}
    for name in OTA_PERFORMANCE_NAMES:
        dataset = Dataset(
            X=plan.points,
            y=performances[name],
            variable_names=plan.variable_names,
            target_name=name,
        ).drop_nonfinite()
        if name in log_scaled:
            dataset = dataset.log10_target()
        datasets[name] = dataset
    return datasets


def generate_ota_datasets(train_dx: float = DEFAULT_TRAIN_DX,
                          test_dx: float = DEFAULT_TEST_DX,
                          n_runs: int = DEFAULT_N_RUNS,
                          nominal: Optional[Mapping[str, float]] = None,
                          ota: Optional[SymmetricalOta] = None) -> OtaDatasets:
    """Generate the paper-style training and testing datasets.

    The training DOE uses the (larger) relative step ``train_dx`` and the
    testing DOE the (smaller) ``test_dx``, so -- as in the paper -- testing
    error measures how well models interpolate inside the training hypercube.
    """
    if train_dx <= 0 or test_dx <= 0:
        raise ValueError("DOE steps must be positive")
    nominal_point = dict(OTA_NOMINAL_POINT if nominal is None else nominal)
    missing = set(OTA_VARIABLE_NAMES) - set(nominal_point)
    if missing:
        raise ValueError(f"nominal point is missing variables: {sorted(missing)}")
    ota = ota if ota is not None else SymmetricalOta()

    train_plan = DoePlan.orthogonal(nominal_point, dx=train_dx, n_runs=n_runs)
    test_plan = DoePlan.orthogonal(nominal_point, dx=test_dx, n_runs=n_runs)
    return OtaDatasets(
        train=_datasets_from_plan(train_plan, ota, LOG_SCALED_TARGETS),
        test=_datasets_from_plan(test_plan, ota, LOG_SCALED_TARGETS),
        train_dx=train_dx,
        test_dx=test_dx,
    )


def shared_column_cache(settings: Optional[CaffeineSettings] = None
                        ) -> BasisColumnCache:
    """A basis-column cache sized for sharing across multi-target drivers.

    The six OTA performances evaluate their basis functions on the *same*
    training ``X`` (only ``y`` differs), and column-cache keys carry a
    dataset fingerprint -- so one cache handed to every
    :func:`run_caffeine_for_target` call lets later targets reuse the
    columns earlier targets already evaluated, making the column side of a
    six-target sweep roughly six times cheaper.  Targets whose cleaned
    datasets end up with different ``X`` (e.g. rows dropped for one
    performance only) are isolated automatically by the fingerprint.
    """
    settings = settings if settings is not None else CaffeineSettings()
    return BasisColumnCache(settings.resolved_basis_cache_size())


@contextlib.contextmanager
def persistent_shared_cache(settings: Optional[CaffeineSettings] = None,
                            column_cache_path: Optional[str] = None
                            ) -> Iterator[BasisColumnCache]:
    """A shared column cache, optionally warm-started from / saved to disk.

    The multi-target experiment drivers run their whole sweep inside this
    context: with a ``column_cache_path`` the cache is pre-loaded from the
    store before the first run (a missing or damaged file degrades to a
    cold start) and written back -- now containing every column the sweep
    computed -- when the sweep finishes without raising.  With no path this
    is exactly :func:`shared_column_cache`.
    """
    cache = shared_column_cache(settings)
    store = (ColumnCacheStore(column_cache_path)
             if column_cache_path is not None else None)
    if store is not None:
        store.load_into(cache)
    yield cache
    if store is not None:
        store.save(cache)


def problems_for_targets(datasets: OtaDatasets,
                         targets: Optional[Sequence[str]] = None
                         ) -> Tuple[Problem, ...]:
    """The paper's sweep as :class:`Problem` objects, one per performance.

    This is the bridge from the OTA substrate to the generic
    Problem/Session API: each problem packages one performance's cleaned
    train/test pair under the performance's name, ready for a
    :class:`~repro.core.session.Session` (serial or ``jobs > 1``).
    """
    selected = (tuple(targets) if targets is not None
                else datasets.performance_names)
    problems = []
    seen = set()
    for target in selected:
        if target in seen:
            # Repeated CLI targets ("--targets PM PM") mean one run of PM,
            # as the pre-Session drivers keyed results by name.
            continue
        seen.add(target)
        train, test = datasets.for_target(target)
        problems.append(Problem(train=train, test=test, name=target))
    return tuple(problems)


def session_for_targets(datasets: OtaDatasets,
                        targets: Optional[Sequence[str]] = None,
                        settings: Optional[CaffeineSettings] = None,
                        column_cache_path: Optional[str] = None,
                        jobs: int = 1,
                        callbacks: Sequence[SessionCallback] = (),
                        checkpoint_path: Optional[str] = None,
                        checkpoint_every: int = 1,
                        timeout: Optional[float] = None,
                        retries: int = 1) -> Session:
    """A ready-to-run :class:`Session` over the selected OTA performances.

    All experiment drivers build their sweeps through here: the six
    performances evaluate on the same ``X``, so the session's shared
    (fingerprinted, optionally persistent) column cache makes the column
    side of a sweep roughly six times cheaper -- and ``jobs > 1`` runs
    performances concurrently with identical results.

    ``checkpoint_path`` makes the sweep crash-safe: every run snapshots its
    generation boundaries (and its final result) to a
    :class:`~repro.core.cache_store.RunCheckpointStore` there, so
    ``session.run(resume=True)`` after a crash or Ctrl-C skips finished
    performances and continues in-flight ones bit-identically.  ``timeout``
    and ``retries`` bound per-performance wall-clock and retry crashed
    workers when ``jobs > 1``.
    """
    return Session(problems_for_targets(datasets, targets),
                   settings=settings, jobs=jobs,
                   column_cache_path=column_cache_path,
                   callbacks=callbacks,
                   checkpoint_path=checkpoint_path,
                   checkpoint_every=checkpoint_every,
                   timeout=timeout, retries=retries)


def run_caffeine_for_target(datasets: OtaDatasets, target: str,
                            settings: Optional[CaffeineSettings] = None,
                            column_cache: Optional[BasisColumnCache] = None,
                            column_cache_path: Optional[str] = None
                            ) -> CaffeineResult:
    """Run CAFFEINE for one OTA performance with the paper's conventions.

    .. deprecated:: 1.1
        A compatibility shim over the Problem/Session API (bit-for-bit
        identical; see :func:`problems_for_targets` /
        :func:`session_for_targets` for the preferred multi-run form).

    ``column_cache`` (see :func:`shared_column_cache`) may be shared across
    the six performances, and ``column_cache_path`` persists columns across
    processes (see :func:`repro.core.engine.run_caffeine`); neither changes
    the models, only the wall-clock time of every run after the first.
    """
    train, test = datasets.for_target(target)
    return run_caffeine(train, test, settings=settings,
                        column_cache=column_cache,
                        column_cache_path=column_cache_path)
