"""Experiment drivers that regenerate the paper's tables and figures.

Each module corresponds to one artifact of the paper's evaluation section:

* :mod:`repro.experiments.setup`    -- the common experimental setup
  (Section 6.1): OTA + orthogonal-hypercube DOE -> train/test datasets;
* :mod:`repro.experiments.figure3`  -- error/complexity trade-off curves;
* :mod:`repro.experiments.table1`   -- models under 10 % train and test error;
* :mod:`repro.experiments.table2`   -- the PM model sequence;
* :mod:`repro.experiments.figure4`  -- CAFFEINE vs posynomial comparison;
* :mod:`repro.experiments.ablation` -- extensions: grammar / multi-objective
  ablations against plain GP.

The benchmark harness under ``benchmarks/`` simply calls these drivers with
reduced budgets and prints the same rows/series the paper reports;
``EXPERIMENTS.md`` records the measured numbers next to the paper's.
"""

from repro.experiments.setup import (
    OtaDatasets,
    generate_ota_datasets,
    persistent_shared_cache,
    run_caffeine_for_target,
    shared_column_cache,
)
from repro.experiments.figure3 import Figure3Result, run_figure3
from repro.experiments.table1 import Table1Result, run_table1
from repro.experiments.table2 import Table2Result, run_table2
from repro.experiments.figure4 import Figure4Result, run_figure4
from repro.experiments.ablation import AblationResult, run_ablation

__all__ = [
    "OtaDatasets",
    "generate_ota_datasets",
    "run_caffeine_for_target",
    "shared_column_cache",
    "persistent_shared_cache",
    "Figure3Result",
    "run_figure3",
    "Table1Result",
    "run_table1",
    "Table2Result",
    "run_table2",
    "Figure4Result",
    "run_figure4",
    "AblationResult",
    "run_ablation",
]
