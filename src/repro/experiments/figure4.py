"""Figure 4: CAFFEINE vs posynomial prediction quality.

The paper fits posynomial models (Daems et al.) to the same data and compares
testing errors.  The selection rule for the CAFFEINE side is the paper's: for
each performance, pick from the CAFFEINE trade-off the model whose *training*
error matches the posynomial's training error, then compare *testing* errors.
The paper's finding: CAFFEINE testing errors are 2x-5x lower than the
posynomial's (except voffset, where both are below 1 %), and -- unlike the
posynomial -- CAFFEINE's testing error is typically lower than its training
error on this interpolative test set.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.engine import CaffeineResult
from repro.core.model import SymbolicModel
from repro.core.report import comparison_table
from repro.core.settings import CaffeineSettings
from repro.experiments.setup import OtaDatasets, generate_ota_datasets, \
    session_for_targets
from repro.posynomial.model import PosynomialModel, fit_posynomial
from repro.posynomial.template import PosynomialTemplate

__all__ = ["Figure4Row", "Figure4Result", "run_figure4"]


@dataclasses.dataclass(frozen=True)
class Figure4Row:
    """Per-performance comparison entry."""

    target: str
    caffeine_model: SymbolicModel
    posynomial_model: PosynomialModel

    @property
    def caffeine_train(self) -> float:
        return self.caffeine_model.train_error

    @property
    def caffeine_test(self) -> float:
        return self.caffeine_model.test_error

    @property
    def posynomial_train(self) -> float:
        return self.posynomial_model.train_error

    @property
    def posynomial_test(self) -> float:
        return self.posynomial_model.test_error

    @property
    def test_error_ratio(self) -> float:
        """posynomial test error / CAFFEINE test error (>1 means CAFFEINE wins)."""
        if self.caffeine_test <= 0 or not np.isfinite(self.caffeine_test):
            return float("nan")
        return self.posynomial_test / self.caffeine_test

    def as_dict(self) -> Dict[str, float]:
        return {
            "target": self.target,
            "caffeine_train": self.caffeine_train,
            "caffeine_test": self.caffeine_test,
            "posynomial_train": self.posynomial_train,
            "posynomial_test": self.posynomial_test,
        }


@dataclasses.dataclass(frozen=True)
class Figure4Result:
    """All comparison rows plus the underlying CAFFEINE results."""

    rows: Tuple[Figure4Row, ...]
    results: Mapping[str, CaffeineResult]

    def row(self, target: str) -> Figure4Row:
        for row in self.rows:
            if row.target == target:
                return row
        raise KeyError(f"no Figure 4 row for {target!r}")

    def caffeine_wins(self) -> Tuple[str, ...]:
        """Performances where CAFFEINE's testing error beats the posynomial's."""
        return tuple(row.target for row in self.rows
                     if np.isfinite(row.test_error_ratio)
                     and row.test_error_ratio > 1.0)

    def render(self) -> str:
        return comparison_table(
            [row.as_dict() for row in self.rows],
            title="Figure 4: CAFFEINE vs posynomial (errors in %, "
                  "'test ratio' = posynomial test error / CAFFEINE test error)")


def select_caffeine_model(result: CaffeineResult,
                          posynomial: PosynomialModel) -> SymbolicModel:
    """Paper's selection rule: match the posynomial's training error.

    Among the CAFFEINE models that reach (or beat) the posynomial's training
    error, the one with the best testing error is compared.  If none reaches
    it (the paper's voffset case), the model with the lowest testing error is
    picked instead -- the paper then compares testing errors directly.
    """
    tradeoff = result.tradeoff
    reaching = tradeoff.within_error(max_train_error=posynomial.train_error)
    if not reaching.is_empty:
        with_test = [m for m in reaching if np.isfinite(m.test_error)]
        if with_test:
            return min(with_test, key=lambda m: m.test_error)
        return reaching.simplest()
    candidates = [m for m in tradeoff if np.isfinite(m.test_error)]
    if candidates:
        return min(candidates, key=lambda m: m.test_error)
    return tradeoff.closest_train_error(posynomial.train_error)


def run_figure4(datasets: Optional[OtaDatasets] = None,
                settings: Optional[CaffeineSettings] = None,
                targets: Optional[Sequence[str]] = None,
                template: Optional[PosynomialTemplate] = None,
                results: Optional[Mapping[str, CaffeineResult]] = None,
                column_cache_path: Optional[str] = None,
                jobs: int = 1,
                checkpoint_path: Optional[str] = None,
                checkpoint_every: int = 1,
                resume: bool = False) -> Figure4Result:
    """Regenerate the Figure 4 comparison.

    The CAFFEINE side of the comparison runs as one
    :class:`~repro.core.session.Session` sweep over the targets missing
    from ``results`` (``column_cache_path`` persists its shared column
    cache, ``jobs > 1`` runs targets concurrently); the posynomial fits
    are cheap and run inline.
    """
    datasets = datasets if datasets is not None else generate_ota_datasets()
    settings = settings if settings is not None else CaffeineSettings()
    selected = tuple(targets) if targets is not None else datasets.performance_names

    all_results: Dict[str, CaffeineResult] = dict(results or {})
    missing = tuple(t for t in selected if t not in all_results)
    if missing:
        outcome = session_for_targets(datasets, missing, settings,
                                      column_cache_path=column_cache_path,
                                      jobs=jobs,
                                      checkpoint_path=checkpoint_path,
                                      checkpoint_every=checkpoint_every,
                                      ).run(resume=resume).raise_failures()
        all_results.update(outcome.items())
    rows = []
    for target in selected:
        train, test = datasets.for_target(target)
        posynomial = fit_posynomial(train, test, template=template)
        caffeine_model = select_caffeine_model(all_results[target],
                                               posynomial)
        rows.append(Figure4Row(target=target,
                               caffeine_model=caffeine_model,
                               posynomial_model=posynomial))
    return Figure4Result(rows=tuple(rows), results=all_results)
