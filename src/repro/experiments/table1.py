"""Table I: compact symbolic models under 10 % train and test error.

The paper asks "what are all the symbolic models that provide less than 10 %
error in both training and testing data?" and reports, for each of the six
performances, the simplest such model (with ``fu`` converted back to its true
form ``10^(...)``).  :func:`run_table1` reproduces that selection.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.core.engine import CaffeineResult
from repro.core.model import SymbolicModel
from repro.core.report import format_percent
from repro.core.settings import CaffeineSettings
from repro.experiments.setup import OtaDatasets, generate_ota_datasets, \
    session_for_targets

__all__ = ["Table1Row", "Table1Result", "run_table1"]

#: The error threshold of the paper's Table I (10 %, expressed as a fraction).
DEFAULT_ERROR_TARGET = 0.10


@dataclasses.dataclass(frozen=True)
class Table1Row:
    """One row of Table I."""

    target: str
    error_target: float
    model: Optional[SymbolicModel]

    @property
    def satisfied(self) -> bool:
        """True when a model below the error target exists."""
        return self.model is not None

    @property
    def expression(self) -> str:
        return self.model.expression() if self.model is not None else "<none>"

    @property
    def n_bases(self) -> int:
        return self.model.n_bases if self.model is not None else 0

    def render(self) -> str:
        if self.model is None:
            return (f"{self.target:>8}  target {format_percent(self.error_target)}%  "
                    f"-- no model met the target --")
        return (f"{self.target:>8}  target {format_percent(self.error_target)}%  "
                f"train {format_percent(self.model.train_error):>6}%  "
                f"test {format_percent(self.model.test_error):>6}%  "
                f"{self.expression}")


@dataclasses.dataclass(frozen=True)
class Table1Result:
    """All Table I rows plus the underlying CAFFEINE results."""

    rows: Tuple[Table1Row, ...]
    results: Mapping[str, CaffeineResult]
    error_target: float

    def row(self, target: str) -> Table1Row:
        for row in self.rows:
            if row.target == target:
                return row
        raise KeyError(f"no Table I row for {target!r}")

    def render(self) -> str:
        header = (f"Table I: simplest models with < "
                  f"{format_percent(self.error_target)}% train and test error")
        return "\n".join([header] + [row.render() for row in self.rows])


def select_table1_model(result: CaffeineResult,
                        error_target: float = DEFAULT_ERROR_TARGET
                        ) -> Optional[SymbolicModel]:
    """The simplest model with both errors under ``error_target`` (or None)."""
    eligible = result.tradeoff.within_error(error_target, error_target)
    if eligible.is_empty:
        return None
    return eligible.simplest()


def run_table1(datasets: Optional[OtaDatasets] = None,
               settings: Optional[CaffeineSettings] = None,
               targets: Optional[Sequence[str]] = None,
               error_target: float = DEFAULT_ERROR_TARGET,
               results: Optional[Mapping[str, CaffeineResult]] = None,
               column_cache_path: Optional[str] = None,
               jobs: int = 1,
               checkpoint_path: Optional[str] = None,
               checkpoint_every: int = 1,
               resume: bool = False) -> Table1Result:
    """Regenerate Table I.

    ``results`` may carry pre-computed CAFFEINE runs (e.g. shared with the
    Figure 3 driver) keyed by performance name; only the missing targets
    run here, as one :class:`~repro.core.session.Session` sweep
    (``column_cache_path`` persists its shared column cache, ``jobs > 1``
    runs targets concurrently -- see
    :func:`repro.experiments.setup.session_for_targets`).
    """
    datasets = datasets if datasets is not None else generate_ota_datasets()
    settings = settings if settings is not None else CaffeineSettings()
    selected = tuple(targets) if targets is not None else datasets.performance_names

    all_results: Dict[str, CaffeineResult] = dict(results or {})
    missing = tuple(t for t in selected if t not in all_results)
    if missing:
        outcome = session_for_targets(datasets, missing, settings,
                                      column_cache_path=column_cache_path,
                                      jobs=jobs,
                                      checkpoint_path=checkpoint_path,
                                      checkpoint_every=checkpoint_every,
                                      ).run(resume=resume).raise_failures()
        all_results.update(outcome.items())
    rows = []
    for target in selected:
        model = select_table1_model(all_results[target], error_target)
        rows.append(Table1Row(target=target, error_target=error_target,
                              model=model))
    return Table1Result(rows=tuple(rows), results=all_results,
                        error_target=error_target)
