"""Ablation experiments (extensions beyond the paper's evaluation).

The paper argues that two ingredients make template-free symbolic modeling
work: the canonical-form grammar (interpretability without losing
expressiveness) and the multi-objective error/complexity search.  These
ablations quantify both on the OTA data:

* **plain GP vs CAFFEINE** -- an unrestricted single-tree GP baseline with a
  comparable evaluation budget; its models are larger (node count) and no
  more accurate on test data;
* **restricted grammars** -- CAFFEINE with the function set cut down to
  rationals or polynomials, measuring what the nonlinear operators buy;
* **single-objective CAFFEINE** -- error-only search (complexity ignored),
  which shows the trade-off pressure is what keeps models compact.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from repro.core.engine import CaffeineResult
from repro.core.functions import polynomial_function_set, rational_function_set
from repro.core.problem import Problem
from repro.core.session import Session
from repro.core.settings import CaffeineSettings
from repro.experiments.setup import OtaDatasets, generate_ota_datasets
from repro.gp.regression import PlainGPResult, PlainGPSettings, run_plain_gp

__all__ = ["AblationEntry", "AblationResult", "run_ablation"]


@dataclasses.dataclass(frozen=True)
class AblationEntry:
    """Summary of one modeling approach on one target."""

    approach: str
    target: str
    train_error: float
    test_error: float
    model_size: float
    expression: str

    def render(self) -> str:
        return (f"{self.approach:>22} [{self.target}]  "
                f"train {100 * self.train_error:6.2f}%  "
                f"test {100 * self.test_error:6.2f}%  "
                f"size {self.model_size:6.1f}  {self.expression[:70]}")


@dataclasses.dataclass(frozen=True)
class AblationResult:
    """All ablation entries for one target."""

    target: str
    entries: Tuple[AblationEntry, ...]

    def entry(self, approach: str) -> AblationEntry:
        for item in self.entries:
            if item.approach == approach:
                return item
        raise KeyError(f"no ablation entry for {approach!r}")

    def render(self) -> str:
        header = f"Ablation study on {self.target}"
        return "\n".join([header] + [entry.render() for entry in self.entries])


def _entry_from_caffeine(approach: str, target: str,
                         result: CaffeineResult) -> AblationEntry:
    model = result.best_model(by="test")
    return AblationEntry(
        approach=approach,
        target=target,
        train_error=model.train_error,
        test_error=model.test_error,
        model_size=float(sum(basis.n_nodes for basis in model.bases)),
        expression=model.expression(),
    )


def _entry_from_plain_gp(target: str, result: PlainGPResult) -> AblationEntry:
    best = result.best
    return AblationEntry(
        approach="plain GP (no grammar)",
        target=target,
        train_error=best.train_error,
        test_error=best.test_error,
        model_size=float(best.size),
        expression=best.expression(),
    )


def run_ablation(datasets: Optional[OtaDatasets] = None,
                 settings: Optional[CaffeineSettings] = None,
                 target: str = "PM",
                 include_single_objective: bool = True,
                 column_cache_path: Optional[str] = None,
                 jobs: int = 1,
                 checkpoint_path: Optional[str] = None,
                 checkpoint_every: int = 1,
                 resume: bool = False) -> AblationResult:
    """Run the ablation study for one OTA performance.

    The CAFFEINE variants run as one :class:`~repro.core.session.Session`
    of per-problem-settings :class:`~repro.core.problem.Problem`\\ s
    (``column_cache_path`` persists the shared column cache, ``jobs > 1``
    runs variants concurrently); the plain-GP baseline runs inline.
    """
    datasets = datasets if datasets is not None else generate_ota_datasets()
    settings = settings if settings is not None else CaffeineSettings()
    train, test = datasets.for_target(target)

    # The four CAFFEINE variants evaluate on the same X; the session's
    # shared (fingerprinted) column cache lets runs with the same function
    # set (full grammar and error-only) reuse each other's columns.  The
    # rational/polynomial variants hash to their own namespaces -- cache
    # keys identify operators by name, so cross-set reuse is only enabled
    # between provably identical operator bindings.
    variants = [
        Problem(train=train, test=test, name="CAFFEINE (full grammar)",
                settings=settings),
        Problem(train=train, test=test, name="CAFFEINE (rationals)",
                settings=settings.copy(function_set=rational_function_set())),
        Problem(train=train, test=test, name="CAFFEINE (polynomials)",
                settings=settings.copy(
                    function_set=polynomial_function_set())),
    ]
    if include_single_objective:
        # Error-only pressure: make complexity essentially free so that
        # the multi-objective machinery degenerates to single-objective
        # search.
        variants.append(Problem(
            train=train, test=test, name="CAFFEINE (error-only)",
            settings=settings.copy(basis_function_cost=0.0,
                                   vc_exponent_cost=0.0)))
    outcome = Session(variants, settings=settings, jobs=jobs,
                      column_cache_path=column_cache_path,
                      checkpoint_path=checkpoint_path,
                      checkpoint_every=checkpoint_every,
                      ).run(resume=resume).raise_failures()
    entries = [_entry_from_caffeine(name, target, result)
               for name, result in outcome.items()]

    gp_settings = PlainGPSettings(
        population_size=settings.population_size,
        n_generations=settings.n_generations,
        max_depth=settings.max_tree_depth,
        random_seed=settings.random_seed,
    )
    plain = run_plain_gp(train, test, gp_settings)
    entries.append(_entry_from_plain_gp(target, plain))

    return AblationResult(target=target, entries=tuple(entries))
