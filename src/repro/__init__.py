"""CAFFEINE reproduction: template-free symbolic models of analog circuits.

This package reproduces McConaghy, Eeckelaert & Gielen, *CAFFEINE:
Template-Free Symbolic Model Generation of Analog Circuits via Canonical Form
Functions and Genetic Programming* (DATE 2005), as a complete Python library:

* :mod:`repro.core` -- the CAFFEINE algorithm: canonical-form grammar,
  grammar-respecting genetic operators, NSGA-II error/complexity search,
  PRESS-based simplification;
* :mod:`repro.circuits` -- the data-generation substrate: square-law MOSFETs,
  MNA-based DC/AC analysis, and the symmetrical CMOS OTA whose six
  performances the paper models;
* :mod:`repro.doe` -- orthogonal-hypercube design-of-experiments sampling;
* :mod:`repro.data` -- datasets and the error metrics (qwc/qtc);
* :mod:`repro.posynomial` -- the posynomial baseline of the paper's Figure 4;
* :mod:`repro.gp` -- an unrestricted (template-free but grammar-free) GP
  baseline used for ablations;
* :mod:`repro.experiments` -- drivers that regenerate every table and figure
  of the paper's evaluation section.

Quick start::

    from repro import CaffeineSettings, run_caffeine
    from repro.experiments import generate_ota_datasets

    datasets = generate_ota_datasets()
    train, test = datasets.for_target("PM")
    result = run_caffeine(train, test, CaffeineSettings(population_size=60,
                                                        n_generations=25))
    print(result.best_model().expression())
"""

from repro.core import (
    CaffeineEngine,
    CaffeineResult,
    CaffeineSettings,
    FunctionSet,
    BasisColumnCache,
    ColumnCacheStore,
    GramPool,
    PopulationEvaluator,
    TreeCompiler,
    dataset_fingerprint,
    SymbolicModel,
    TradeoffSet,
    default_function_set,
    polynomial_function_set,
    rational_function_set,
    run_caffeine,
)
from repro.data import Dataset

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "run_caffeine",
    "CaffeineEngine",
    "CaffeineResult",
    "CaffeineSettings",
    "SymbolicModel",
    "TradeoffSet",
    "PopulationEvaluator",
    "BasisColumnCache",
    "ColumnCacheStore",
    "GramPool",
    "TreeCompiler",
    "dataset_fingerprint",
    "FunctionSet",
    "default_function_set",
    "rational_function_set",
    "polynomial_function_set",
    "Dataset",
]
