"""CAFFEINE reproduction: template-free symbolic models of analog circuits.

This package reproduces McConaghy, Eeckelaert & Gielen, *CAFFEINE:
Template-Free Symbolic Model Generation of Analog Circuits via Canonical Form
Functions and Genetic Programming* (DATE 2005), as a complete Python library:

* :mod:`repro.core` -- the CAFFEINE algorithm: canonical-form grammar,
  grammar-respecting genetic operators, NSGA-II error/complexity search,
  PRESS-based simplification, pluggable backend registries;
* :mod:`repro.circuits` -- the data-generation substrate: square-law MOSFETs,
  MNA-based DC/AC analysis, and the symmetrical CMOS OTA whose six
  performances the paper models;
* :mod:`repro.doe` -- orthogonal-hypercube design-of-experiments sampling;
* :mod:`repro.data` -- datasets and the error metrics (qwc/qtc);
* :mod:`repro.posynomial` -- the posynomial baseline of the paper's Figure 4;
* :mod:`repro.gp` -- an unrestricted (template-free but grammar-free) GP
  baseline used for ablations;
* :mod:`repro.experiments` -- drivers that regenerate every table and figure
  of the paper's evaluation section.

Quick start -- the sklearn-style facade fits any numeric dataset:

    >>> import numpy as np
    >>> from repro import SymbolicRegressor
    >>> rng = np.random.default_rng(0)
    >>> X = rng.uniform(0.5, 2.0, size=(40, 2))
    >>> y = 1.0 + 2.0 * X[:, 0] / X[:, 1]
    >>> est = SymbolicRegressor(population_size=20, n_generations=3,
    ...                         random_seed=0)
    >>> est = est.fit(X, y)
    >>> est.predict(X).shape
    (40,)
    >>> len(est.pareto_front_) >= 1   # the full error/complexity trade-off
    True

Multi-run orchestration -- a :class:`Session` runs a list of
:class:`Problem`\\ s (serially, or on a process pool with ``jobs=n``) over
one shared column cache:

    >>> from repro import CaffeineSettings, Problem, Session
    >>> problems = [Problem.from_arrays(X, y, target_name="t1"),
    ...             Problem.from_arrays(X, X[:, 0] ** 2, target_name="t2")]
    >>> settings = CaffeineSettings(population_size=16, n_generations=2,
    ...                             random_seed=0)
    >>> outcome = Session(problems, settings=settings).run()
    >>> outcome.names
    ('t1', 't2')
    >>> outcome["t1"].n_models >= 1
    True

Deployment -- freeze a fitted trade-off as a small versioned artifact
(:func:`save_front`, magic/version/sha256 envelope, atomic writes) and load
it back as a prediction-only :class:`~repro.core.artifact.FrozenFront`:
predictions are **bit-identical** to the originating run's models, but
loading reconstitutes only compiled prediction kernels -- no engine,
population or caches.  ``python -m repro serve artifact.caffeine`` answers
the same queries as a batched, stateless HTTP service (see the artifact
spec and serving guide in ``benchmarks/README.md``):

    >>> import os, tempfile
    >>> from repro import load_front
    >>> path = os.path.join(tempfile.mkdtemp(), "front.caffeine")
    >>> est.save(path) >= 1   # == save_front(est.result_, path)
    True
    >>> front = load_front(path)
    >>> bool(np.array_equal(front.predict(X), est.predict(X)))
    True
    >>> front.n_models == len(est.pareto_front_)
    True

Long sweeps are crash-safe and fault-tolerant: ``Session(...,
checkpoint_path="sweep.ckpt")`` snapshots every run's generation
boundaries (and final results) to a
:class:`~repro.core.cache_store.RunCheckpointStore`, so after a crash or
Ctrl-C ``session.resume()`` skips finished problems and continues
interrupted ones **bit-identically** from their last snapshot.  With
``jobs > 1`` a crashed, hung or raising worker is contained to its
problem -- retried with backoff, degraded to in-process execution, and
finally recorded as a structured
:class:`~repro.core.session.ProblemFailure` in
``SessionResult.failures`` while every other problem's result is
returned.  The fault-injection harness behind those guarantees lives in
:mod:`repro.core.faults` (``REPRO_FAULTS`` environment variable or
``CaffeineSettings.fault_injection``); see ``benchmarks/README.md`` for
the checkpoint/resume semantics and failure knobs.

The legacy one-call entry point :func:`run_caffeine` remains supported as
a bit-for-bit shim over the Session path; see the migration table in
``benchmarks/README.md``.  New column/fit/pareto/evaluation backends
register by name (:func:`repro.core.register_backend`) and every
``CaffeineSettings.*_backend`` field accepts registered names.

The invariants behind these guarantees (bit-identical reductions,
spawn-safe registration, crash-safe stores, seeded randomness) are
checked mechanically by :mod:`repro.analysis`, the project's AST-based
linter: ``python -m repro lint src/`` walks the tree, ``--list-rules``
and ``--explain <rule-id>`` document each rule's rationale and PR
provenance, and intentional exceptions carry inline
``# repro-lint: allow[<rule-id>] -- reason`` waivers.  CI gates on an
unwaived-finding-free ``src/``; see the "Project invariants" section of
``benchmarks/README.md``.
"""

from repro.core import (
    BACKEND_KINDS,
    BackendRegistry,
    CaffeineEngine,
    CaffeineResult,
    CaffeineSettings,
    FrontArtifactStore,
    FrozenFront,
    FunctionSet,
    BasisColumnCache,
    ColumnCacheStore,
    FileLock,
    GramPool,
    load_front,
    save_front,
    InjectedFault,
    PopulationEvaluator,
    Problem,
    ProblemFailure,
    ProgressPrinter,
    RunCheckpointStore,
    Session,
    SessionCallback,
    SessionResult,
    TreeCompiler,
    available_backends,
    backend_names,
    backend_registry,
    dataset_fingerprint,
    get_backend,
    register_backend,
    unregister_backend,
    SymbolicModel,
    TradeoffSet,
    default_function_set,
    polynomial_function_set,
    rational_function_set,
    run_caffeine,
)
from repro.data import Dataset
from repro.estimator import SymbolicRegressor

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # problem/session/facade API (preferred)
    "Problem",
    "Session",
    "SessionCallback",
    "SessionResult",
    "ProblemFailure",
    "ProgressPrinter",
    "InjectedFault",
    "SymbolicRegressor",
    # backend registries
    "BACKEND_KINDS",
    "BackendRegistry",
    "available_backends",
    "backend_names",
    "backend_registry",
    "get_backend",
    "register_backend",
    "unregister_backend",
    # engine layer (run_caffeine is the legacy shim)
    "run_caffeine",
    "CaffeineEngine",
    "CaffeineResult",
    "CaffeineSettings",
    "SymbolicModel",
    "TradeoffSet",
    "PopulationEvaluator",
    "BasisColumnCache",
    "ColumnCacheStore",
    "RunCheckpointStore",
    "FileLock",
    "GramPool",
    # deployment: frozen Pareto-front artifacts + HTTP serving
    "FrozenFront",
    "FrontArtifactStore",
    "save_front",
    "load_front",
    "TreeCompiler",
    "dataset_fingerprint",
    "FunctionSet",
    "default_function_set",
    "rational_function_set",
    "polynomial_function_set",
    "Dataset",
]
