"""Plain (canonical, unrestricted) genetic programming baseline.

Section 3 of the paper motivates CAFFEINE by the weaknesses of canonical GP:
evolved functions are notoriously complex and un-interpretable, and the
functional form is completely unrestricted.  This package provides exactly
that baseline -- a classic single-tree, grammar-free GP symbolic regressor --
so the ablation benchmarks can quantify what the canonical-form grammar and
the multi-objective search buy: comparable accuracy with far smaller,
structured models.
"""

from repro.gp.nodes import (
    ConstantNode,
    FunctionNode,
    GPNode,
    VariableNode,
    random_tree,
)
from repro.gp.regression import (
    PlainGPModel,
    PlainGPResult,
    PlainGPSettings,
    run_plain_gp,
)

__all__ = [
    "GPNode",
    "ConstantNode",
    "VariableNode",
    "FunctionNode",
    "random_tree",
    "PlainGPSettings",
    "PlainGPModel",
    "PlainGPResult",
    "run_plain_gp",
]
