"""Expression trees for the unrestricted GP baseline.

Unlike the canonical-form AST of :mod:`repro.core.expression`, these trees
have no structural constraints whatsoever: any operator can appear anywhere,
constants and variables are ordinary leaves, and nothing forces the model
into a sum-of-products shape.  That freedom is exactly what makes plain GP
results hard to read -- which is the point of keeping this baseline around.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["GPNode", "ConstantNode", "VariableNode", "FunctionNode",
           "GP_FUNCTIONS", "random_tree", "iter_tree", "replace_node"]


class GPNode:
    """Base class of unrestricted GP tree nodes."""

    def evaluate(self, X: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def clone(self) -> "GPNode":
        raise NotImplementedError

    def children(self) -> Tuple["GPNode", ...]:
        return ()

    @property
    def size(self) -> int:
        """Number of nodes in the subtree."""
        return 1 + sum(child.size for child in self.children())

    @property
    def depth(self) -> int:
        child_depths = [child.depth for child in self.children()]
        return 1 + (max(child_depths) if child_depths else 0)

    def render(self, variable_names: Sequence[str]) -> str:
        raise NotImplementedError


@dataclasses.dataclass
class ConstantNode(GPNode):
    """A numeric constant leaf."""

    value: float

    def evaluate(self, X: np.ndarray) -> np.ndarray:
        return np.full(np.asarray(X).shape[0], float(self.value))

    def clone(self) -> "ConstantNode":
        return ConstantNode(value=self.value)

    def render(self, variable_names: Sequence[str]) -> str:
        return f"{self.value:.4g}"


@dataclasses.dataclass
class VariableNode(GPNode):
    """A design-variable leaf."""

    index: int

    def evaluate(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        if not 0 <= self.index < X.shape[1]:
            raise IndexError(f"variable index {self.index} out of range")
        return X[:, self.index]

    def clone(self) -> "VariableNode":
        return VariableNode(index=self.index)

    def render(self, variable_names: Sequence[str]) -> str:
        return variable_names[self.index]


#: name -> (arity, vectorized implementation, format template)
GP_FUNCTIONS: Dict[str, Tuple[int, Callable[..., np.ndarray], str]] = {
    "add": (2, lambda a, b: a + b, "({0} + {1})"),
    "sub": (2, lambda a, b: a - b, "({0} - {1})"),
    "mul": (2, lambda a, b: a * b, "({0} * {1})"),
    "div": (2, lambda a, b: a / b, "({0} / {1})"),
    "neg": (1, lambda a: -a, "(-{0})"),
    "inv": (1, lambda a: 1.0 / a, "(1/{0})"),
    "sqrt": (1, lambda a: np.sqrt(a), "sqrt({0})"),
    "ln": (1, lambda a: np.log(a), "ln({0})"),
    "square": (1, lambda a: np.square(a), "({0})^2"),
    "sin": (1, lambda a: np.sin(a), "sin({0})"),
    "cos": (1, lambda a: np.cos(a), "cos({0})"),
}


@dataclasses.dataclass
class FunctionNode(GPNode):
    """An internal node applying one of :data:`GP_FUNCTIONS`."""

    name: str
    args: List[GPNode]

    def __post_init__(self) -> None:
        if self.name not in GP_FUNCTIONS:
            raise KeyError(f"unknown GP function {self.name!r}")
        arity = GP_FUNCTIONS[self.name][0]
        if len(self.args) != arity:
            raise ValueError(
                f"function {self.name!r} expects {arity} arguments, got {len(self.args)}")

    def evaluate(self, X: np.ndarray) -> np.ndarray:
        implementation = GP_FUNCTIONS[self.name][1]
        with np.errstate(all="ignore"):
            return implementation(*[arg.evaluate(X) for arg in self.args])

    def clone(self) -> "FunctionNode":
        return FunctionNode(name=self.name, args=[a.clone() for a in self.args])

    def children(self) -> Tuple[GPNode, ...]:
        return tuple(self.args)

    def render(self, variable_names: Sequence[str]) -> str:
        template = GP_FUNCTIONS[self.name][2]
        return template.format(*[a.render(variable_names) for a in self.args])


def random_tree(n_variables: int, max_depth: int, rng: np.random.Generator,
                grow: bool = True,
                function_names: Optional[Sequence[str]] = None) -> GPNode:
    """Random tree via the classic grow/full initialization methods."""
    if n_variables < 1:
        raise ValueError("n_variables must be >= 1")
    if max_depth < 1:
        raise ValueError("max_depth must be >= 1")
    names = list(function_names) if function_names is not None else list(GP_FUNCTIONS)

    def terminal() -> GPNode:
        if rng.random() < 0.6:
            return VariableNode(index=int(rng.integers(n_variables)))
        # repro-lint: allow[errstate] -- scalar constant draw, exponent bounded in [-2, 2]
        magnitude = 10.0 ** rng.uniform(-2, 2)
        sign = -1.0 if rng.random() < 0.5 else 1.0
        return ConstantNode(value=sign * magnitude)

    def build(depth: int) -> GPNode:
        if depth >= max_depth or (grow and rng.random() < 0.3):
            return terminal()
        name = names[int(rng.integers(len(names)))]
        arity = GP_FUNCTIONS[name][0]
        return FunctionNode(name=name, args=[build(depth + 1) for _ in range(arity)])

    return build(1)


def iter_tree(root: GPNode) -> List[GPNode]:
    """All nodes of a tree in pre-order."""
    nodes: List[GPNode] = []
    stack = [root]
    while stack:
        node = stack.pop()
        nodes.append(node)
        stack.extend(reversed(node.children()))
    return nodes


def replace_node(root: GPNode, target: GPNode, replacement: GPNode) -> GPNode:
    """Return a copy of ``root`` with ``target`` (by identity) replaced.

    If ``target`` is ``root`` itself, the replacement is returned directly.
    """
    if root is target:
        return replacement
    clone: GPNode
    if isinstance(root, FunctionNode):
        new_args = [replace_node(arg, target, replacement) for arg in root.args]
        return FunctionNode(name=root.name, args=new_args)
    return root.clone()
