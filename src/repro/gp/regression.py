"""Single-tree GP symbolic regression (the grammar-free baseline).

A deliberately classic setup: a population of unrestricted trees, fitness =
normalized RMS training error with a mild parsimony pressure, tournament
selection, subtree crossover and subtree mutation.  The run returns both the
best individual and the (error, size) front of the final population so that
ablation benchmarks can contrast plain GP's bloat against CAFFEINE's compact
canonical-form models.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.data.dataset import Dataset
from repro.data.metrics import error_normalization, relative_rmse
from repro.core.pareto import nondominated_filter
from repro.gp.nodes import (
    GPNode,
    iter_tree,
    random_tree,
    replace_node,
)

__all__ = ["PlainGPSettings", "PlainGPModel", "run_plain_gp"]


@dataclasses.dataclass
class PlainGPSettings:
    """Tunables of the plain-GP baseline."""

    population_size: int = 100
    n_generations: int = 40
    max_depth: int = 8
    tournament_size: int = 3
    p_crossover: float = 0.7
    p_mutation: float = 0.25
    #: parsimony coefficient: fitness = error + parsimony * size
    parsimony: float = 1e-4
    random_seed: Optional[int] = 0

    def __post_init__(self) -> None:
        if self.population_size < 4:
            raise ValueError("population_size must be at least 4")
        if self.n_generations < 1:
            raise ValueError("n_generations must be at least 1")
        if self.max_depth < 2:
            raise ValueError("max_depth must be at least 2")
        if self.tournament_size < 2:
            raise ValueError("tournament_size must be at least 2")
        if not 0.0 <= self.p_crossover <= 1.0 or not 0.0 <= self.p_mutation <= 1.0:
            raise ValueError("probabilities must be in [0, 1]")
        if self.parsimony < 0:
            raise ValueError("parsimony must be non-negative")


@dataclasses.dataclass(frozen=True)
class PlainGPModel:
    """A fitted plain-GP symbolic model."""

    target_name: str
    variable_names: Tuple[str, ...]
    tree: GPNode
    train_error: float
    test_error: float
    size: int

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.tree.evaluate(np.asarray(X, dtype=float))

    def expression(self) -> str:
        return self.tree.render(self.variable_names)

    @property
    def train_error_percent(self) -> float:
        return 100.0 * self.train_error

    @property
    def test_error_percent(self) -> float:
        return 100.0 * self.test_error

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"PlainGPModel({self.target_name}: size={self.size}, "
                f"train={self.train_error_percent:.2f}%, "
                f"test={self.test_error_percent:.2f}%)")


@dataclasses.dataclass
class _Candidate:
    tree: GPNode
    error: float
    size: int

    @property
    def objectives(self) -> Tuple[float, float]:
        return (self.error, float(self.size))


@dataclasses.dataclass
class PlainGPResult:
    """Best model plus the final population's (error, size) front."""

    best: PlainGPModel
    front: Tuple[PlainGPModel, ...]


def _evaluate(tree: GPNode, X: np.ndarray, y: np.ndarray,
              normalization: float) -> float:
    predictions = tree.evaluate(X)
    if not np.all(np.isfinite(predictions)):
        return float("inf")
    return relative_rmse(y, predictions, normalization)


def _tournament(population: Sequence[_Candidate], settings: PlainGPSettings,
                rng: np.random.Generator) -> _Candidate:
    indices = rng.integers(len(population), size=settings.tournament_size)
    best = min((population[int(i)] for i in indices),
               key=lambda c: c.error + settings.parsimony * c.size)
    return best


def _crossover(parent_a: GPNode, parent_b: GPNode, max_depth: int,
               rng: np.random.Generator) -> GPNode:
    nodes_a = iter_tree(parent_a)
    nodes_b = iter_tree(parent_b)
    target = nodes_a[int(rng.integers(len(nodes_a)))]
    donor = nodes_b[int(rng.integers(len(nodes_b)))].clone()
    child = replace_node(parent_a, target, donor)
    return child if child.depth <= max_depth else parent_a.clone()


def _mutate(parent: GPNode, n_variables: int, max_depth: int,
            rng: np.random.Generator) -> GPNode:
    nodes = iter_tree(parent)
    target = nodes[int(rng.integers(len(nodes)))]
    replacement = random_tree(n_variables, max_depth=max(2, max_depth - 2), rng=rng)
    child = replace_node(parent, target, replacement)
    return child if child.depth <= max_depth else parent.clone()


def run_plain_gp(train: Dataset, test: Optional[Dataset] = None,
                 settings: Optional[PlainGPSettings] = None) -> PlainGPResult:
    """Run the unrestricted-GP baseline on a dataset."""
    settings = settings if settings is not None else PlainGPSettings()
    train = train.drop_nonfinite()
    test = test.drop_nonfinite() if test is not None else None
    rng = np.random.default_rng(settings.random_seed)
    normalization = error_normalization(train.y)

    population: List[_Candidate] = []
    for i in range(settings.population_size):
        tree = random_tree(train.n_variables, settings.max_depth, rng,
                           grow=bool(i % 2))
        population.append(_Candidate(
            tree, _evaluate(tree, train.X, train.y, normalization), tree.size))

    for _ in range(settings.n_generations):
        offspring: List[_Candidate] = []
        # Elitism: keep the best individual unchanged.
        best = min(population, key=lambda c: c.error + settings.parsimony * c.size)
        offspring.append(_Candidate(best.tree.clone(), best.error, best.size))
        while len(offspring) < settings.population_size:
            parent_a = _tournament(population, settings, rng)
            roll = rng.random()
            if roll < settings.p_crossover:
                parent_b = _tournament(population, settings, rng)
                child_tree = _crossover(parent_a.tree, parent_b.tree,
                                        settings.max_depth, rng)
            elif roll < settings.p_crossover + settings.p_mutation:
                child_tree = _mutate(parent_a.tree, train.n_variables,
                                     settings.max_depth, rng)
            else:
                child_tree = parent_a.tree.clone()
            offspring.append(_Candidate(
                child_tree, _evaluate(child_tree, train.X, train.y, normalization),
                child_tree.size))
        population = offspring

    def freeze(candidate: _Candidate) -> PlainGPModel:
        test_error = float("nan")
        if test is not None:
            predictions = candidate.tree.evaluate(test.X)
            test_error = relative_rmse(test.y, predictions, normalization) \
                if np.all(np.isfinite(predictions)) else float("inf")
        return PlainGPModel(
            target_name=train.target_name,
            variable_names=train.variable_names,
            tree=candidate.tree.clone(),
            train_error=candidate.error,
            test_error=test_error,
            size=candidate.size,
        )

    feasible = [c for c in population if np.isfinite(c.error)]
    if not feasible:
        raise RuntimeError("plain GP produced no feasible individual")
    best_candidate = min(feasible,
                         key=lambda c: c.error + settings.parsimony * c.size)
    front_candidates = nondominated_filter(feasible, key=lambda c: c.objectives)
    return PlainGPResult(
        best=freeze(best_candidate),
        front=tuple(freeze(c) for c in front_candidates),
    )
