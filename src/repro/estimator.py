"""``SymbolicRegressor``: an sklearn-style facade over the CAFFEINE engine.

The estimator follows the scikit-learn protocol without depending on
scikit-learn: hyperparameters are plain constructor arguments stored
verbatim, ``fit(X, y)`` does all the work and sets trailing-underscore
attributes, ``predict(X)`` evaluates the selected model, ``score(X, y)``
is the coefficient of determination, and ``get_params`` / ``set_params``
make it compose with sklearn tooling (``GridSearchCV``, ``Pipeline``,
``clone``) when that library happens to be installed::

    from repro import SymbolicRegressor

    est = SymbolicRegressor(population_size=60, n_generations=25,
                            random_seed=7)
    est.fit(X, y)
    est.predict(X_new)
    est.pareto_front_      # the full error/complexity trade-off
    est.expression()       # the selected model, readably

Unlike a typical regressor, a CAFFEINE fit produces a *set* of models
trading off error against complexity; ``pareto_front_`` exposes the whole
:class:`~repro.core.model.TradeoffSet` and ``model_selection`` picks which
member ``predict`` uses ("test" = most accurate on validation data when
given, "train" otherwise).

Internally ``fit`` is one :class:`~repro.core.problem.Problem` run through
a one-problem :class:`~repro.core.session.Session` -- bit-for-bit the same
models as :func:`~repro.core.engine.run_caffeine` with the same settings
(asserted by the test suite).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.model import SymbolicModel, TradeoffSet
from repro.core.problem import Problem
from repro.core.session import Session, SessionCallback
from repro.core.settings import CaffeineSettings

__all__ = ["SymbolicRegressor"]

#: Constructor arguments forwarded one-to-one to :class:`CaffeineSettings`.
_SETTINGS_PARAMS = ("population_size", "n_generations", "random_seed",
                    "max_basis_functions", "max_tree_depth")
#: Estimator-level arguments (not CaffeineSettings fields).
_OWN_PARAMS = ("settings", "model_selection", "feature_names",
               "log10_target", "column_cache_path")


class SymbolicRegressor:
    """Template-free symbolic regression with an sklearn-style interface.

    Parameters
    ----------
    population_size, n_generations, random_seed, max_basis_functions,
    max_tree_depth:
        The most commonly tuned :class:`CaffeineSettings` fields, exposed
        directly so the estimator grid-searches naturally.
    settings:
        A full :class:`CaffeineSettings` object; when given it wins over
        the individual fields above (they are ignored).
    model_selection:
        Which trade-off member ``predict`` uses: ``"test"`` (default; falls
        back to the training winner when no validation data was passed to
        ``fit``) or ``"train"``.
    feature_names:
        Optional variable names for readable expressions (default:
        ``x0 .. x{d-1}``, or the DataFrame-style ``columns`` attribute of
        ``X`` when it has one).
    log10_target:
        Model ``log10(y)`` instead of ``y`` (the paper's ``fu``
        convention); predictions return to the original domain.
    column_cache_path:
        Optional persistent column-cache file shared across fits (never
        changes the models, see :class:`~repro.core.cache_store.ColumnCacheStore`).

    Attributes (after ``fit``)
    --------------------------
    ``result_`` (the full :class:`~repro.core.engine.CaffeineResult`),
    ``pareto_front_`` (the training-error :class:`TradeoffSet`),
    ``test_pareto_front_`` (the testing-error trade-off; empty without
    validation data), ``best_model_`` (the selected
    :class:`SymbolicModel`), ``n_features_in_``, ``feature_names_in_``.
    """

    def __init__(self, population_size: int = 100, n_generations: int = 40,
                 random_seed: Optional[int] = 0,
                 max_basis_functions: int = 15, max_tree_depth: int = 8,
                 settings: Optional[CaffeineSettings] = None,
                 model_selection: str = "test",
                 feature_names: Optional[Sequence[str]] = None,
                 log10_target: bool = False,
                 column_cache_path: Optional[str] = None) -> None:
        # sklearn contract: store constructor params verbatim, validate in
        # fit() -- this is what makes get_params/set_params/clone work.
        self.population_size = population_size
        self.n_generations = n_generations
        self.random_seed = random_seed
        self.max_basis_functions = max_basis_functions
        self.max_tree_depth = max_tree_depth
        self.settings = settings
        self.model_selection = model_selection
        self.feature_names = feature_names
        self.log10_target = log10_target
        self.column_cache_path = column_cache_path

    # ------------------------------------------------------------------
    # sklearn plumbing
    # ------------------------------------------------------------------
    def get_params(self, deep: bool = True) -> Dict[str, object]:
        """All constructor parameters (the sklearn estimator contract)."""
        return {name: getattr(self, name)
                for name in _SETTINGS_PARAMS + _OWN_PARAMS}

    def set_params(self, **params: object) -> "SymbolicRegressor":
        valid = set(_SETTINGS_PARAMS + _OWN_PARAMS)
        for name, value in params.items():
            if name not in valid:
                raise ValueError(
                    f"invalid parameter {name!r} for SymbolicRegressor "
                    f"(valid: {sorted(valid)})")
            setattr(self, name, value)
        return self

    def _effective_settings(self) -> CaffeineSettings:
        if self.settings is not None:
            return self.settings
        return CaffeineSettings(
            population_size=self.population_size,
            n_generations=self.n_generations,
            random_seed=self.random_seed,
            max_basis_functions=self.max_basis_functions,
            max_tree_depth=self.max_tree_depth,
        )

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray,
            X_test: Optional[np.ndarray] = None,
            y_test: Optional[np.ndarray] = None,
            callbacks: Sequence[SessionCallback] = ()) -> "SymbolicRegressor":
        """Evolve the error/complexity trade-off for ``(X, y)``.

        ``X_test``/``y_test`` optionally supply validation data for the
        testing-error trade-off (the paper's interpolation test);
        ``callbacks`` observe the underlying session.
        """
        if self.model_selection not in ("test", "train"):
            raise ValueError("model_selection must be 'test' or 'train', "
                             f"got {self.model_selection!r}")
        feature_names = self.feature_names
        if feature_names is None and hasattr(X, "columns"):
            feature_names = [str(c) for c in X.columns]  # DataFrame-alike
        problem = Problem.from_arrays(
            np.asarray(X, dtype=float), np.asarray(y, dtype=float),
            variable_names=feature_names,
            X_test=(np.asarray(X_test, dtype=float)
                    if X_test is not None else None),
            y_test=(np.asarray(y_test, dtype=float)
                    if y_test is not None else None),
            log10_target=self.log10_target,
        )
        session = Session([problem], settings=self._effective_settings(),
                          column_cache_path=self.column_cache_path,
                          callbacks=callbacks)
        self.result_ = session.run().single()
        self.pareto_front_ = self.result_.tradeoff
        self.test_pareto_front_ = self.result_.test_tradeoff
        self.best_model_ = self.result_.best_model(by=self.model_selection)
        self.n_features_in_ = problem.n_variables
        self.feature_names_in_ = problem.variable_names
        return self

    # ------------------------------------------------------------------
    def _check_fitted(self) -> None:
        if not hasattr(self, "result_"):
            raise RuntimeError(
                "this SymbolicRegressor is not fitted yet; call fit(X, y)")

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Evaluate the selected model on new points (original domain)."""
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X must have shape (n_samples, {self.n_features_in_}), "
                f"got {X.shape}")
        return self.best_model_.predict(X)

    def predict_with(self, model: SymbolicModel, X: np.ndarray) -> np.ndarray:
        """Evaluate any member of ``pareto_front_`` on new points."""
        self._check_fitted()
        return model.predict(np.asarray(X, dtype=float))

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Coefficient of determination R^2 (the sklearn regressor score)."""
        self._check_fitted()
        y = np.asarray(y, dtype=float)
        predictions = self.predict(X)
        residual = float(((y - predictions) ** 2).sum())
        total = float(((y - y.mean()) ** 2).sum())
        if total == 0.0:
            return 0.0 if residual > 0 else 1.0
        return 1.0 - residual / total

    def expression(self, precision: int = 4) -> str:
        """The selected model as a readable formula."""
        self._check_fitted()
        return self.best_model_.expression(precision=precision)

    # ------------------------------------------------------------------
    # deployment: freeze / thaw the fitted trade-off
    # ------------------------------------------------------------------
    def save(self, path) -> int:
        """Freeze the fitted trade-off as a deployable artifact at ``path``.

        The artifact (see :mod:`repro.core.artifact`) holds the whole
        Pareto front -- expressions, fitted weights, error/complexity
        metadata and the run's data/settings fingerprints -- in a
        versioned, checksummed file.  Returns the number of frozen models.
        Load it back with :meth:`load` (or :func:`repro.load_front`), or
        serve it with ``python -m repro serve``.
        """
        self._check_fitted()
        from repro.core.artifact import save_front

        return save_front(self.result_, path)

    @classmethod
    def load(cls, path, model_selection: str = "test") -> "SymbolicRegressor":
        """An estimator restored from a :meth:`save` artifact.

        The returned estimator predicts, scores and renders expressions
        exactly like the one that was saved -- bit-identically -- but holds
        a :class:`~repro.core.artifact.FrozenFront` as its ``result_``
        (prediction-only: no history, settings or re-``fit`` state beyond
        the front itself).
        """
        if model_selection not in ("test", "train"):
            raise ValueError("model_selection must be 'test' or 'train', "
                             f"got {model_selection!r}")
        from repro.core.artifact import load_front

        front = load_front(path)
        estimator = cls(model_selection=model_selection,
                        feature_names=list(front.variable_names))
        estimator.result_ = front
        estimator.pareto_front_ = front.tradeoff
        estimator.test_pareto_front_ = front.test_tradeoff
        estimator.best_model_ = front.select(by=model_selection)
        estimator.n_features_in_ = front.n_variables
        estimator.feature_names_in_ = front.variable_names
        return estimator

    @property
    def pareto_models_(self) -> TradeoffSet:
        """Alias of ``pareto_front_`` (kept close to the paper's wording)."""
        self._check_fitted()
        return self.pareto_front_

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        fitted = hasattr(self, "result_")
        return (f"SymbolicRegressor(population_size={self.population_size}, "
                f"n_generations={self.n_generations}, "
                f"random_seed={self.random_seed}, fitted={fitted})")
