"""Sample-table container used throughout the CAFFEINE reproduction.

The paper formulates the modeling problem as: given ``{x(t), y(t)}, t = 1..N``
where ``x(t)`` is a d-dimensional design point and ``y(t)`` a scalar circuit
performance measured by simulation, find symbolic models trading off error and
complexity.  :class:`Dataset` is exactly that sample table, with the metadata
needed to print interpretable models (variable names) and to reproduce the
paper's setup (log-scaled targets such as ``fu``).
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Dataset", "train_test_from_doe", "validate_train_test_pair"]


@dataclasses.dataclass(frozen=True)
class Dataset:
    """An immutable regression sample table.

    Parameters
    ----------
    X:
        Array of shape ``(n_samples, n_variables)`` with the design points.
    y:
        Array of shape ``(n_samples,)`` with the measured performance values.
    variable_names:
        One name per column of ``X``; used when rendering symbolic models.
    target_name:
        Name of the modeled performance (e.g. ``"PM"``).
    log_scaled:
        True when ``y`` has been transformed with ``log10`` (the paper does
        this for ``fu`` so that the mean-squared error is not dominated by
        high-magnitude samples).
    """

    X: np.ndarray
    y: np.ndarray
    variable_names: Tuple[str, ...]
    target_name: str = "y"
    log_scaled: bool = False

    def __post_init__(self) -> None:
        X = np.asarray(self.X, dtype=float)
        y = np.asarray(self.y, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if y.ndim != 1:
            raise ValueError(f"y must be 1-D, got shape {y.shape}")
        if X.shape[0] != y.shape[0]:
            raise ValueError(
                f"X has {X.shape[0]} rows but y has {y.shape[0]} entries"
            )
        names = tuple(str(n) for n in self.variable_names)
        if len(names) != X.shape[1]:
            raise ValueError(
                f"{len(names)} variable names for {X.shape[1]} columns"
            )
        if len(set(names)) != len(names):
            raise ValueError("variable names must be unique")
        object.__setattr__(self, "X", X)
        object.__setattr__(self, "y", y)
        object.__setattr__(self, "variable_names", names)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def n_samples(self) -> int:
        """Number of rows in the sample table."""
        return int(self.X.shape[0])

    @property
    def n_variables(self) -> int:
        """Number of design variables (columns of ``X``)."""
        return int(self.X.shape[1])

    def __len__(self) -> int:
        return self.n_samples

    def column(self, name: str) -> np.ndarray:
        """Return the column of ``X`` for variable ``name``."""
        try:
            index = self.variable_names.index(name)
        except ValueError as exc:
            raise KeyError(f"unknown variable {name!r}") from exc
        return self.X[:, index]

    def variable_index(self, name: str) -> int:
        """Return the column index of variable ``name``."""
        try:
            return self.variable_names.index(name)
        except ValueError as exc:
            raise KeyError(f"unknown variable {name!r}") from exc

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def with_target(self, y: np.ndarray, target_name: Optional[str] = None,
                    log_scaled: Optional[bool] = None) -> "Dataset":
        """Return a copy with a different target vector."""
        return Dataset(
            X=self.X,
            y=np.asarray(y, dtype=float),
            variable_names=self.variable_names,
            target_name=self.target_name if target_name is None else target_name,
            log_scaled=self.log_scaled if log_scaled is None else log_scaled,
        )

    def log10_target(self) -> "Dataset":
        """Return a copy whose target is ``log10(y)``.

        The paper applies this to the unity-gain frequency ``fu`` so that
        least-squares learning is not biased towards high-magnitude samples.
        All samples must be strictly positive.
        """
        if np.any(self.y <= 0.0):
            raise ValueError(
                f"cannot log-scale {self.target_name!r}: non-positive samples present"
            )
        return Dataset(
            X=self.X,
            y=np.log10(self.y),
            variable_names=self.variable_names,
            target_name=self.target_name,
            log_scaled=True,
        )

    def select_rows(self, mask_or_indices: Iterable) -> "Dataset":
        """Return a subset of rows (boolean mask or integer indices)."""
        idx = np.asarray(list(mask_or_indices))
        if idx.size == 0:
            # An empty list defaults to float64, which numpy rejects as an
            # index; an empty selection is a legal (empty) dataset.
            idx = idx.astype(np.intp)
        return Dataset(
            X=self.X[idx],
            y=self.y[idx],
            variable_names=self.variable_names,
            target_name=self.target_name,
            log_scaled=self.log_scaled,
        )

    def select_variables(self, names: Sequence[str]) -> "Dataset":
        """Return a dataset restricted to the given design variables."""
        indices = [self.variable_index(n) for n in names]
        return Dataset(
            X=self.X[:, indices],
            y=self.y,
            variable_names=tuple(names),
            target_name=self.target_name,
            log_scaled=self.log_scaled,
        )

    def drop_nonfinite(self) -> "Dataset":
        """Remove rows where either ``X`` or ``y`` contains NaN/inf.

        The paper notes that some of the 243 simulations "did not converge";
        those samples are dropped before model building.
        """
        finite = np.isfinite(self.y) & np.all(np.isfinite(self.X), axis=1)
        if np.all(finite):
            return self
        return self.select_rows(np.flatnonzero(finite))

    def shuffled(self, rng: Optional[np.random.Generator] = None) -> "Dataset":
        """Return a row-shuffled copy (useful for cross-validation splits)."""
        # repro-lint: allow[determinism] -- interactive convenience default; engine paths always pass a seeded Generator
        rng = np.random.default_rng() if rng is None else rng
        order = rng.permutation(self.n_samples)
        return self.select_rows(order)

    def split(self, fraction: float,
              rng: Optional[np.random.Generator] = None
              ) -> Tuple["Dataset", "Dataset"]:
        """Random split into ``(first, second)`` with ``fraction`` in the first."""
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must be in (0, 1)")
        # repro-lint: allow[determinism] -- interactive convenience default; engine paths always pass a seeded Generator
        rng = np.random.default_rng() if rng is None else rng
        order = rng.permutation(self.n_samples)
        n_first = max(1, int(round(fraction * self.n_samples)))
        n_first = min(n_first, self.n_samples - 1)
        return self.select_rows(order[:n_first]), self.select_rows(order[n_first:])

    # ------------------------------------------------------------------
    # summaries
    # ------------------------------------------------------------------
    def summary(self) -> str:
        """Human-readable one-paragraph summary of the dataset."""
        lines: List[str] = [
            f"Dataset for target {self.target_name!r}"
            f"{' (log10-scaled)' if self.log_scaled else ''}:",
            f"  {self.n_samples} samples, {self.n_variables} design variables",
            f"  y range: [{self.y.min():.6g}, {self.y.max():.6g}],"
            f" mean {self.y.mean():.6g}",
        ]
        for j, name in enumerate(self.variable_names):
            col = self.X[:, j]
            lines.append(
                f"    {name}: [{col.min():.6g}, {col.max():.6g}]"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Dataset(target={self.target_name!r}, n_samples={self.n_samples}, "
            f"n_variables={self.n_variables})"
        )


def validate_train_test_pair(train: Dataset, test: Dataset) -> None:
    """Raise ``ValueError`` unless a train/test pair is compatible.

    Checks variables, target name and log-scaling agree; allocation-free
    (no data is copied or cleaned), so it is safe to call per-Problem.
    """
    if train.variable_names != test.variable_names:
        raise ValueError("train and test datasets use different design variables")
    if train.target_name != test.target_name:
        raise ValueError(
            f"train target {train.target_name!r} != test target {test.target_name!r}"
        )
    if train.log_scaled != test.log_scaled:
        raise ValueError("train and test datasets differ in log-scaling")


def train_test_from_doe(train: Dataset, test: Dataset) -> Tuple[Dataset, Dataset]:
    """Validate that a train/test dataset pair is compatible and clean it.

    Checks that both datasets use the same variables and the same target, and
    drops non-converged (non-finite) samples from both.  Mirrors the paper's
    setup where training data comes from a ``dx = 0.10`` DOE and testing data
    from a ``dx = 0.03`` DOE over the same design variables.
    """
    validate_train_test_pair(train, test)
    return train.drop_nonfinite(), test.drop_nonfinite()
