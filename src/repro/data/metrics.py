"""Error metrics used by the paper.

The paper reports *normalized mean-squared error* on training and separate
testing data, identical to two of the three posynomial "quality of fit"
measures of Daems et al.: ``qwc`` is the training error and ``qtc`` the
testing error (with the constant ``c`` in the denominator set to zero).

Two normalizations are provided:

* :func:`normalized_mse` / :func:`normalized_rmse` -- the textbook variant,
  normalized by the variance of the evaluated data.  Under this metric a
  constant model always scores 100 %, which contradicts the paper's reported
  10-25 % training error for zero-complexity (constant) models, so it cannot
  be what the paper used for its headline numbers.
* :func:`relative_rmse` with :func:`error_normalization` -- RMS error divided
  by the *training-data range* of the performance.  This matches the paper's
  behaviour: constant models land in the 10-25 % band, and interpolative
  testing error naturally comes out lower than training error.  ``qwc``/
  ``qtc`` below use this normalization; it is the one used throughout the
  reproduction's objectives and reports.

All metrics are fractions; multiply by 100 for the percentages printed in
the paper's tables.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "mean_squared_error",
    "normalized_mse",
    "normalized_rmse",
    "error_normalization",
    "relative_rmse",
    "relative_rmse_rows",
    "q_wc",
    "q_tc",
    "r_squared",
]


def _as_1d(a: np.ndarray, name: str) -> np.ndarray:
    arr = np.asarray(a, dtype=float).ravel()
    if arr.size == 0:
        raise ValueError(f"{name} must not be empty")
    return arr


def mean_squared_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Plain mean-squared error ``mean((y_true - y_pred)^2)``."""
    y_true = _as_1d(y_true, "y_true")
    y_pred = _as_1d(y_pred, "y_pred")
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same length")
    if not np.all(np.isfinite(y_pred)):
        return float("inf")
    with np.errstate(all="ignore"):
        return float(np.mean((y_true - y_pred) ** 2))


def normalized_mse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Normalized mean-squared error.

    Defined as ``mean((y - yhat)^2) / mean((y - mean(y))^2)`` -- i.e. the MSE
    normalized by the variance of the data, so a trivial constant model scores
    1.0.  Returns ``inf`` when predictions are non-finite.  When the target is
    (numerically) constant the denominator degenerates; in that case the error
    is 0.0 for a perfect fit and ``inf`` otherwise, which keeps the metric
    meaningful for targets such as ``voffset`` that are nearly constant.
    """
    y_true = _as_1d(y_true, "y_true")
    y_pred = _as_1d(y_pred, "y_pred")
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same length")
    if not np.all(np.isfinite(y_pred)):
        return float("inf")
    with np.errstate(all="ignore"):
        residual = float(np.mean((y_true - y_pred) ** 2))
        variance = float(np.mean((y_true - np.mean(y_true)) ** 2))
        if variance <= 1e-300:
            return 0.0 if residual <= 1e-300 else float("inf")
        return residual / variance


def normalized_rmse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Square root of :func:`normalized_mse`.

    This is the quantity the paper quotes as a percentage ("training error of
    10-25%", "<10% error"): the root of the variance-normalized MSE.
    """
    nmse = normalized_mse(y_true, y_pred)
    with np.errstate(all="ignore"):
        return float(np.sqrt(nmse)) if np.isfinite(nmse) else float("inf")


def error_normalization(y_train: np.ndarray) -> float:
    """Reference scale used to normalize errors: the training-data range.

    Falls back to the standard deviation, then to the mean magnitude, then to
    1.0 when the data is degenerate, so the returned scale is always positive.
    """
    y_train = _as_1d(y_train, "y_train")
    spread = float(np.max(y_train) - np.min(y_train))
    if spread > 1e-300:
        return spread
    std = float(np.std(y_train))
    if std > 1e-300:
        return std
    magnitude = float(np.mean(np.abs(y_train)))
    return magnitude if magnitude > 1e-300 else 1.0


def relative_rmse(y_true: np.ndarray, y_pred: np.ndarray,
                  normalization: float) -> float:
    """RMS error divided by a fixed reference scale (see :func:`error_normalization`)."""
    y_true = _as_1d(y_true, "y_true")
    y_pred = _as_1d(y_pred, "y_pred")
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same length")
    if normalization <= 0 or not np.isfinite(normalization):
        raise ValueError("normalization must be a positive finite scale")
    if not np.all(np.isfinite(y_pred)):
        return float("inf")
    with np.errstate(all="ignore"):
        return float(np.sqrt(np.mean((y_true - y_pred) ** 2)) / normalization)


def relative_rmse_rows(y_true: np.ndarray, predictions_rows: np.ndarray,
                       normalization: float) -> np.ndarray:
    """Row-stacked :func:`relative_rmse`: one error per prediction row.

    ``predictions_rows`` is an ``(m, n_samples)`` C-contiguous stack of
    prediction vectors sharing one target; the result is the length-``m``
    vector of per-row errors, each **bit-for-bit** what
    ``relative_rmse(y_true, predictions_rows[i], normalization)`` returns.
    The identity holds because every step is either elementwise (subtract,
    square, sqrt, the two divisions -- exact per element regardless of
    batching) or a reduction along the contiguous last axis, where NumPy's
    pairwise summation depends only on each row's own data and length --
    the same batch-stability argument
    :func:`repro.regression.least_squares.pair_dots` rests on, enforced
    here by the property tests in ``tests/test_core_residual.py``.  This is
    the reduction step of the generation-batched residual engine
    (``CaffeineSettings.residual_backend = "batched"``).
    """
    y_true = _as_1d(y_true, "y_true")
    rows = np.ascontiguousarray(np.asarray(predictions_rows, dtype=float))
    if rows.ndim != 2:
        raise ValueError("predictions_rows must be 2-D (m, n_samples)")
    if rows.shape[1] != y_true.shape[0]:
        raise ValueError("predictions_rows and y_true disagree on n_samples")
    if normalization <= 0 or not np.isfinite(normalization):
        raise ValueError("normalization must be a positive finite scale")
    with np.errstate(all="ignore"):
        # errstate only silences FP warnings from non-finite rows (the scalar
        # path never reduces those; here they are computed then overwritten).
        finite = np.isfinite(rows).all(axis=1)
        residuals = y_true[None, :] - rows
        errors = np.sqrt(np.mean(residuals ** 2, axis=1)) / normalization
        errors[~finite] = np.inf
    return errors


def q_wc(y_train: np.ndarray, y_train_pred: np.ndarray) -> float:
    """Training-error quality measure ``qwc``: RMS error / training range."""
    return relative_rmse(y_train, y_train_pred, error_normalization(y_train))


def q_tc(y_test: np.ndarray, y_test_pred: np.ndarray,
         normalization: float) -> float:
    """Testing-error quality measure ``qtc``: RMS testing error / *training* range.

    The paper normalizes the testing error by the same reference as the
    training error -- the training-data range -- so training and testing
    percentages are directly comparable.  ``normalization`` is therefore
    required and must be ``error_normalization(y_train)``; defaulting to the
    testing data's own range here was a bug (it silently rescaled qtc
    whenever the test samples spanned a different range than the training
    samples).
    """
    return relative_rmse(y_test, y_test_pred, normalization)


def r_squared(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination, ``1 - NMSE``.

    Provided as a convenience for users used to R^2; not used by the paper.
    """
    nmse = normalized_mse(y_true, y_pred)
    return float("-inf") if not np.isfinite(nmse) else 1.0 - nmse
