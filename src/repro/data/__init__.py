"""Datasets and error metrics shared across the CAFFEINE reproduction.

The modeling pipeline only ever consumes plain ``{x(t), y(t)}`` sample tables,
mirroring the problem formulation of the paper (Section 2).  This package
provides:

* :class:`~repro.data.dataset.Dataset` -- an immutable container for a matrix
  of design points, a vector of performance values and variable names, with
  helpers for splitting, scaling and filtering non-finite samples.
* :mod:`~repro.data.metrics` -- normalized mean-squared error and the paper's
  quality-of-fit measures ``qwc`` (training error) and ``qtc`` (testing error).
"""

from repro.data.dataset import Dataset, train_test_from_doe
from repro.data.metrics import (
    error_normalization,
    mean_squared_error,
    normalized_mse,
    normalized_rmse,
    q_tc,
    q_wc,
    r_squared,
    relative_rmse,
)

__all__ = [
    "Dataset",
    "train_test_from_doe",
    "mean_squared_error",
    "normalized_mse",
    "normalized_rmse",
    "error_normalization",
    "relative_rmse",
    "q_tc",
    "q_wc",
    "r_squared",
]
