"""Orthogonal-array and factorial designs.

The training data of the paper comes from a "full orthogonal-hypercube DOE"
with 243 samples over 13 three-level variables.  243 = 3^5 runs cannot be a
full factorial over 13 variables (that would need 3^13 runs); it is a
strength-2 orthogonal array OA(3^5, 13, 3), i.e. a fractional design where
every pair of columns contains all 9 level combinations equally often.

Such arrays are constructed here from linear codes over the prime field
GF(q): the runs are all vectors ``u`` in GF(q)^k and each column is the inner
product ``u . c (mod q)`` for a generator column ``c``.  Two generator columns
produce an orthogonal pair exactly when they are linearly independent, so we
enumerate one representative per 1-dimensional subspace of GF(q)^k, giving up
to ``(q^k - 1) / (q - 1)`` mutually orthogonal columns (121 for q=3, k=5 --
plenty for the paper's 13 variables).
"""

from __future__ import annotations

import itertools
from typing import List

import numpy as np

__all__ = [
    "full_factorial",
    "orthogonal_array",
    "orthogonal_hypercube",
    "is_orthogonal_array",
]


def _is_prime(n: int) -> bool:
    if n < 2:
        return False
    if n % 2 == 0:
        return n == 2
    f = 3
    while f * f <= n:
        if n % f == 0:
            return False
        f += 2
    return True


def full_factorial(levels: int, n_factors: int) -> np.ndarray:
    """Return the full factorial design with ``levels ** n_factors`` runs.

    The result is an integer array of shape ``(levels**n_factors, n_factors)``
    with entries in ``0 .. levels-1``, one row per run.
    """
    if levels < 2:
        raise ValueError("levels must be >= 2")
    if n_factors < 1:
        raise ValueError("n_factors must be >= 1")
    grids = np.meshgrid(*([np.arange(levels)] * n_factors), indexing="ij")
    return np.stack([g.ravel() for g in grids], axis=1).astype(int)


def _subspace_representatives(q: int, k: int) -> List[np.ndarray]:
    """One representative vector per 1-D subspace of GF(q)^k.

    Representatives are chosen so that the first non-zero entry equals 1,
    which makes the enumeration canonical and deterministic.
    """
    reps: List[np.ndarray] = []
    for vec in itertools.product(range(q), repeat=k):
        arr = np.array(vec, dtype=int)
        nonzero = np.flatnonzero(arr)
        if nonzero.size == 0:
            continue
        if arr[nonzero[0]] != 1:
            continue
        reps.append(arr)
    return reps


def orthogonal_array(n_factors: int, levels: int = 3,
                     strength_exponent: int | None = None) -> np.ndarray:
    """Construct a strength-2 orthogonal array ``OA(levels**k, n_factors, levels)``.

    Parameters
    ----------
    n_factors:
        Number of columns (design variables).
    levels:
        Number of levels per factor; must be prime (2, 3, 5, ...).
    strength_exponent:
        ``k`` such that the array has ``levels**k`` runs.  When omitted the
        smallest ``k`` with enough mutually-orthogonal columns,
        ``(levels**k - 1) / (levels - 1) >= n_factors``, is chosen -- for the
        paper's 13 three-level factors that gives k=3 (13 columns); pass
        ``k=5`` explicitly to reproduce the 243-run design.

    Returns
    -------
    numpy.ndarray
        Integer array of shape ``(levels**k, n_factors)`` with entries in
        ``0 .. levels-1`` where every pair of columns contains each of the
        ``levels**2`` combinations exactly ``levels**(k-2)`` times.
    """
    if n_factors < 1:
        raise ValueError("n_factors must be >= 1")
    if not _is_prime(levels):
        raise ValueError(f"levels must be prime for this construction, got {levels}")

    if strength_exponent is None:
        k = 2
        while (levels ** k - 1) // (levels - 1) < n_factors:
            k += 1
    else:
        k = int(strength_exponent)
        if k < 2:
            raise ValueError("strength_exponent must be >= 2")

    max_columns = (levels ** k - 1) // (levels - 1)
    if n_factors > max_columns:
        raise ValueError(
            f"cannot build {n_factors} mutually orthogonal {levels}-level columns "
            f"with {levels}**{k} runs (max {max_columns}); increase strength_exponent"
        )

    generators = _subspace_representatives(levels, k)[:n_factors]
    runs = full_factorial(levels, k)  # all of GF(q)^k, shape (q^k, k)
    columns = [(runs @ g) % levels for g in generators]
    return np.stack(columns, axis=1).astype(int)


def orthogonal_hypercube(n_factors: int, levels: int = 3,
                         n_runs: int | None = None) -> np.ndarray:
    """The paper's "full orthogonal-hypercube" sampling plan.

    This is an orthogonal array over the hypercube of level indices.  With
    ``n_factors=13, levels=3, n_runs=243`` it reproduces the paper's design of
    243 three-level samples over 13 operating-point variables.

    Parameters
    ----------
    n_runs:
        Desired number of runs; must be a power of ``levels``.  When omitted,
        the smallest adequate power is used.
    """
    if n_runs is None:
        return orthogonal_array(n_factors, levels=levels)
    k = 0
    total = 1
    while total < n_runs:
        total *= levels
        k += 1
    if total != n_runs:
        raise ValueError(
            f"n_runs must be a power of levels={levels}, got {n_runs}"
        )
    return orthogonal_array(n_factors, levels=levels, strength_exponent=k)


def is_orthogonal_array(design: np.ndarray, levels: int, strength: int = 2) -> bool:
    """Check the orthogonal-array property of ``design``.

    Every ``strength``-tuple of columns must contain each combination of
    levels equally often.  Used by the test suite to verify the construction.
    """
    design = np.asarray(design, dtype=int)
    if design.ndim != 2:
        raise ValueError("design must be a 2-D array")
    n_runs, n_factors = design.shape
    if strength > n_factors:
        raise ValueError("strength cannot exceed the number of columns")
    expected = n_runs / (levels ** strength)
    if expected != int(expected):
        return False
    for cols in itertools.combinations(range(n_factors), strength):
        sub = design[:, cols]
        # Encode each row of the sub-design as a single base-`levels` integer.
        codes = np.zeros(n_runs, dtype=int)
        for c in range(strength):
            codes = codes * levels + sub[:, c]
        counts = np.bincount(codes, minlength=levels ** strength)
        if not np.all(counts == int(expected)):
            return False
    return True
