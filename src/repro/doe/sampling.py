"""Mapping DOE level indices onto physical design-variable values.

The paper varies each of the 13 operating-point design variables over three
levels around its nominal value with a relative step ``dx`` ("scaled
dx = 0.1" for training, ``dx = 0.03`` for testing).  This module converts
integer level matrices produced by :mod:`repro.doe.orthogonal` into physical
sample matrices, and bundles the result in a small plan object.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.doe.orthogonal import orthogonal_hypercube

__all__ = ["centered_levels", "scale_design", "latin_hypercube", "DoePlan"]


def centered_levels(design: np.ndarray, levels: int) -> np.ndarray:
    """Convert level indices ``0..levels-1`` to symmetric integers around 0.

    For three levels, indices ``0, 1, 2`` become ``-1, 0, +1``.  For an even
    number of levels the result is half-integer spaced (e.g. ``-0.5, +0.5``),
    still centered on zero.
    """
    design = np.asarray(design, dtype=float)
    if levels < 2:
        raise ValueError("levels must be >= 2")
    return design - (levels - 1) / 2.0


def scale_design(design: np.ndarray, nominal: Sequence[float], dx: float,
                 levels: int = 3, relative: bool = True) -> np.ndarray:
    """Map a level-index design onto physical values around a nominal point.

    Parameters
    ----------
    design:
        Integer level matrix of shape ``(n_runs, n_factors)`` with entries in
        ``0 .. levels-1``.
    nominal:
        Nominal value per factor, length ``n_factors``.
    dx:
        Relative (default) or absolute step per level.  With ``relative=True``
        and three levels, a factor takes the values
        ``nominal * (1 - dx), nominal, nominal * (1 + dx)`` -- exactly the
        paper's "scaled dx" sampling.
    relative:
        When False, ``dx`` is an absolute step added per centered level.
    """
    design = np.asarray(design)
    nominal_arr = np.asarray(list(nominal), dtype=float)
    if design.ndim != 2:
        raise ValueError("design must be 2-D")
    if nominal_arr.shape[0] != design.shape[1]:
        raise ValueError(
            f"{nominal_arr.shape[0]} nominal values for {design.shape[1]} factors"
        )
    if dx < 0:
        raise ValueError("dx must be non-negative")
    centered = centered_levels(design, levels)
    if relative:
        return nominal_arr[None, :] * (1.0 + dx * centered)
    return nominal_arr[None, :] + dx * centered


def latin_hypercube(n_samples: int, n_factors: int,
                    rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Latin-hypercube sample in the unit cube ``[0, 1]^n_factors``.

    Not used by the paper's experiments (which use orthogonal arrays) but
    provided as an alternative sampling plan for broader design spaces.
    """
    if n_samples < 1 or n_factors < 1:
        raise ValueError("n_samples and n_factors must be >= 1")
    # repro-lint: allow[determinism] -- interactive convenience default; paper experiments pass a seeded Generator
    rng = np.random.default_rng() if rng is None else rng
    result = np.empty((n_samples, n_factors), dtype=float)
    for j in range(n_factors):
        perm = rng.permutation(n_samples)
        result[:, j] = (perm + rng.random(n_samples)) / n_samples
    return result


@dataclasses.dataclass(frozen=True)
class DoePlan:
    """A complete sampling plan: physical sample points plus metadata.

    Attributes
    ----------
    points:
        Array of shape ``(n_runs, n_factors)`` with physical variable values.
    variable_names:
        Factor names, in column order.
    nominal:
        Nominal value per factor.
    dx:
        Relative step used to build the plan.
    """

    points: np.ndarray
    variable_names: Tuple[str, ...]
    nominal: Tuple[float, ...]
    dx: float

    def __post_init__(self) -> None:
        points = np.asarray(self.points, dtype=float)
        names = tuple(str(n) for n in self.variable_names)
        nominal = tuple(float(v) for v in self.nominal)
        if points.ndim != 2:
            raise ValueError("points must be 2-D")
        if points.shape[1] != len(names):
            raise ValueError("one name per column required")
        if len(nominal) != len(names):
            raise ValueError("one nominal value per column required")
        object.__setattr__(self, "points", points)
        object.__setattr__(self, "variable_names", names)
        object.__setattr__(self, "nominal", nominal)

    @property
    def n_runs(self) -> int:
        return int(self.points.shape[0])

    @property
    def n_factors(self) -> int:
        return int(self.points.shape[1])

    def as_dicts(self) -> Tuple[Dict[str, float], ...]:
        """Return the plan as a tuple of ``{variable: value}`` dictionaries."""
        return tuple(
            dict(zip(self.variable_names, row, strict=True)) for row in self.points
        )

    @classmethod
    def orthogonal(cls, nominal: Mapping[str, float], dx: float,
                   n_runs: Optional[int] = None, levels: int = 3) -> "DoePlan":
        """Build the paper's orthogonal-hypercube plan around a nominal point.

        ``nominal`` maps variable names to nominal values; ``dx`` is the
        relative step; ``n_runs`` (e.g. 243) selects the size of the
        orthogonal array.
        """
        names = tuple(nominal.keys())
        nominal_values = tuple(float(nominal[n]) for n in names)
        design = orthogonal_hypercube(len(names), levels=levels, n_runs=n_runs)
        points = scale_design(design, nominal_values, dx, levels=levels)
        return cls(points=points, variable_names=names,
                   nominal=nominal_values, dx=dx)
