"""Design-of-experiments sampling.

The paper generates its training and testing data with *full
orthogonal-hypercube DOE sampling*: 243 design points over 13 design
variables, each varied over three levels around the nominal operating point
with a relative step ``dx`` (0.10 for training, 0.03 for testing).

This package implements the pieces needed to reproduce that:

* :func:`~repro.doe.orthogonal.full_factorial` -- full factorial designs;
* :func:`~repro.doe.orthogonal.orthogonal_array` -- strength-2 orthogonal
  arrays over a prime number of levels built from linear codes over GF(q)
  (e.g. OA(243, 13, 3) as used by the paper);
* :func:`~repro.doe.orthogonal.orthogonal_hypercube` -- the paper's sampling
  plan: an orthogonal array mapped onto the hypercube of level indices;
* :func:`~repro.doe.sampling.scale_design` -- map level indices onto physical
  values ``nominal * (1 + dx * level)`` with ``level in {-1, 0, +1}``;
* :class:`~repro.doe.sampling.DoePlan` -- a convenience object bundling the
  design matrix with variable names and nominal values.
"""

from repro.doe.orthogonal import (
    full_factorial,
    is_orthogonal_array,
    orthogonal_array,
    orthogonal_hypercube,
)
from repro.doe.sampling import (
    DoePlan,
    centered_levels,
    latin_hypercube,
    scale_design,
)

__all__ = [
    "full_factorial",
    "orthogonal_array",
    "orthogonal_hypercube",
    "is_orthogonal_array",
    "DoePlan",
    "centered_levels",
    "scale_design",
    "latin_hypercube",
]
