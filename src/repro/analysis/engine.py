"""The lint engine: one AST walk per file, rules dispatched per node.

The engine is deliberately shaped like the backend machinery it polices:
rules live in a named registry (:mod:`repro.analysis.rules`, mirroring
:mod:`repro.core.registry`), each declaring the AST node types it wants to
see, the module scope it applies to and an ``--explain``-able rationale.
:class:`LintEngine` parses every file once, builds a parent map and a
little per-file context (:class:`FileContext`), then dispatches each node
to the rules registered for its type -- so adding a rule never adds a
file pass.

Findings carry a rule id, a precise location (1-based line and column),
a message and a fix hint.  A finding is suppressed only by an explicit
inline waiver carrying a reason (:mod:`repro.analysis.waivers`); waivers
that suppress nothing are themselves findings, so the waiver inventory
can never silently rot.

Configuration comes from the ``[tool.repro-lint]`` block of the nearest
``pyproject.toml`` (see :class:`LintConfig`): per-rule module scopes can
be widened or narrowed and path patterns excluded without touching code.
"""

from __future__ import annotations

import ast
import dataclasses
import fnmatch
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Finding",
    "FileContext",
    "LintConfig",
    "LintEngine",
    "LintReport",
    "module_name_for",
]

#: rule id used for files the parser rejects (not waivable: broken files
#: cannot carry trustworthy waiver comments)
PARSE_ERROR_RULE = "parse-error"


@dataclasses.dataclass
class Finding:
    """One rule violation (or waiver problem) at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""
    #: last line of the offending node -- a waiver anywhere on the
    #: statement's span suppresses the finding, so multi-line calls do not
    #: force the comment onto the first physical line
    end_line: int = 0
    waived: bool = False
    waiver_reason: Optional[str] = None

    def __post_init__(self) -> None:
        if self.end_line < self.line:
            self.end_line = self.line

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def as_dict(self) -> dict:
        """The stable JSON shape (see ``--format json`` schema docs)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "waived": self.waived,
            "waiver_reason": self.waiver_reason,
        }


class FileContext:
    """Everything rules may ask about the file being walked."""

    def __init__(self, path: Path, module: str, tree: ast.AST,
                 source: str) -> None:
        self.path = path
        self.module = module
        self.tree = tree
        self.source = source
        self.lines = source.splitlines()
        self._parents: Dict[ast.AST, ast.AST] = {}
        #: names bound by ``import x`` / ``import x as y`` statements --
        #: how the spawn-safety rule tells ``module.func`` (fine) from
        #: ``obj.method`` (a bound method, not spawn-picklable)
        self.imported_modules: set = set()
        #: module-level function name -> ast.FunctionDef / ast.Lambda
        self.module_functions: Dict[str, ast.AST] = {}
        #: function names defined *nested* inside another function
        self.nested_functions: set = set()
        self._index()

    # ------------------------------------------------------------------
    def _index(self) -> None:
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                self._parents[child] = node
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        self.imported_modules.add(
                            alias.asname or alias.name.split(".")[0])
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if self.enclosing_function(node) is None:
                    self.module_functions.setdefault(node.name, node)
                else:
                    self.nested_functions.add(node.name)
            elif isinstance(node, ast.Assign):
                # ``name = lambda ...`` counts as a function binding too.
                if (isinstance(node.value, ast.Lambda)
                        and len(node.targets) == 1
                        and isinstance(node.targets[0], ast.Name)):
                    name = node.targets[0].id
                    if self.enclosing_function(node) is None:
                        self.module_functions.setdefault(name, node.value)
                    else:
                        self.nested_functions.add(name)

    # ------------------------------------------------------------------
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterable[ast.AST]:
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        """The nearest enclosing function/lambda def, or None at module level."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                return ancestor
        return None

    def under_errstate(self, node: ast.AST) -> bool:
        """Whether ``node`` sits lexically inside ``with np.errstate(...)``."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.With, ast.AsyncWith)):
                for item in ancestor.items:
                    expr = item.context_expr
                    if (isinstance(expr, ast.Call)
                            and dotted_name(expr.func) is not None
                            and dotted_name(expr.func).endswith("errstate")):
                        return True
        return False

    def in_trivial_wrapper(self, node: ast.AST) -> bool:
        """Whether ``node`` lives in a single-``return`` wrapper function.

        Operator implementations (:mod:`repro.core.functions`) are one-line
        named functions whose *callers* provide the ``errstate`` context
        (``Operator.__call__``, the compiled tape) -- the errstate rule
        exempts that shape instead of demanding a redundant context per
        wrapper.
        """
        function = self.enclosing_function(node)
        if function is None:
            return False
        if isinstance(function, ast.Lambda):
            # A lambda body is a single expression -- the same
            # caller-owns-errstate shape (the GP function table).
            return True
        body = list(function.body)
        if (body and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)):
            body = body[1:]  # drop the docstring
        return len(body) == 1 and isinstance(body[0], ast.Return)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def module_name_for(path: Path) -> str:
    """The dotted module name a file would import as.

    Resolution is purely path-based (no ``__init__.py`` probing, so fixture
    trees in tests resolve exactly like the real package): everything after
    the last ``src`` component, or from the last ``repro`` component, or the
    path relative to the working directory as a fallback.  ``benchmarks`` /
    ``examples`` scripts therefore resolve to ``benchmarks.bench_x`` -- which
    is what keeps rules scoped to ``repro`` away from them by default.
    """
    resolved = Path(path).resolve()
    parts = list(resolved.parts)
    if "src" in parts:
        index = len(parts) - 1 - parts[::-1].index("src")
        module_parts = parts[index + 1:]
    elif "repro" in parts:
        index = len(parts) - 1 - parts[::-1].index("repro")
        module_parts = parts[index:]
    else:
        try:
            module_parts = resolved.relative_to(Path.cwd()).parts
        except ValueError:
            module_parts = (resolved.name,)
    module_parts = list(module_parts)
    if module_parts and module_parts[-1].endswith(".py"):
        module_parts[-1] = module_parts[-1][:-3]
    if module_parts and module_parts[-1] == "__init__":
        module_parts = module_parts[:-1]
    return ".".join(part for part in module_parts if part)


def _scope_matches(module: str, scope: Optional[Tuple[str, ...]]) -> bool:
    if scope is None:
        return True
    return any(module == prefix or module.startswith(prefix + ".")
               for prefix in scope)


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
@dataclasses.dataclass
class LintConfig:
    """The ``[tool.repro-lint]`` block of ``pyproject.toml``.

    ``exclude``
        posix path glob patterns (matched against the path as given and as
        repo-relative) whose files are skipped entirely.
    ``disable``
        rule ids turned off outright.
    ``rule_scopes``
        per-rule module-scope overrides (``[tool.repro-lint.rules.<id>]``
        with ``scope = ["repro", ...]``); an empty list means "everywhere".
    """

    exclude: Tuple[str, ...] = ()
    disable: Tuple[str, ...] = ()
    rule_scopes: Dict[str, Optional[Tuple[str, ...]]] = dataclasses.field(
        default_factory=dict)

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, start: Optional[Path] = None) -> "LintConfig":
        """Config from the nearest ``pyproject.toml`` at/above ``start``."""
        base = Path(start) if start is not None else Path.cwd()
        if base.is_file():
            base = base.parent
        for candidate in [base, *base.parents]:
            pyproject = candidate / "pyproject.toml"
            if pyproject.is_file():
                return cls.from_pyproject(pyproject)
        return cls()

    @classmethod
    def from_pyproject(cls, path: Path) -> "LintConfig":
        data = _load_toml(Path(path))
        section = data.get("tool", {}).get("repro-lint", {})
        if not isinstance(section, dict):
            return cls()
        rule_scopes: Dict[str, Optional[Tuple[str, ...]]] = {}
        rules = section.get("rules", {})
        if isinstance(rules, dict):
            for rule_id, options in rules.items():
                if not isinstance(options, dict):
                    continue
                scope = options.get("scope")
                if isinstance(scope, list):
                    rule_scopes[str(rule_id)] = (
                        tuple(str(s) for s in scope) if scope else None)
        return cls(
            exclude=tuple(str(p) for p in section.get("exclude", []) or ()),
            disable=tuple(str(r) for r in section.get("disable", []) or ()),
            rule_scopes=rule_scopes,
        )

    def excludes(self, path: Path) -> bool:
        text = Path(path).as_posix()
        return any(fnmatch.fnmatch(text, pattern)
                   or fnmatch.fnmatch(Path(path).name, pattern)
                   for pattern in self.exclude)


def _load_toml(path: Path) -> dict:
    try:
        import tomllib
    except ImportError:  # pragma: no cover - python 3.10
        tomllib = None
    if tomllib is not None:
        try:
            with open(path, "rb") as handle:
                return tomllib.load(handle)
        except (OSError, ValueError):
            return {}
    return _parse_toml_subset(path)  # pragma: no cover - python 3.10


def _parse_toml_subset(path: Path) -> dict:  # pragma: no cover - py3.10 only
    """A minimal TOML reader for the config subset this tool documents.

    Python 3.10 (the oldest supported interpreter) has no ``tomllib`` and
    the repo vendors no TOML parser, so on that interpreter the config is
    read by this fallback: ``[table]`` headers plus ``key = "string"`` /
    ``key = ["array", "of", "strings"]`` / ``key = true|false`` pairs --
    exactly the grammar the ``[tool.repro-lint]`` docs promise.  Anything
    fancier is ignored rather than misread.
    """
    import re

    try:
        text = path.read_text()
    except OSError:
        return {}
    root: dict = {}
    current = root
    pending_key: Optional[str] = None
    pending_chunks: List[str] = []

    def assign(table: dict, key: str, raw: str) -> None:
        raw = raw.strip()
        value: object
        if raw.startswith("["):
            value = re.findall(r'"((?:[^"\\]|\\.)*)"', raw)
        elif raw.startswith('"'):
            match = re.match(r'"((?:[^"\\]|\\.)*)"', raw)
            value = match.group(1) if match else raw
        elif raw in ("true", "false"):
            value = raw == "true"
        else:
            return  # numbers/dates: not part of the documented subset
        table[key] = value

    for line in text.splitlines():
        stripped = line.strip()
        if pending_key is not None:
            pending_chunks.append(stripped)
            if "]" in stripped:
                assign(current, pending_key, " ".join(pending_chunks))
                pending_key, pending_chunks = None, []
            continue
        if not stripped or stripped.startswith("#"):
            continue
        if stripped.startswith("[") and stripped.endswith("]"):
            names = stripped.strip("[]").strip()
            current = root
            for part in names.split("."):
                part = part.strip().strip('"')
                current = current.setdefault(part, {})
                if not isinstance(current, dict):
                    current = {}
            continue
        if "=" in stripped:
            key, _, raw = stripped.partition("=")
            key = key.strip().strip('"')
            raw = raw.split("#")[0].strip() if not raw.strip().startswith(
                '"') else raw.strip()
            if raw.startswith("[") and "]" not in raw:
                pending_key, pending_chunks = key, [raw]
                continue
            assign(current, key, raw)
    return root


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
@dataclasses.dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: List[Finding]
    waived: List[Finding]
    n_files: int

    @property
    def clean(self) -> bool:
        return not self.findings

    def rule_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def as_dict(self) -> dict:
        """The stable ``--format json`` document (schema version 1)."""
        return {
            "schema": 1,
            "tool": "repro-lint",
            "n_files": self.n_files,
            "n_findings": len(self.findings),
            "n_waived": len(self.waived),
            "rule_counts": self.rule_counts(),
            "findings": [finding.as_dict() for finding in self.findings],
            "waived": [finding.as_dict() for finding in self.waived],
        }


class LintEngine:
    """Walk files once; dispatch each AST node to the registered rules."""

    def __init__(self, rules: Optional[Sequence] = None,
                 config: Optional[LintConfig] = None) -> None:
        if rules is None:
            from repro.analysis.rules import active_rules

            rules = active_rules()
        self.config = config if config is not None else LintConfig()
        self.rules = [rule for rule in rules
                      if rule.id not in self.config.disable]
        self._by_type: Dict[type, List] = {}
        for rule in self.rules:
            for node_type in rule.node_types:
                self._by_type.setdefault(node_type, []).append(rule)

    # ------------------------------------------------------------------
    def effective_scope(self, rule) -> Optional[Tuple[str, ...]]:
        if rule.id in self.config.rule_scopes:
            return self.config.rule_scopes[rule.id]
        return rule.scope

    # ------------------------------------------------------------------
    def lint_file(self, path) -> List[Finding]:
        """Every finding in one file, waivers applied (waived ones included)."""
        from repro.analysis import waivers as waivers_module

        path = Path(path)
        try:
            source = path.read_text()
        except (OSError, UnicodeDecodeError) as error:
            return [Finding(rule=PARSE_ERROR_RULE, path=str(path), line=1,
                            col=1, message=f"unreadable file: {error}")]
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as error:
            return [Finding(rule=PARSE_ERROR_RULE, path=str(path),
                            line=error.lineno or 1, col=(error.offset or 1),
                            message=f"syntax error: {error.msg}")]
        context = FileContext(path, module_name_for(path), tree, source)
        findings: List[Finding] = []
        scoped = {rule.id: _scope_matches(context.module,
                                          self.effective_scope(rule))
                  for rule in self.rules}
        for node in ast.walk(tree):
            for rule in self._by_type.get(type(node), ()):
                if not scoped[rule.id]:
                    continue
                findings.extend(rule.visit(node, context))
        waivers = waivers_module.collect_waivers(
            source, str(path), known_rules={rule.id for rule in self.rules})
        findings.extend(waivers_module.apply_waivers(findings, waivers,
                                                     str(path)))
        findings.sort(key=lambda f: (f.line, f.col, f.rule))
        return findings

    # ------------------------------------------------------------------
    def lint_paths(self, paths: Sequence) -> LintReport:
        files: List[Path] = []
        for entry in paths:
            entry = Path(entry)
            if entry.is_dir():
                files.extend(sorted(
                    p for p in entry.rglob("*.py")
                    if "__pycache__" not in p.parts))
            elif entry.suffix == ".py" or entry.is_file():
                files.append(entry)
            else:
                files.append(entry)  # surfaces as unreadable-file finding
        active: List[Finding] = []
        waived: List[Finding] = []
        n_files = 0
        for path in files:
            if self.config.excludes(path):
                continue
            n_files += 1
            for finding in self.lint_file(path):
                (waived if finding.waived else active).append(finding)
        active.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        waived.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return LintReport(findings=active, waived=waived, n_files=n_files)
