"""repro.analysis -- AST-based enforcement of the project's invariants.

Eight PRs of reproduction hardening established invariants (canonical
bit-identity recipes, errstate discipline, seeded-Generator determinism,
spawn-picklable backends, versioned-envelope persistence, valid fault
specs) that this package makes mechanical: one AST walk per file, rules
in a named registry mirroring :mod:`repro.core.registry`, inline waivers
with mandatory reasons, and a CLI (``python -m repro lint``) that CI
gates on.  See ``python -m repro lint --list-rules`` / ``--explain RULE``
and the "Project invariants" section of ``benchmarks/README.md``.
"""

from repro.analysis.engine import (
    Finding,
    FileContext,
    LintConfig,
    LintEngine,
    LintReport,
    module_name_for,
)
from repro.analysis.rules import (
    Rule,
    active_rules,
    all_rules,
    get_rule,
    register_rule,
    rule_ids,
    unregister_rule,
)
from repro.analysis.waivers import Waiver, apply_waivers, collect_waivers

__all__ = [
    "Finding",
    "FileContext",
    "LintConfig",
    "LintEngine",
    "LintReport",
    "module_name_for",
    "Rule",
    "active_rules",
    "all_rules",
    "get_rule",
    "register_rule",
    "rule_ids",
    "unregister_rule",
    "Waiver",
    "apply_waivers",
    "collect_waivers",
    "lint_paths",
]


def lint_paths(paths, config=None):
    """Lint ``paths`` with the registered rules; returns a LintReport."""
    if config is None:
        config = LintConfig.load(next(iter(paths), None))
    return LintEngine(config=config).lint_paths(list(paths))
