"""Inline waivers: ``# repro-lint: allow[rule-id] -- reason``.

A waiver is the *only* way to silence a finding: an explicit comment naming
the rule(s) being allowed and the reason the flagged pattern is deliberate::

    return base * (1.0 + 0.25 * random.random())  \
        # repro-lint: allow[determinism] -- retry jitter is result-neutral

Grammar: ``repro-lint: allow[rule-a, rule-b] -- reason text``.  The rule
list and the ``--``-separated reason are both mandatory -- a waiver without
a reason is a finding of its own (``waiver-syntax``), as is a waiver naming
an unknown rule.  A waiver placed on a code line covers that statement
(anywhere in a multi-line statement's span); a waiver on a comment-only
line covers the next statement.  Waivers that suppress nothing are reported
as ``waiver-unused`` so the inventory can never silently go stale -- every
waiver in the tree is load-bearing, and deleting one resurfaces its
finding.  ``waiver-syntax`` / ``waiver-unused`` findings are themselves
unwaivable.
"""

from __future__ import annotations

import dataclasses
import io
import re
import tokenize
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import Finding

__all__ = ["Waiver", "collect_waivers", "apply_waivers",
           "WAIVER_SYNTAX_RULE", "WAIVER_UNUSED_RULE"]

WAIVER_SYNTAX_RULE = "waiver-syntax"
WAIVER_UNUSED_RULE = "waiver-unused"

#: rule ids a waiver may never suppress (the waiver machinery itself)
_UNWAIVABLE = (WAIVER_SYNTAX_RULE, WAIVER_UNUSED_RULE, "parse-error")

_WAIVER_RE = re.compile(
    r"repro-lint:\s*(?P<verb>[\w-]+)\s*"
    r"(?:\[(?P<rules>[^\]]*)\])?"
    r"\s*(?:--\s*(?P<reason>.*\S))?\s*$")


@dataclasses.dataclass
class Waiver:
    """One parsed waiver comment."""

    path: str
    line: int           #: line the comment sits on
    target: int         #: line of the statement it covers
    rules: Tuple[str, ...]
    reason: str
    used: bool = False

    def covers(self, finding: Finding) -> bool:
        return (finding.rule in self.rules
                and finding.rule not in _UNWAIVABLE
                and finding.line <= self.target <= finding.end_line)


def collect_waivers(source: str, path: str, known_rules: Set[str]
                    ) -> Tuple[List[Waiver], List[Finding]]:
    """Parse every waiver comment; malformed ones become findings."""
    waivers: List[Waiver] = []
    problems: List[Finding] = []
    comments: List[Tuple[int, str]] = []
    code_lines: Set[int] = set()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return [], []  # the engine already reports the parse error
    for token in tokens:
        if token.type == tokenize.COMMENT:
            comments.append((token.start[0], token.string))
        elif token.type not in (tokenize.NL, tokenize.NEWLINE,
                                tokenize.INDENT, tokenize.DEDENT,
                                tokenize.ENCODING, tokenize.ENDMARKER):
            for lineno in range(token.start[0], token.end[0] + 1):
                code_lines.add(lineno)

    for lineno, text in comments:
        if "repro-lint" not in text:
            continue
        match = _WAIVER_RE.search(text)
        problem = _validate(match, known_rules)
        if problem is not None:
            problems.append(Finding(
                rule=WAIVER_SYNTAX_RULE, path=path, line=lineno, col=1,
                message=f"malformed waiver: {problem}",
                hint="write `# repro-lint: allow[rule-id] -- reason`"))
            continue
        rules = tuple(r.strip() for r in match.group("rules").split(",")
                      if r.strip())
        target = lineno if lineno in code_lines else _next_code_line(
            lineno, code_lines)
        waivers.append(Waiver(path=path, line=lineno, target=target,
                              rules=rules, reason=match.group("reason")))
    return waivers, problems


def _validate(match: Optional[re.Match], known_rules: Set[str]
              ) -> Optional[str]:
    """The problem with a waiver comment, or None if it is well-formed."""
    if match is None:
        return "expected `allow[rule-id] -- reason` after `repro-lint:`"
    if match.group("verb") != "allow":
        return (f"unknown directive {match.group('verb')!r} "
                f"(only `allow` exists)")
    if match.group("rules") is None:
        return "missing `[rule-id]` list"
    rules = [r.strip() for r in match.group("rules").split(",") if r.strip()]
    if not rules:
        return "empty rule list"
    for rule in rules:
        if rule in _UNWAIVABLE:
            return f"rule {rule!r} cannot be waived"
        if rule not in known_rules:
            return (f"unknown rule {rule!r} "
                    f"(see `python -m repro lint --list-rules`)")
    if not match.group("reason"):
        return "missing ` -- reason` (every waiver must say why)"
    return None


def _next_code_line(lineno: int, code_lines: Set[int]) -> int:
    following = [line for line in code_lines if line > lineno]
    return min(following) if following else lineno


def apply_waivers(findings: Sequence[Finding],
                  collected: Tuple[List[Waiver], List[Finding]],
                  path: str) -> Iterable[Finding]:
    """Mark waived findings in place; return waiver-related findings."""
    waivers, problems = collected
    for finding in findings:
        for waiver in waivers:
            if waiver.covers(finding):
                finding.waived = True
                finding.waiver_reason = waiver.reason
                waiver.used = True
    extra: List[Finding] = list(problems)
    for waiver in waivers:
        if not waiver.used:
            extra.append(Finding(
                rule=WAIVER_UNUSED_RULE, path=path, line=waiver.line, col=1,
                message=(f"waiver for {', '.join(waiver.rules)} suppresses "
                         f"nothing (reason was: {waiver.reason!r})"),
                hint="delete the stale waiver (the invariant it excused "
                     "is no longer violated here)"))
    return extra
