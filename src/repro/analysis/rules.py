"""The project-invariant rules, in a named registry (PR-provenanced).

Eight PRs of reproduction hardening established invariants that used to
live only in docstrings and regression tests.  Each rule here makes one of
them mechanical.  The registry mirrors the backend-registry idiom of
:mod:`repro.core.registry`: rules are registered by id, introspectable
(``python -m repro lint --list-rules``), and third-party checks can be
added with :func:`register_rule` without touching the engine.

Every rule carries:

* ``id`` -- the stable kebab-case name used in output, waivers
  (``# repro-lint: allow[<id>] -- reason``) and ``--explain <id>``;
* ``scope`` -- the dotted-module prefixes it applies to by default
  (None = every linted file); override per rule under
  ``[tool.repro-lint.rules.<id>]`` in ``pyproject.toml``;
* ``node_types`` -- the AST node classes it wants to see (the engine walks
  each file once and dispatches per node);
* ``explain`` -- the invariant's rationale and provenance (which PR/docstring
  established it), printed by ``--explain``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.analysis.engine import Finding, FileContext, dotted_name

__all__ = [
    "Rule",
    "register_rule",
    "unregister_rule",
    "get_rule",
    "rule_ids",
    "active_rules",
    "all_rules",
]


class Rule:
    """One registered invariant check (see the module docstring)."""

    id: str = ""
    summary: str = ""
    hint: str = ""
    explain: str = ""
    #: dotted-module prefixes this rule applies to; None = everywhere
    scope: Optional[Tuple[str, ...]] = None
    #: AST node classes dispatched to :meth:`visit`
    node_types: Tuple[type, ...] = ()

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        raise NotImplementedError  # pragma: no cover - abstract

    # ------------------------------------------------------------------
    def finding(self, node: ast.AST, ctx: FileContext, message: str,
                hint: Optional[str] = None) -> Finding:
        return Finding(
            rule=self.id, path=str(ctx.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            end_line=getattr(node, "end_lineno", None)
            or getattr(node, "lineno", 1),
            message=message, hint=self.hint if hint is None else hint)


# ----------------------------------------------------------------------
# the registry (mirrors repro.core.registry.BackendRegistry)
# ----------------------------------------------------------------------
_RULES: Dict[str, Rule] = {}


def register_rule(rule: Rule, *, replace: bool = False) -> None:
    """Register ``rule`` under ``rule.id`` (replace=False guards shadowing)."""
    if not isinstance(rule, Rule):
        raise TypeError("rule must be a repro.analysis.rules.Rule instance")
    if not rule.id:
        raise ValueError("rule.id must be a non-empty string")
    if rule.id in _RULES and not replace:
        raise ValueError(
            f"lint rule {rule.id!r} is already registered "
            f"(pass replace=True to shadow it deliberately)")
    _RULES[rule.id] = rule


def unregister_rule(rule_id: str) -> Rule:
    """Remove and return a registered rule."""
    try:
        return _RULES.pop(rule_id)
    except KeyError:
        raise KeyError(f"no lint rule named {rule_id!r} "
                       f"(registered: {rule_ids()})") from None


def get_rule(rule_id: str) -> Rule:
    try:
        return _RULES[rule_id]
    except KeyError:
        raise KeyError(f"no lint rule named {rule_id!r} "
                       f"(registered: {rule_ids()})") from None


def rule_ids() -> Tuple[str, ...]:
    return tuple(sorted(_RULES))


def all_rules() -> Tuple[Rule, ...]:
    """Every registered rule, including diagnostic pseudo-rules."""
    return tuple(_RULES[rule_id] for rule_id in sorted(_RULES))


def active_rules() -> Tuple[Rule, ...]:
    """The rules the engine dispatches (insertion order = doc order)."""
    return tuple(_RULES.values())


# ----------------------------------------------------------------------
# shared helpers
# ----------------------------------------------------------------------
_NP = ("np", "numpy")


def _np_names(*attrs: str) -> frozenset:
    return frozenset(f"{alias}.{attr}" for alias in _NP for attr in attrs)


def _call_keyword(call: ast.Call, name: str) -> Optional[ast.expr]:
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def _constant_str(node: Optional[ast.expr]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


# ----------------------------------------------------------------------
# rule 1: bit-identity
# ----------------------------------------------------------------------
class BitIdentityRule(Rule):
    id = "bit-identity"
    summary = ("BLAS reductions (`@`, np.dot/matmul/einsum) in mandatory "
               "canonical-recipe modules")
    hint = ("use pair_dots / raw_normal_statistics for normal-equation "
            "entries and predict_linear(_batch) for predictions "
            "(repro.regression.least_squares), or waive with a reason if "
            "the site is outside the fit/predict bit-identity contract")
    explain = """\
Fit and prediction paths must use the canonical elementwise recipes, never
BLAS matrix products.  BLAS GEMM/matvec entries are *batch-shape-dependent*:
the same dot product computed inside a (3000, k) product and alone can
differ in the last ulp, which breaks every bit-for-bit guarantee the engine
makes (gram-pooled == direct fits, batched == scalar residuals, artifact
round trips).  Established in PR 2 (`pair_dots`, the module docstring of
repro/regression/least_squares.py) and extended to the prediction side in
PR 5 (`predict_linear` / `predict_linear_batch`).  Sites genuinely outside
the contract (the posynomial baseline, PRESS/NNLS baselines, MNA circuit
solves) carry explicit waivers saying so."""
    scope = ("repro.core.evaluation", "repro.core.compile",
             "repro.core.engine", "repro.regression", "repro.posynomial",
             "repro.data.metrics")
    node_types = (ast.BinOp, ast.Call)

    _CALLS = _np_names("dot", "matmul", "einsum", "inner", "vdot",
                       "tensordot")

    def visit(self, node, ctx):
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.MatMult):
                yield self.finding(
                    node, ctx,
                    "matrix product `@` reduces in a batch-shape-dependent "
                    "order; the canonical recipes are mandatory here")
            return
        name = dotted_name(node.func)
        if name is None:
            return
        if name in self._CALLS:
            yield self.finding(
                node, ctx,
                f"{name}() reduces in a batch-shape-dependent order; the "
                f"canonical recipes are mandatory here")
        elif (isinstance(node.func, ast.Attribute)
              and node.func.attr == "dot"
              and name.split(".")[0] not in _NP):
            yield self.finding(
                node, ctx,
                f"{name}() is a BLAS dot; the canonical recipes are "
                f"mandatory here")


# ----------------------------------------------------------------------
# rule 2: errstate discipline
# ----------------------------------------------------------------------
class ErrstateRule(Rule):
    id = "errstate"
    summary = ("numpy elementwise math outside `with np.errstate(...)` in "
               "kernel-executing modules")
    hint = ("run the operation under `with np.errstate(all=\"ignore\")` "
            "(domain violations must produce inf/nan silently, not "
            "warnings), or keep it in a single-return wrapper invoked "
            "under the caller's errstate")
    explain = """\
Evolved expressions routinely divide by zero, overflow and take logs of
negative numbers -- by design those produce inf/nan and the individual is
scored infeasible (repro/core/functions.py module docstring).  Kernel
execution therefore sits under one `np.errstate(all="ignore")` block: the
compiled tape runs its whole postorder program under a single context
(PR 3, repro/core/compile.py) and Operator.__call__ wraps interpreter
dispatch the same way.  An elementwise op outside errstate either spews
RuntimeWarnings into user code or, worse, diverges between backends when a
warning filter turns them into errors.  Single-`return` wrapper functions
are exempt: they are the operator-implementation shape whose *callers* own
the context."""
    scope = ("repro.core.compile", "repro.core.functions",
             "repro.core.variable_combo", "repro.core.individual",
             "repro.core.evaluation", "repro.gp.nodes",
             "repro.posynomial.template", "repro.data.metrics")
    node_types = (ast.Call, ast.BinOp)

    _RISKY = _np_names("log", "log2", "log10", "log1p", "exp", "expm1",
                       "sqrt", "power", "float_power", "divide",
                       "true_divide", "reciprocal", "arctanh", "arcsin",
                       "arccos", "tan", "square")

    def visit(self, node, ctx):
        if isinstance(node, ast.BinOp):
            if not isinstance(node.op, (ast.Div, ast.Pow)):
                return
            if (isinstance(node.left, ast.Constant)
                    and isinstance(node.right, ast.Constant)):
                return  # a literal like 1/2: no array math involved
            what = "`/`" if isinstance(node.op, ast.Div) else "`**`"
        else:
            name = dotted_name(node.func)
            if name not in self._RISKY:
                return
            what = f"{name}()"
        if ctx.under_errstate(node) or ctx.in_trivial_wrapper(node):
            return
        yield self.finding(
            node, ctx,
            f"elementwise {what} outside `np.errstate` in a "
            f"kernel-executing module")


# ----------------------------------------------------------------------
# rule 3: determinism
# ----------------------------------------------------------------------
class DeterminismRule(Rule):
    id = "determinism"
    summary = ("global-state randomness or wall-clock time on a result "
               "path (thread a seeded Generator / clock instead)")
    hint = ("thread a seeded np.random.Generator (or an injected clock) "
            "from CaffeineSettings through to the draw site; waive with a "
            "reason only for result-neutral uses (jitter, provenance "
            "timestamps, lock staleness)")
    explain = """\
Every engine guarantee since PR 1 is stated for *fixed seeds*: fixed-seed
outputs are bit-identical across backends (PR 5/6), across checkpoint
resume (PR 7, which serializes the RNG bit-generator state), and across
process pools (PR 4).  That only holds if all randomness flows from the
settings-seeded np.random.Generator and no result depends on wall-clock
time.  Stdlib `random.*`, `np.random.*` module-level draws (global RNG) and
seedless `np.random.default_rng()` re-introduce hidden state; `time.time()`
/ `datetime.now()` feeding results make runs unreproducible.  Result-
neutral uses (retry-backoff jitter, provenance timestamps explicitly
excluded from fingerprints, lock staleness ages) are waived where they
occur, with the reason inline.  Scoped to `repro` by default -- scripts in
benchmarks/ and examples/ may legitimately read wall-clocks; widen or
narrow under [tool.repro-lint.rules.determinism] in pyproject.toml."""
    scope = ("repro",)
    node_types = (ast.Call, ast.Import, ast.ImportFrom)

    _STDLIB_FNS = frozenset({
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "gauss", "normalvariate", "seed", "betavariate",
        "expovariate", "triangular", "vonmisesvariate", "getrandbits"})
    _GENERATOR_OK = frozenset({
        "default_rng", "Generator", "SeedSequence", "BitGenerator",
        "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64"})
    _WALL_CLOCK = frozenset({
        "time.time", "time.time_ns", "datetime.now", "datetime.utcnow",
        "datetime.datetime.now", "datetime.datetime.utcnow", "date.today",
        "datetime.date.today"})

    def visit(self, node, ctx):
        if isinstance(node, ast.ImportFrom):
            if node.module == "random":
                yield self.finding(
                    node, ctx,
                    "`from random import ...` pulls global-state draws "
                    "out of sight of call-site review")
            return
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" and alias.asname:
                    yield self.finding(
                        node, ctx,
                        f"`import random as {alias.asname}` hides "
                        f"global-RNG call sites from review")
            return
        name = dotted_name(node.func)
        if name is None:
            return
        parts = name.split(".")
        if len(parts) == 2 and parts[0] == "random" \
                and parts[1] in self._STDLIB_FNS:
            yield self.finding(
                node, ctx,
                f"{name}() draws from the process-global stdlib RNG; "
                f"results must come from a seeded Generator")
        elif len(parts) == 3 and parts[0] in _NP and parts[1] == "random":
            attr = parts[2]
            if attr == "default_rng":
                if not node.args and not node.keywords:
                    yield self.finding(
                        node, ctx,
                        "seedless np.random.default_rng() draws fresh OS "
                        "entropy every call")
            elif attr not in self._GENERATOR_OK:
                yield self.finding(
                    node, ctx,
                    f"{name}() uses numpy's process-global RNG; "
                    f"results must come from a seeded Generator")
        elif name in self._WALL_CLOCK:
            yield self.finding(
                node, ctx,
                f"{name}() reads the wall clock; a result that depends on "
                f"it is unreproducible")


# ----------------------------------------------------------------------
# rule 4: spawn-safety
# ----------------------------------------------------------------------
class SpawnSafetyRule(Rule):
    id = "spawn-safety"
    summary = ("lambdas / nested functions / bound methods where a "
               "spawn-picklable module-level callable is required")
    hint = ("define the factory/initializer as a module-level named "
            "function (pickled by reference, importable by spawn-started "
            "workers); see the spawn caveat in repro/core/registry.py")
    explain = """\
Backend factories, executor initializers and everything shipped into a
process pool must survive pickling *by reference*: spawn-started workers
(macOS/Windows defaults) import modules fresh and can only resolve
module-level names (PR 4, the per-process caveat in repro/core/registry.py;
PR 2 made the default function set module-level named functions for the
same reason).  A lambda, a function defined inside another function, or a
bound method (`self.make_backend`) either fails to pickle outright or
silently resolves to different code in the child.  Session / the process-
executor factory fail fast at run time (`is_builtin_backend`); this rule
moves the failure to lint time."""
    scope = None
    node_types = (ast.Call,)

    _POOL_CTORS = frozenset({
        "ProcessPoolExecutor", "concurrent.futures.ProcessPoolExecutor"})

    def visit(self, node, ctx):
        name = dotted_name(node.func) or ""
        candidates: List[Tuple[str, Optional[ast.expr]]] = []
        if name == "register_backend" or name.endswith(".register_backend"):
            factory = (node.args[2] if len(node.args) >= 3
                       else _call_keyword(node, "factory"))
            candidates.append(("backend factory", factory))
        elif (isinstance(node.func, ast.Attribute)
              and node.func.attr == "register"
              and len(node.args) >= 2
              and _constant_str(node.args[0]) is not None):
            candidates.append(("backend factory", node.args[1]))
        elif name in self._POOL_CTORS or name.endswith(
                ".ProcessPoolExecutor"):
            candidates.append(
                ("process-pool initializer", _call_keyword(node,
                                                           "initializer")))
        for role, value in candidates:
            problem = self._unpicklable(value, ctx)
            if problem is not None:
                yield self.finding(
                    node, ctx,
                    f"{role} is {problem}, which spawn-started worker "
                    f"processes cannot import")

    def _unpicklable(self, value: Optional[ast.expr],
                     ctx: FileContext) -> Optional[str]:
        if value is None:
            return None
        if isinstance(value, ast.Lambda):
            return "a lambda"
        if isinstance(value, ast.Name):
            if value.id in ctx.nested_functions:
                return f"the nested function {value.id!r}"
            return None
        if isinstance(value, ast.Attribute):
            name = dotted_name(value)
            if name is None:
                return "a computed attribute"
            root = name.split(".")[0]
            if root == "self" or root not in ctx.imported_modules:
                return f"the bound/instance attribute {name!r}"
        return None


# ----------------------------------------------------------------------
# rule 5: crash-safety
# ----------------------------------------------------------------------
class CrashSafetyRule(Rule):
    id = "crash-safety"
    summary = ("raw writes to store paths bypassing the versioned "
               "envelope; unbounded FileLock waits")
    hint = ("persist run state through the _VersionedFileStore envelope "
            "(ColumnCacheStore / RunCheckpointStore / FrontArtifactStore: "
            "atomic replace + checksum + quarantine), and give every "
            "FileLock a finite timeout")
    explain = """\
All persistent run state goes through one envelope
(repro/core/cache_store.py, PR 3, factored out and hardened in PR 7/8):
magic + format version + SHA-256 checksum, atomic mkstemp + os.replace
writes (SIGKILL mid-save leaves the previous version readable), corrupt
files quarantined to <path>.corrupt-N, and merge-under-lock so concurrent
savers never lose entries.  A bare open(path, "w") / pickle.dump to a
.cache/.ckpt/.front path has none of those properties: a crash tears the
file and the next run silently cold-starts or, worse, reads garbage.
Likewise a FileLock with timeout=None turns a dead/hung peer into an
indefinitely hung sweep -- PR 7's failure semantics assume every lock wait
has a budget that surfaces as a structured TimeoutError."""
    scope = None
    node_types = (ast.Call,)

    _STORE_HINTS = (".cache", ".ckpt", ".checkpoint", ".front")

    def visit(self, node, ctx):
        name = dotted_name(node.func) or ""
        if name == "open" and node.args:
            mode = _constant_str(
                node.args[1] if len(node.args) > 1
                else _call_keyword(node, "mode")) or "r"
            if any(flag in mode for flag in "wax+"):
                target = ast.unparse(node.args[0])
                if any(hint in target for hint in self._STORE_HINTS):
                    yield self.finding(
                        node, ctx,
                        f"raw open({target!r}, {mode!r}) bypasses the "
                        f"versioned store envelope (no atomic replace, no "
                        f"checksum, no quarantine)")
        elif name == "pickle.dump":
            yield self.finding(
                node, ctx,
                "pickle.dump() writes an unversioned, unchecksummed, "
                "non-atomic file; run state must use the store envelope")
        elif name == "FileLock" or name.endswith(".FileLock"):
            timeout = (_call_keyword(node, "timeout")
                       or (node.args[1] if len(node.args) > 1 else None))
            if (isinstance(timeout, ast.Constant)
                    and timeout.value is None):
                yield self.finding(
                    node, ctx,
                    "FileLock(timeout=None) waits forever; a dead or hung "
                    "lock holder then hangs the whole sweep")


# ----------------------------------------------------------------------
# rule 6: fault-spec validity
# ----------------------------------------------------------------------
class FaultSpecRule(Rule):
    id = "fault-spec"
    summary = ("REPRO_FAULTS / fault_injection spec strings that name "
               "unknown fault points or break the grammar")
    hint = ("use `point[:key=value]...` specs over the registered points "
            "(repro.core.faults.KNOWN_FAULT_POINTS); a typo'd point "
            "silently never fires, making the fault test vacuous")
    explain = """\
PR 7's fault harness is deliberate about silence: an armed spec whose
point name matches nothing simply never fires, so a typo like
`worker.kil` turns a crash-recovery test into a test of nothing.  This
rule parses every string literal handed to `fault_injection=`, installed
via `faults.install*`, or assigned to the REPRO_FAULTS environment
variable with the real grammar (repro.core.faults.parse_faults) and checks
every point name against the registry of declared fault points
(KNOWN_FAULT_POINTS, each declared at the production call site listed in
the repro/core/faults.py table)."""
    scope = None
    node_types = (ast.Call, ast.Assign)

    def visit(self, node, ctx):
        specs: List[Tuple[ast.AST, str, bool]] = []  # node, text, is_point
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (isinstance(target, ast.Subscript)
                        and _constant_str(getattr(target, "slice", None))
                        == "REPRO_FAULTS"):
                    text = _constant_str(node.value)
                    if text is not None:
                        specs.append((node, text, False))
        else:
            value = _call_keyword(node, "fault_injection")
            text = _constant_str(value)
            if text is not None:
                specs.append((node, text, False))
            name = dotted_name(node.func) or ""
            if name.endswith("install_from_string") and node.args:
                text = _constant_str(node.args[0])
                if text is not None:
                    specs.append((node, text, False))
            elif name.endswith("faults.install") and node.args:
                text = _constant_str(node.args[0])
                if text is not None:
                    specs.append((node, text, True))
            elif (isinstance(node.func, ast.Attribute)
                  and node.func.attr == "setenv"
                  and len(node.args) >= 2
                  and _constant_str(node.args[0]) == "REPRO_FAULTS"):
                text = _constant_str(node.args[1])
                if text is not None:
                    specs.append((node, text, False))
        for spec_node, text, is_point in specs:
            for problem in self._problems(text, is_point):
                yield self.finding(spec_node, ctx, problem)

    def _problems(self, text: str, is_point: bool) -> Iterator[str]:
        try:
            from repro.core import faults
        except ImportError:  # pragma: no cover - linting a foreign tree
            return
        known = getattr(faults, "KNOWN_FAULT_POINTS", ())
        if is_point:
            if known and text not in known:
                yield (f"unknown fault point {text!r} "
                       f"(declared points: {', '.join(known)})")
            return
        try:
            parsed = faults.parse_faults(text)
        except ValueError as error:
            yield f"malformed fault spec: {error}"
            return
        for spec in parsed:
            if known and spec.point not in known:
                yield (f"unknown fault point {spec.point!r} in "
                       f"{text!r} (declared points: {', '.join(known)})")


# ----------------------------------------------------------------------
# rule 7: unordered iteration
# ----------------------------------------------------------------------
class UnorderedIterRule(Rule):
    id = "unordered-iter"
    summary = ("iterating a set in an order that can feed population, "
               "RNG-draw, cache-eviction or output order")
    hint = ("iterate `sorted(the_set)` (or keep a list/dict, which "
            "preserve insertion order); set iteration order depends on "
            "hash seeding and insertion history")
    explain = """\
Set iteration order is hash-order: it varies across processes (string
hash randomization) and across insertion histories, so any set iteration
whose order reaches a result -- population order, which individual a
tournament draws, which cache entry evicts first, the order of an output
table -- silently breaks the fixed-seed bit-identity guarantees
(PR 5/6 equivalence keys, PR 7 bit-identical resume).  Dicts and lists
are insertion-ordered and fine; membership tests on sets are fine; only
*iteration* of a set is flagged.  Wrap in sorted() to fix."""
    scope = None
    node_types = (ast.For, ast.comprehension)

    def visit(self, node, ctx):
        iterable = node.iter
        reason = self._setish(iterable, ctx)
        if reason is not None:
            yield self.finding(
                iterable if hasattr(iterable, "lineno") else node, ctx,
                f"iterating {reason} visits elements in hash order, which "
                f"is not stable across processes")

    def _setish(self, node: ast.expr, ctx: FileContext) -> Optional[str]:
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, ast.SetComp):
            return "a set comprehension"
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name in ("set", "frozenset"):
                return f"{name}(...)"
            return None
        if isinstance(node, ast.Name):
            function = ctx.enclosing_function(node)
            if function is None or isinstance(function, ast.Lambda):
                return None
            for stmt in ast.walk(function):
                if (isinstance(stmt, ast.Assign)
                        and len(stmt.targets) == 1
                        and isinstance(stmt.targets[0], ast.Name)
                        and stmt.targets[0].id == node.id):
                    inner = self._literal_setish(stmt.value)
                    if inner is not None:
                        return f"the set {node.id!r}"
        return None

    @staticmethod
    def _literal_setish(node: ast.expr) -> Optional[str]:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "set"
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name in ("set", "frozenset"):
                return name
        return None


# ----------------------------------------------------------------------
# rule 8: registry hygiene
# ----------------------------------------------------------------------
class RegistryHygieneRule(Rule):
    id = "registry-hygiene"
    summary = ("backend factories whose signatures do not match the "
               "documented factory contract for their kind")
    hint = ("match the per-kind factory contract documented in "
            "repro/core/registry.py: column=(X, settings), "
            "fit=(evaluator), pareto=(), evaluation=(workers, X, "
            "column_backend), residual=(y, normalization)")
    explain = """\
The backend registry (PR 4) documents one factory contract per kind --
what arguments the dispatch sites call the factory with.  A factory whose
signature cannot accept those arguments registers fine and then dies with
a TypeError deep inside the engine on first dispatch (or, for a
third-party backend, inside a worker process where the traceback is
hardest to read).  PR 8's "write your own backend" walkthrough in
benchmarks/README.md made the contract the public extension point; this
rule checks the arity of statically resolvable factories at registration
call sites against it, and flags unknown kind names outright."""
    scope = None
    node_types = (ast.Call,)

    _CONTRACT: Dict[str, Tuple[int, str]] = {
        "column": (2, "factory(X, settings)"),
        "fit": (1, "factory(evaluator)"),
        "pareto": (0, "factory()"),
        "evaluation": (3, "factory(workers, X, column_backend)"),
        "residual": (2, "factory(y, normalization)"),
    }

    def visit(self, node, ctx):
        kind: Optional[str] = None
        factory: Optional[ast.expr] = None
        name = dotted_name(node.func) or ""
        if name == "register_backend" or name.endswith(".register_backend"):
            if node.args:
                kind = _constant_str(node.args[0])
            factory = (node.args[2] if len(node.args) >= 3
                       else _call_keyword(node, "factory"))
        elif (isinstance(node.func, ast.Attribute)
              and node.func.attr == "register" and len(node.args) >= 2):
            kind = self._registry_kind(node.func.value)
            factory = node.args[1]
        if kind is None:
            return
        if kind not in self._CONTRACT:
            yield self.finding(
                node, ctx,
                f"unknown backend kind {kind!r} (kinds: "
                f"{', '.join(sorted(self._CONTRACT))})",
                hint="backend kinds are fixed by repro.core.registry."
                     "BACKEND_KINDS; check for a typo")
            return
        expected, signature = self._CONTRACT[kind]
        arity = self._factory_arity(factory, ctx)
        if arity is None:
            return
        minimum, maximum = arity
        if not (minimum <= expected <= maximum):
            yield self.finding(
                node, ctx,
                f"{kind} backend factory takes "
                f"{self._describe(minimum, maximum)} positional "
                f"argument(s) but the dispatch site calls {signature}")

    @staticmethod
    def _describe(minimum: int, maximum: float) -> str:
        if maximum == float("inf"):
            return f"at least {minimum}"
        if minimum == maximum:
            return str(minimum)
        return f"{minimum}-{int(maximum)}"

    @staticmethod
    def _registry_kind(value: ast.expr) -> Optional[str]:
        # _REGISTRIES["kind"].register(...) or backend_registry("kind")...
        if isinstance(value, ast.Subscript):
            return _constant_str(getattr(value, "slice", None))
        if isinstance(value, ast.Call) and value.args:
            name = dotted_name(value.func) or ""
            if name.endswith("backend_registry"):
                return _constant_str(value.args[0])
        return None

    def _factory_arity(self, factory: Optional[ast.expr], ctx: FileContext
                       ) -> Optional[Tuple[int, float]]:
        """(min, max) positional arity of a statically resolvable factory."""
        definition: Optional[ast.AST] = None
        if isinstance(factory, ast.Lambda):
            definition = factory
        elif isinstance(factory, ast.Name):
            definition = ctx.module_functions.get(factory.id)
        if definition is None or not hasattr(definition, "args"):
            return None
        args = definition.args
        positional = len(args.posonlyargs) + len(args.args)
        minimum = positional - len(args.defaults)
        maximum = float("inf") if args.vararg is not None else positional
        return minimum, maximum


# ----------------------------------------------------------------------
# diagnostic pseudo-rules: never dispatched, registered so --explain,
# --list-rules and the JSON rule counts know them
# ----------------------------------------------------------------------
class _PseudoRule(Rule):
    node_types = ()

    def visit(self, node, ctx):  # pragma: no cover - never dispatched
        return ()


class WaiverSyntaxRule(_PseudoRule):
    id = "waiver-syntax"
    summary = "malformed waiver comments (bad grammar, unknown rule, no reason)"
    hint = "write `# repro-lint: allow[rule-id] -- reason`"
    explain = """\
Emitted by the waiver parser (repro.analysis.waivers), not by an AST
visit: a comment mentioning `repro-lint` that does not parse as
`allow[known-rule, ...] -- reason` is reported instead of silently
ignored, because a waiver that never engages is indistinguishable from a
suppressed invariant.  Unwaivable (a broken waiver cannot excuse itself)."""


class WaiverUnusedRule(_PseudoRule):
    id = "waiver-unused"
    summary = "waivers that no longer suppress any finding"
    hint = "delete the stale waiver"
    explain = """\
Emitted by the waiver layer when a well-formed waiver matched no finding.
Keeping the inventory load-bearing is what makes `deleting any single
waiver turns CI red` a meaningful property in both directions: a waiver
exists if and only if the invariant is genuinely violated at that line
for the stated reason.  Unwaivable."""


class ParseErrorRule(_PseudoRule):
    id = "parse-error"
    summary = "files the Python parser rejects"
    hint = "fix the syntax error; nothing else can be checked until it parses"
    explain = """\
Emitted by the engine when a file cannot be read or parsed.  Unwaivable:
a file that does not parse cannot carry trustworthy waiver comments."""


# ----------------------------------------------------------------------
# registration (insertion order is the documented rule order)
# ----------------------------------------------------------------------
for _rule in (BitIdentityRule(), ErrstateRule(), DeterminismRule(),
              SpawnSafetyRule(), CrashSafetyRule(), FaultSpecRule(),
              UnorderedIterRule(), RegistryHygieneRule(),
              WaiverSyntaxRule(), WaiverUnusedRule(), ParseErrorRule()):
    register_rule(_rule)
