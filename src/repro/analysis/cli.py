"""``python -m repro lint`` -- the command-line face of the linter.

Exit codes: 0 clean, 1 unwaived findings, 2 usage error (unknown rule id,
no such path).  ``--format github`` emits workflow-command annotations so
findings land on the PR diff; ``--format json`` emits the stable schema-1
document (``LintReport.as_dict``).
"""

from __future__ import annotations

import argparse
import json
import sys
import textwrap
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.engine import LintConfig, LintEngine, LintReport
from repro.analysis.rules import all_rules, get_rule, rule_ids

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Check project invariants (bit-identity, determinism, "
                    "spawn/crash-safety, fault specs) with AST rules.")
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to lint (default: src/)")
    parser.add_argument(
        "--format", choices=("text", "json", "github"), default="text",
        help="output format (github = workflow-command annotations)")
    parser.add_argument(
        "--explain", metavar="RULE", default=None,
        help="print a rule's rationale and provenance, then exit")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rule ids with one-line summaries, then exit")
    parser.add_argument(
        "--show-waived", action="store_true",
        help="also print findings suppressed by waivers (text format)")
    return parser


def _explain(rule_id: str, stream) -> int:
    try:
        rule = get_rule(rule_id)
    except KeyError:
        print(f"error: no lint rule named {rule_id!r}; "
              f"registered rules: {', '.join(rule_ids())}", file=sys.stderr)
        return 2
    scope = ("everywhere" if rule.scope is None
             else ", ".join(rule.scope))
    print(f"{rule.id}: {rule.summary}", file=stream)
    print(f"  default scope: {scope}", file=stream)
    print(f"  fix hint: {rule.hint}", file=stream)
    print(file=stream)
    print(textwrap.indent(rule.explain, "  "), file=stream)
    return 0


def _list_rules(stream) -> int:
    for rule in all_rules():
        marker = " (diagnostic)" if not rule.node_types else ""
        print(f"{rule.id:<18} {rule.summary}{marker}", file=stream)
    return 0


def _print_text(report: LintReport, show_waived: bool, stream) -> None:
    for finding in report.findings:
        print(f"{finding.location()}: [{finding.rule}] {finding.message}",
              file=stream)
        if finding.hint:
            print(f"    hint: {finding.hint}", file=stream)
    if show_waived:
        for finding in report.waived:
            print(f"{finding.location()}: [{finding.rule}] waived "
                  f"({finding.waiver_reason}): {finding.message}",
                  file=stream)
    summary = (f"{len(report.findings)} finding(s), "
               f"{len(report.waived)} waived, "
               f"{report.n_files} file(s) checked")
    print(("FAIL: " if report.findings else "OK: ") + summary, file=stream)


def _github_escape(text: str) -> str:
    """Escape per the workflow-command property/data rules."""
    return (text.replace("%", "%25").replace("\r", "%0D")
            .replace("\n", "%0A"))


def _print_github(report: LintReport, stream) -> None:
    for finding in report.findings:
        message = finding.message
        if finding.hint:
            message = f"{message} -- hint: {finding.hint}"
        print(f"::error file={finding.path},line={finding.line},"
              f"col={finding.col},title=repro-lint {finding.rule}::"
              f"{_github_escape(message)}", file=stream)
    print(f"repro-lint: {len(report.findings)} finding(s), "
          f"{len(report.waived)} waived, {report.n_files} file(s)",
          file=stream)


def main(argv: Optional[Sequence[str]] = None, stream=None) -> int:
    stream = stream if stream is not None else sys.stdout
    args = build_parser().parse_args(
        list(argv) if argv is not None else None)
    if args.explain:
        return _explain(args.explain, stream)
    if args.list_rules:
        return _list_rules(stream)

    paths: List[Path] = [Path(p) for p in (args.paths or ["src"])]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): "
              f"{', '.join(str(p) for p in missing)}", file=sys.stderr)
        return 2
    config = LintConfig.load(paths[0])
    report = LintEngine(config=config).lint_paths(paths)
    if args.format == "json":
        json.dump(report.as_dict(), stream, indent=2, sort_keys=False)
        stream.write("\n")
    elif args.format == "github":
        _print_github(report, stream)
    else:
        _print_text(report, args.show_waived, stream)
    return 0 if report.clean else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
