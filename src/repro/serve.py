"""Stdlib HTTP prediction service over a frozen Pareto front.

``python -m repro serve artifact.bin --port 8000`` loads a
:class:`~repro.core.artifact.FrozenFront` and answers batched prediction
requests -- stateless, thread-per-request
(:class:`http.server.ThreadingHTTPServer`), no dependencies beyond the
standard library, so instances shard horizontally behind any balancer.

Endpoints (all JSON):

* ``GET /healthz`` -- liveness: target name, model count, cold-load ms.
* ``GET /models`` -- the trade-off's per-model metadata (complexity,
  train/test error, expression), i.e. what a designer picks from.
* ``GET /stats`` -- per-step latency percentiles and throughput from the
  in-process :class:`RequestProfiler` (p50/p95/p99 ms, rows/sec).
* ``POST /predict`` -- body ``{"X": [[...], ...]}`` plus optional model
  selection: ``"model_index"``, or ``"complexity_max"`` and/or ``"by"``
  (``"test"``/``"train"``), the
  :meth:`~repro.core.artifact.FrozenFront.select` contract.  With
  ``"all_models": true`` the response carries one prediction row per
  frozen model.  Predictions run through the batched kernel path
  (:func:`~repro.regression.least_squares.predict_linear_batch`) and are
  bit-identical to the originating run's models.
* ``POST /rescore`` -- body ``{"X": ..., "y": ...}``: per-model relative
  RMS errors on the posted data, bit-for-bit
  :func:`repro.core.report.rescore_models` (asserted by the test suite
  and the ``serving-smoke`` CI job).

Requests whose feature count disagrees with the artifact are rejected with
HTTP 400 (the only hard incompatibility); everything else about the posted
data is the caller's business -- a frozen front exists to be applied to
data it has never seen.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.artifact import FrozenFront, load_front

__all__ = ["RequestProfiler", "FrontHTTPServer", "make_server", "serve_front"]


def _percentile_ms(sorted_seconds: List[float], fraction: float) -> float:
    """Nearest-rank percentile of a sorted sample list, in milliseconds."""
    if not sorted_seconds:
        return float("nan")
    rank = max(0, min(len(sorted_seconds) - 1,
                      int(np.ceil(fraction * len(sorted_seconds))) - 1))
    return 1000.0 * sorted_seconds[rank]


class RequestProfiler:
    """Thread-safe per-step timing: latency percentiles and throughput.

    Each :meth:`profile_step` context manager records one duration (and the
    number of data rows it covered) under a step name; :meth:`snapshot`
    reduces every step's samples to count, p50/p95/p99 latency and rows/sec
    -- the numbers the ``serving`` section of the benchmark trajectory and
    the ``GET /stats`` endpoint report.  Bounded memory: only the newest
    ``max_samples`` durations per step are retained (counters keep exact
    totals).
    """

    def __init__(self, max_samples: int = 4096) -> None:
        self.max_samples = int(max_samples)
        self._lock = threading.Lock()
        self._samples: Dict[str, List[float]] = {}
        self._counts: Dict[str, int] = {}
        self._rows: Dict[str, int] = {}
        self._seconds: Dict[str, float] = {}
        self._metrics: Dict[str, float] = {}

    @contextmanager
    def profile_step(self, name: str, rows: int = 0):
        started = time.perf_counter()
        try:
            yield
        finally:
            self.record(name, time.perf_counter() - started, rows=rows)

    def record(self, name: str, seconds: float, rows: int = 0) -> None:
        with self._lock:
            samples = self._samples.setdefault(name, [])
            samples.append(float(seconds))
            if len(samples) > self.max_samples:
                del samples[: len(samples) - self.max_samples]
            self._counts[name] = self._counts.get(name, 0) + 1
            self._rows[name] = self._rows.get(name, 0) + int(rows)
            self._seconds[name] = self._seconds.get(name, 0.0) + float(seconds)

    def set_metric(self, name: str, value: float) -> None:
        """Record a one-off gauge (e.g. ``cold_load_ms``)."""
        with self._lock:
            self._metrics[name] = float(value)

    def snapshot(self) -> dict:
        """JSON-ready summary of every step and gauge recorded so far."""
        with self._lock:
            steps = {}
            for name, samples in self._samples.items():
                ordered = sorted(samples)
                total_seconds = self._seconds[name]
                total_rows = self._rows[name]
                steps[name] = {
                    "count": self._counts[name],
                    "total_rows": total_rows,
                    "total_seconds": total_seconds,
                    "p50_ms": _percentile_ms(ordered, 0.50),
                    "p95_ms": _percentile_ms(ordered, 0.95),
                    "p99_ms": _percentile_ms(ordered, 0.99),
                    "rows_per_second": (total_rows / total_seconds
                                        if total_seconds > 0 and total_rows
                                        else 0.0),
                }
            return {"steps": steps, "metrics": dict(self._metrics)}


# ----------------------------------------------------------------------
class FrontHTTPServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` bound to one frozen front."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], front: FrozenFront,
                 profiler: Optional[RequestProfiler] = None,
                 quiet: bool = True) -> None:
        self.front = front
        self.profiler = profiler if profiler is not None else RequestProfiler()
        self.quiet = quiet
        super().__init__(address, _FrontRequestHandler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _FrontRequestHandler(BaseHTTPRequestHandler):
    server_version = "caffeine-serve/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.server.quiet:  # pragma: no cover - cosmetic
            super().log_message(format, *args)

    def _send_json(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            raise ValueError("request body is empty (send a JSON object)")
        payload = json.loads(self.rfile.read(length).decode("utf-8"))
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    @staticmethod
    def _matrix(payload: dict, key: str, n_variables: int) -> np.ndarray:
        rows = payload.get(key)
        if rows is None:
            raise ValueError(f"request body is missing {key!r}")
        X = np.asarray(rows, dtype=float)
        if X.ndim == 1 and n_variables == 1:
            X = X.reshape(-1, 1)
        return X

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server contract)
        front = self.server.front
        if self.path == "/healthz":
            stats = self.server.profiler.snapshot()
            self._send_json({
                "status": "ok",
                "target": front.target_name,
                "n_models": front.n_models,
                "n_variables": front.n_variables,
                "cold_load_ms": stats["metrics"].get("cold_load_ms"),
            })
        elif self.path == "/models":
            self._send_json({
                "target": front.target_name,
                "variable_names": list(front.variable_names),
                "dataset_fingerprint": front.dataset_fingerprint,
                "models": front.describe(),
            })
        elif self.path == "/stats":
            self._send_json(self.server.profiler.snapshot())
        else:
            self._send_json({"error": f"unknown path {self.path!r}"},
                            status=404)

    def do_POST(self) -> None:  # noqa: N802 (http.server contract)
        front = self.server.front
        profiler = self.server.profiler
        try:
            payload = self._read_json()
            if self.path == "/predict":
                X = self._matrix(payload, "X", front.n_variables)
                with profiler.profile_step("predict", rows=X.shape[0]
                                           if X.ndim == 2 else 0):
                    response = self._predict(front, payload, X)
            elif self.path == "/rescore":
                X = self._matrix(payload, "X", front.n_variables)
                y = np.asarray(payload.get("y"), dtype=float)
                with profiler.profile_step("rescore", rows=X.shape[0]
                                           if X.ndim == 2 else 0):
                    errors = front.rescore(X, y)
                    response = {"target": front.target_name,
                                "n_rows": int(X.shape[0]),
                                "errors": [_jsonable(e) for e in errors]}
            else:
                self._send_json({"error": f"unknown path {self.path!r}"},
                                status=404)
                return
        except (ValueError, TypeError, json.JSONDecodeError) as error:
            self._send_json({"error": str(error)}, status=400)
            return
        self._send_json(response)

    @staticmethod
    def _predict(front: FrozenFront, payload: dict, X: np.ndarray) -> dict:
        complexity_max = payload.get("complexity_max")
        by = payload.get("by", "test")
        model_index = payload.get("model_index")
        if payload.get("all_models"):
            predictions = front.predict_all(X)
            return {
                "target": front.target_name,
                "n_rows": int(X.shape[0]),
                "models": front.describe(),
                "predictions": [[_jsonable(v) for v in row]
                                for row in predictions],
            }
        model = front.select(by=by, complexity_max=complexity_max,
                             model_index=model_index)
        predictions = front.predict(X, by=by, complexity_max=complexity_max,
                                    model_index=model_index)
        return {
            "target": front.target_name,
            "n_rows": int(X.shape[0]),
            "model": {
                "index": next(i for i, m in enumerate(front.models)
                              if m is model),
                "complexity": float(model.complexity),
                "train_error": float(model.train_error),
                "test_error": _jsonable(model.test_error),
                "expression": model.expression(),
            },
            "predictions": [_jsonable(v) for v in predictions],
        }


def _jsonable(value: float) -> Optional[float]:
    """Strict-JSON scalar: non-finite floats become None (JSON null)."""
    value = float(value)
    return value if np.isfinite(value) else None


# ----------------------------------------------------------------------
def make_server(front: Union[FrozenFront, str], host: str = "127.0.0.1",
                port: int = 0, quiet: bool = True) -> FrontHTTPServer:
    """Build (but do not start) a server; ``port=0`` picks a free port.

    ``front`` may be a loaded :class:`FrozenFront` or an artifact path; a
    path is loaded here with the load time recorded as the profiler's
    ``cold_load_ms`` gauge.  Call ``serve_forever()`` (typically on a
    thread) and ``shutdown()``/``server_close()`` when done.
    """
    profiler = RequestProfiler()
    if not isinstance(front, FrozenFront):
        started = time.perf_counter()
        front = load_front(front)
        profiler.set_metric("cold_load_ms",
                            1000.0 * (time.perf_counter() - started))
    server = FrontHTTPServer((host, port), front, profiler=profiler,
                             quiet=quiet)
    return server


def serve_front(path: Union[FrozenFront, str], host: str = "127.0.0.1",
                port: int = 8000, quiet: bool = False) -> None:
    """Blocking CLI entry point behind ``python -m repro serve``."""
    server = make_server(path, host=host, port=port, quiet=quiet)
    front = server.front
    print(f"Serving {front.target_name!r} ({front.n_models} models, "
          f"{front.n_variables} variables) at {server.url}")
    print("Endpoints: GET /healthz /models /stats; POST /predict /rescore")
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        server.server_close()
