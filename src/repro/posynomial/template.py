"""Monomial templates for posynomial performance models.

The posynomial approach the paper compares against is *template-based*: the
set of monomials (exponent vectors) is fixed a priori, and only the
coefficients are fitted to simulation data.  This module defines the
:class:`Monomial` and :class:`PosynomialTemplate` building blocks and the two
standard templates used in that literature:

* :func:`linear_template` -- constant + one monomial of degree +1 and one of
  degree -1 per variable;
* :func:`full_quadratic_template` -- the template of Daems et al.: constant,
  linear terms, squared terms and pairwise product/ratio terms.  For the
  paper's 13-variable OTA problem this template has dozens of terms, which is
  precisely the interpretability criticism CAFFEINE addresses.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["Monomial", "PosynomialTemplate", "linear_template",
           "full_quadratic_template"]


@dataclasses.dataclass(frozen=True)
class Monomial:
    """A product of design variables raised to (possibly negative) powers."""

    exponents: Tuple[float, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "exponents",
                           tuple(float(e) for e in self.exponents))

    @property
    def n_variables(self) -> int:
        return len(self.exponents)

    @property
    def degree(self) -> float:
        """Sum of absolute exponents."""
        return float(sum(abs(e) for e in self.exponents))

    def evaluate(self, X: np.ndarray) -> np.ndarray:
        """Evaluate the monomial on strictly positive sample points."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.n_variables:
            raise ValueError(
                f"X must have {self.n_variables} columns, got shape {X.shape}")
        result = np.ones(X.shape[0])
        with np.errstate(all="ignore"):
            for index, exponent in enumerate(self.exponents):
                if exponent != 0.0:
                    result = result * np.power(X[:, index], exponent)
        return result

    def render(self, variable_names: Sequence[str]) -> str:
        parts = []
        for name, exponent in zip(variable_names, self.exponents, strict=True):
            if exponent == 0.0:
                continue
            if exponent == 1.0:
                parts.append(name)
            else:
                exponent_text = (f"{int(exponent)}" if float(exponent).is_integer()
                                 else f"{exponent:g}")
                parts.append(f"{name}^{exponent_text}")
        return "*".join(parts) if parts else "1"


class PosynomialTemplate:
    """An ordered collection of monomials defining the model structure."""

    def __init__(self, monomials: Sequence[Monomial], n_variables: int) -> None:
        for monomial in monomials:
            if monomial.n_variables != n_variables:
                raise ValueError("all monomials must cover the same variables")
        self.n_variables = int(n_variables)
        self.monomials: Tuple[Monomial, ...] = tuple(monomials)

    def __len__(self) -> int:
        return len(self.monomials)

    def __iter__(self):
        return iter(self.monomials)

    def feature_matrix(self, X: np.ndarray) -> np.ndarray:
        """Evaluate every monomial; shape ``(n_samples, n_monomials)``."""
        X = np.asarray(X, dtype=float)
        if len(self.monomials) == 0:
            return np.zeros((X.shape[0], 0))
        return np.column_stack([m.evaluate(X) for m in self.monomials])

    def render(self, variable_names: Sequence[str]) -> List[str]:
        return [m.render(variable_names) for m in self.monomials]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"PosynomialTemplate(n_variables={self.n_variables}, "
                f"n_monomials={len(self.monomials)})")


def _unit(n_variables: int, index: int, value: float) -> Tuple[float, ...]:
    exponents = [0.0] * n_variables
    exponents[index] = value
    return tuple(exponents)


def linear_template(n_variables: int, include_inverse: bool = True
                    ) -> PosynomialTemplate:
    """Constant-free linear template: ``x_i`` and optionally ``1/x_i`` terms."""
    if n_variables < 1:
        raise ValueError("n_variables must be >= 1")
    monomials = [Monomial(_unit(n_variables, i, 1.0)) for i in range(n_variables)]
    if include_inverse:
        monomials += [Monomial(_unit(n_variables, i, -1.0))
                      for i in range(n_variables)]
    return PosynomialTemplate(monomials, n_variables)


def full_quadratic_template(n_variables: int, include_ratios: bool = True
                            ) -> PosynomialTemplate:
    """The Daems-style second-order template.

    Terms: ``x_i``, ``1/x_i``, ``x_i^2``, ``1/x_i^2``, pairwise products
    ``x_i*x_j`` and (optionally) pairwise ratios ``x_i/x_j``.  For 13
    variables this yields 13*4 + 78 + 156 = 286 candidate monomials; the NNLS
    fit drives most coefficients to exactly zero, and the paper's criticism
    ("the models have dozens of terms") refers to the surviving ones.
    """
    if n_variables < 1:
        raise ValueError("n_variables must be >= 1")
    monomials: List[Monomial] = []
    for i in range(n_variables):
        monomials.append(Monomial(_unit(n_variables, i, 1.0)))
        monomials.append(Monomial(_unit(n_variables, i, -1.0)))
        monomials.append(Monomial(_unit(n_variables, i, 2.0)))
        monomials.append(Monomial(_unit(n_variables, i, -2.0)))
    for i, j in itertools.combinations(range(n_variables), 2):
        exponents = [0.0] * n_variables
        exponents[i] = 1.0
        exponents[j] = 1.0
        monomials.append(Monomial(tuple(exponents)))
        if include_ratios:
            ratio_ij = [0.0] * n_variables
            ratio_ij[i] = 1.0
            ratio_ij[j] = -1.0
            monomials.append(Monomial(tuple(ratio_ij)))
            ratio_ji = [0.0] * n_variables
            ratio_ji[i] = -1.0
            ratio_ji[j] = 1.0
            monomials.append(Monomial(tuple(ratio_ji)))
    return PosynomialTemplate(monomials, n_variables)
