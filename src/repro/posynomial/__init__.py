"""Posynomial performance-model baseline (Daems, Gielen & Sansen).

The paper compares CAFFEINE against simulation-based posynomial performance
models (DAC'02 / IEEE TCAD May 2003).  A posynomial is a sum of monomials
with non-negative coefficients::

    f(x) = sum_k  c_k * x_1^{a_1k} * ... * x_d^{a_dk},   c_k >= 0

The baseline here follows the template-based recipe of that work: a fixed
monomial template (constant, linear, quadratic and pairwise-ratio terms) is
fitted to the training data by non-negative least squares, in the "signomial"
variant that allows a free constant term and fits the positive and negative
parts separately when a plain posynomial cannot follow the data.  Errors are
measured with the same quality-of-fit metrics (qwc on training data, qtc on
testing data) used for CAFFEINE, which is exactly the comparison of the
paper's Figure 4.
"""

from repro.posynomial.template import (
    Monomial,
    PosynomialTemplate,
    full_quadratic_template,
    linear_template,
)
from repro.posynomial.model import PosynomialModel, fit_posynomial

__all__ = [
    "Monomial",
    "PosynomialTemplate",
    "linear_template",
    "full_quadratic_template",
    "PosynomialModel",
    "fit_posynomial",
]
