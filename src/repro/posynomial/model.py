"""Fitting posynomial / signomial performance models.

:func:`fit_posynomial` fits the coefficients of a fixed monomial template to
training data.  Two variants are provided:

* ``signomial=False`` -- a true posynomial: non-negative coefficients, fitted
  with non-negative least squares (plus a free constant, as in Daems et al.);
* ``signomial=True`` (default) -- coefficients of either sign, obtained by
  fitting the template twice (once for the positive part and once for the
  negative part) with NNLS.  This is the "signomial" relaxation the original
  work falls back to when a plain posynomial cannot follow the data, and it
  is the stronger baseline, so the Figure 4 comparison uses it by default.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from repro.data.dataset import Dataset
from repro.data.metrics import error_normalization, relative_rmse
from repro.posynomial.template import PosynomialTemplate, full_quadratic_template
from repro.regression.nnls import nonnegative_least_squares

__all__ = ["PosynomialModel", "fit_posynomial"]


@dataclasses.dataclass(frozen=True)
class PosynomialModel:
    """A fitted posynomial (or signomial) performance model."""

    target_name: str
    variable_names: Tuple[str, ...]
    template: PosynomialTemplate
    coefficients: np.ndarray
    intercept: float
    train_error: float
    test_error: float = float("nan")
    signomial: bool = True
    log_scaled_target: bool = False

    # ------------------------------------------------------------------
    @property
    def n_terms(self) -> int:
        """Number of monomials with a non-zero fitted coefficient."""
        return int(np.count_nonzero(self.coefficients))

    @property
    def train_error_percent(self) -> float:
        return 100.0 * self.train_error

    @property
    def test_error_percent(self) -> float:
        return 100.0 * self.test_error

    def predict_transformed(self, X: np.ndarray) -> np.ndarray:
        """Predictions in the (possibly log-scaled) fitting domain."""
        features = self.template.feature_matrix(np.asarray(X, dtype=float))
        # repro-lint: allow[bit-identity] -- posynomial baseline (figure4 comparison) is outside the CAFFEINE fit/predict bit-identity contract
        return features @ self.coefficients + self.intercept

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predictions in the original target domain."""
        predictions = self.predict_transformed(X)
        if self.log_scaled_target:
            return np.power(10.0, predictions)
        return predictions

    def expression(self, precision: int = 4, max_terms: Optional[int] = None) -> str:
        """Readable rendering; posynomial models typically have dozens of terms."""
        from repro.core.weights import format_number

        parts = [format_number(self.intercept, precision)]
        rendered = self.template.render(self.variable_names)
        order = np.argsort(-np.abs(self.coefficients))
        shown = 0
        for index in order:
            coefficient = self.coefficients[index]
            if coefficient == 0.0:
                continue
            if max_terms is not None and shown >= max_terms:
                parts.append("...")
                break
            sign = "-" if coefficient < 0 else "+"
            parts.append(f"{sign} {format_number(abs(coefficient), precision)} * "
                         f"{rendered[index]}")
            shown += 1
        body = " ".join(parts)
        if self.log_scaled_target:
            return f"10^( {body} )"
        return body

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"PosynomialModel({self.target_name}: {self.n_terms} terms, "
                f"train={self.train_error_percent:.2f}%, "
                f"test={self.test_error_percent:.2f}%)")


def _fit_signomial(features: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, float]:
    """Coefficients of either sign via a double NNLS on [F, -F]."""
    stacked = np.hstack([features, -features])
    coefficients, intercept = nonnegative_least_squares(stacked, y,
                                                        include_intercept=True)
    n = features.shape[1]
    return coefficients[:n] - coefficients[n:], intercept


def fit_posynomial(train: Dataset, test: Optional[Dataset] = None,
                   template: Optional[PosynomialTemplate] = None,
                   signomial: bool = True) -> PosynomialModel:
    """Fit a posynomial/signomial model of ``train`` and measure its errors.

    Parameters
    ----------
    train, test:
        Sample tables; all design-variable values must be strictly positive
        (posynomials are only defined on the positive orthant).
    template:
        Monomial template; the Daems-style full quadratic template is used
        when omitted.
    signomial:
        Allow coefficients of either sign (default) or restrict to a true
        posynomial.
    """
    train = train.drop_nonfinite()
    if np.any(train.X <= 0.0):
        raise ValueError("posynomial models require strictly positive variables")
    if template is None:
        template = full_quadratic_template(train.n_variables)
    if template.n_variables != train.n_variables:
        raise ValueError("template dimensionality does not match the dataset")

    features = template.feature_matrix(train.X)
    if signomial:
        coefficients, intercept = _fit_signomial(features, train.y)
    else:
        coefficients, intercept = nonnegative_least_squares(
            features, train.y, include_intercept=True)

    # Errors use the same normalization as CAFFEINE: RMS / training-data range.
    normalization = error_normalization(train.y)
    # repro-lint: allow[bit-identity] -- posynomial baseline is outside the bit-identity contract
    train_predictions = features @ coefficients + intercept
    train_error = relative_rmse(train.y, train_predictions, normalization)

    test_error = float("nan")
    if test is not None:
        test = test.drop_nonfinite()
        if test.variable_names != train.variable_names:
            raise ValueError("train and test datasets use different design variables")
        test_features = template.feature_matrix(test.X)
        # repro-lint: allow[bit-identity] -- posynomial baseline is outside the bit-identity contract
        test_predictions = test_features @ coefficients + intercept
        test_error = relative_rmse(test.y, test_predictions, normalization)

    return PosynomialModel(
        target_name=train.target_name,
        variable_names=train.variable_names,
        template=template,
        coefficients=np.asarray(coefficients, dtype=float),
        intercept=float(intercept),
        train_error=train_error,
        test_error=test_error,
        signomial=signomial,
        log_scaled_target=train.log_scaled,
    )
