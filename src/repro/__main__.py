"""Command-line interface: regenerate the paper's experiments from a shell.

Usage::

    python -m repro figure3 --targets PM SRp --population 60 --generations 20
    python -m repro table1
    python -m repro table2
    python -m repro figure4
    python -m repro ablation --target SRp
    python -m repro datasets            # print the dataset summary only

Every command samples the OTA datasets (243-run orthogonal hypercube,
dx=0.10 train / dx=0.03 test), runs the requested experiment at the chosen
budget and prints the paper-style table or series to stdout.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.core.settings import CaffeineSettings
from repro.experiments import (
    generate_ota_datasets,
    run_ablation,
    run_figure3,
    run_figure4,
    run_table1,
    run_table2,
)

COMMANDS = ("datasets", "figure3", "table1", "table2", "figure4", "ablation")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="CAFFEINE reproduction: regenerate the paper's experiments.")
    parser.add_argument("command", choices=COMMANDS,
                        help="which artifact to regenerate")
    parser.add_argument("--targets", nargs="*", default=None,
                        help="performance goals (default: all six)")
    parser.add_argument("--target", default="PM",
                        help="single performance for table2/ablation (default: PM)")
    parser.add_argument("--population", type=int, default=80,
                        help="population size (default: 80)")
    parser.add_argument("--generations", type=int, default=30,
                        help="number of generations (default: 30)")
    parser.add_argument("--seed", type=int, default=0,
                        help="random seed (default: 0)")
    parser.add_argument("--runs", type=int, default=243,
                        help="DOE runs per dataset, a power of 3 (default: 243)")
    parser.add_argument("--paper-budget", action="store_true",
                        help="use the paper's full budget (population 200, "
                             "5000 generations; hours per performance)")
    return parser


def settings_from_args(args: argparse.Namespace) -> CaffeineSettings:
    if args.paper_budget:
        return CaffeineSettings.paper_settings(random_seed=args.seed)
    return CaffeineSettings(population_size=args.population,
                            n_generations=args.generations,
                            random_seed=args.seed)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    datasets = generate_ota_datasets(n_runs=args.runs)
    print(datasets.summary())
    if args.command == "datasets":
        return 0

    settings = settings_from_args(args)
    print(f"\nCAFFEINE settings: population {settings.population_size}, "
          f"{settings.n_generations} generations, seed {settings.random_seed}\n")

    if args.command == "figure3":
        print(run_figure3(datasets, settings, targets=args.targets).render())
    elif args.command == "table1":
        print(run_table1(datasets, settings, targets=args.targets).render())
    elif args.command == "table2":
        print(run_table2(datasets, settings, target=args.target).render())
    elif args.command == "figure4":
        print(run_figure4(datasets, settings, targets=args.targets).render())
    elif args.command == "ablation":
        print(run_ablation(datasets, settings, target=args.target).render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
