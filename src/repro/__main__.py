"""Command-line interface: the paper's experiments plus a generic ``run``.

Usage::

    python -m repro figure3 --targets PM SRp --population 60 --generations 20
    python -m repro table1 --jobs 3 --column-cache columns.cache
    python -m repro table2
    python -m repro figure4
    python -m repro ablation --target SRp
    python -m repro datasets            # print the dataset summary only
    python -m repro run data.csv --target y --test holdout.csv

The experiment subcommands sample the OTA datasets (243-run orthogonal
hypercube, dx=0.10 train / dx=0.03 test), run the requested sweep through a
:class:`~repro.core.session.Session` at the chosen budget and print the
paper-style table or series to stdout.  ``--jobs`` runs a sweep's targets
on a process pool and ``--column-cache`` persists the shared column cache
across invocations (both wall-clock knobs; results are identical).

``run`` opens an arbitrary header-row CSV as a modeling problem
(:meth:`~repro.core.problem.Problem.from_csv`) and prints the resulting
Pareto trade-off -- the paper's workflow on any numeric dataset.

Deployment subcommands close the loop from run to service::

    python -m repro freeze data.csv --target y --out front.caffeine
    python -m repro serve front.caffeine --port 8000

``freeze`` runs a CSV problem and saves its trade-off as a frozen artifact
(:func:`~repro.core.artifact.save_front`); the sweep subcommands take
``--save-front DIR`` to freeze every target's front after the sweep; and
``serve`` answers batched HTTP prediction requests from an artifact without
any evolution machinery (see :mod:`repro.serve` and the serving guide in
``benchmarks/README.md``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Mapping, Optional, Sequence

from repro.core.problem import Problem
from repro.core.report import tradeoff_table
from repro.core.session import ProgressPrinter, Session
from repro.core.settings import CaffeineSettings
from repro.experiments import (
    generate_ota_datasets,
    run_ablation,
    run_figure3,
    run_figure4,
    run_table1,
    run_table2,
)

#: All subcommands: experiment regenerators, the generic ``run``, the
#: deployment pair (``freeze`` a front artifact, ``serve`` it over HTTP)
#: and the invariant linter (``lint``, see :mod:`repro.analysis`).
COMMANDS = ("datasets", "figure3", "table1", "table2", "figure4", "ablation",
            "run", "freeze", "serve", "lint")


def _budget_parser() -> argparse.ArgumentParser:
    """Shared budget options (a subparser parent)."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("budget")
    group.add_argument("--population", type=int, default=80,
                       help="population size (default: 80)")
    group.add_argument("--generations", type=int, default=30,
                       help="number of generations (default: 30)")
    group.add_argument("--seed", type=int, default=0,
                       help="random seed (default: 0)")
    group.add_argument("--paper-budget", action="store_true",
                       help="use the paper's full budget (population 200, "
                            "5000 generations; hours per performance)")
    return parent


def _cache_parser() -> argparse.ArgumentParser:
    """The persistent-column-cache option (a subparser parent)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--column-cache", default=None, metavar="PATH",
        help="persist the shared column cache at PATH so repeated "
             "invocations start warm (never changes the models)")
    return parent


def _checkpoint_parser() -> argparse.ArgumentParser:
    """Crash-safety options (a subparser parent)."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("crash safety")
    group.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="snapshot every run's generation boundaries (and final "
             "results) to a checkpoint store at PATH, making the sweep "
             "crash-safe (never changes the models)")
    group.add_argument(
        "--checkpoint-every", type=int, default=1, metavar="N",
        help="snapshot every N generations (default: 1)")
    group.add_argument(
        "--resume", action="store_true",
        help="warm-restart from --checkpoint: finished runs return their "
             "stored results, interrupted runs continue bit-identically "
             "from their last snapshot")
    return parent


def _save_front_parser() -> argparse.ArgumentParser:
    """The freeze-after-sweep option (a subparser parent)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--save-front", default=None, metavar="DIR",
        help="after the sweep, freeze every target's trade-off as a "
             "deployable artifact at DIR/<target>.front (load with "
             "repro.load_front, serve with 'python -m repro serve')")
    return parent


def _jobs_parser() -> argparse.ArgumentParser:
    """The process-pool option -- only for multi-run sweep subcommands."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--jobs", type=int, default=1,
        help="run up to N sweep targets concurrently on a process pool "
             "(default: 1 = serial; results are identical either way)")
    return parent


def _ota_parser() -> argparse.ArgumentParser:
    """OTA dataset options shared by the experiment subcommands."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--runs", type=int, default=243,
                        help="DOE runs per dataset, a power of 3 "
                             "(default: 243)")
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="CAFFEINE reproduction: regenerate the paper's "
                    "experiments, or model any CSV dataset.")
    budget = _budget_parser()
    cache = _cache_parser()
    checkpoint = _checkpoint_parser()
    jobs = _jobs_parser()
    ota = _ota_parser()
    save_front = _save_front_parser()
    subparsers = parser.add_subparsers(dest="command", required=True,
                                       metavar="{%s}" % ",".join(COMMANDS))

    subparsers.add_parser(
        "datasets", parents=[ota],
        help="print the OTA dataset summary only")
    # Multi-run sweeps take --jobs; single-run subcommands (table2, run)
    # deliberately do not -- there is nothing to parallelize over.
    for name, help_text in (
            ("figure3", "error/complexity trade-offs per performance"),
            ("table1", "simplest models under 10%% train+test error"),
            ("figure4", "CAFFEINE vs posynomial comparison"),
    ):
        sub = subparsers.add_parser(name,
                                    parents=[budget, cache, checkpoint,
                                             jobs, ota, save_front],
                                    help=help_text)
        sub.add_argument("--targets", nargs="*", default=None,
                         help="performance goals (default: all six)")
    ablation = subparsers.add_parser(
        "ablation", parents=[budget, cache, checkpoint, jobs, ota],
        help="grammar/objective ablation study")
    ablation.add_argument("--target", default="PM",
                          help="single performance (default: PM)")
    table2 = subparsers.add_parser(
        "table2", parents=[budget, cache, ota],
        help="the sequence of models of decreasing error")
    table2.add_argument("--target", default="PM",
                        help="single performance (default: PM)")

    run = subparsers.add_parser(
        "run", parents=[budget, cache, checkpoint],
        help="model a CSV dataset (header row; Pareto table out)")
    run.add_argument("csv", help="training data: a header-row CSV file")
    run.add_argument("--target", required=True,
                     help="name of the modeled column")
    run.add_argument("--test", default=None, metavar="CSV",
                     help="optional testing CSV with the same columns")
    run.add_argument("--features", nargs="*", default=None,
                     help="design-variable columns (default: every "
                          "non-target column)")
    run.add_argument("--log10-target", action="store_true",
                     help="model log10 of the target (the paper's fu "
                          "convention)")
    run.add_argument("--progress", action="store_true",
                     help="print per-generation progress lines")
    run.add_argument("--save-front", default=None, metavar="PATH",
                     help="freeze the resulting trade-off as a deployable "
                          "artifact at PATH (serve it with "
                          "'python -m repro serve PATH')")

    freeze = subparsers.add_parser(
        "freeze", parents=[budget, cache, checkpoint],
        help="model a CSV dataset and freeze the trade-off as an artifact")
    freeze.add_argument("csv", help="training data: a header-row CSV file")
    freeze.add_argument("--target", required=True,
                        help="name of the modeled column")
    freeze.add_argument("--out", required=True, metavar="PATH",
                        help="artifact file to write")
    freeze.add_argument("--test", default=None, metavar="CSV",
                        help="optional testing CSV with the same columns")
    freeze.add_argument("--features", nargs="*", default=None,
                        help="design-variable columns (default: every "
                             "non-target column)")
    freeze.add_argument("--log10-target", action="store_true",
                        help="model log10 of the target (the paper's fu "
                             "convention)")
    freeze.add_argument("--progress", action="store_true",
                        help="print per-generation progress lines")

    serve = subparsers.add_parser(
        "serve",
        help="serve a frozen artifact's predictions over HTTP (stdlib only)")
    serve.add_argument("artifact", help="a front artifact written by "
                                        "'freeze' or --save-front")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8000,
                       help="TCP port (default: 8000)")
    serve.add_argument("--verbose", action="store_true",
                       help="log one line per request to stderr")

    # ``lint`` owns its argv (main() hands off before this parser runs);
    # registered here only so --help lists it.
    subparsers.add_parser(
        "lint", add_help=False,
        help="check project invariants (see 'python -m repro lint --help')")
    return parser


def settings_from_args(args: argparse.Namespace) -> CaffeineSettings:
    if args.paper_budget:
        return CaffeineSettings.paper_settings(random_seed=args.seed)
    return CaffeineSettings(population_size=args.population,
                            n_generations=args.generations,
                            random_seed=args.seed)


def _save_front_file(result, path) -> None:
    """Freeze one result at ``path`` and report where it landed."""
    from repro.core.artifact import save_front

    n_models = save_front(result, path)
    print(f"Froze {n_models} models to {path} "
          f"(serve with: python -m repro serve {path})")


def _save_front_directory(results: Mapping, directory) -> None:
    """Freeze every sweep result as ``<directory>/<target>.front``."""
    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    print()
    for target, result in results.items():
        _save_front_file(result, base / f"{target}.front")


def _run_csv_command(args: argparse.Namespace) -> int:
    problem = Problem.from_csv(args.csv, target=args.target,
                               test_path=args.test,
                               feature_columns=args.features,
                               log10_target=args.log10_target)
    settings = settings_from_args(args)
    print(f"Problem {problem.name!r}: {problem.train.n_samples} train"
          + (f" / {problem.test.n_samples} test" if problem.test else "")
          + f" samples, {problem.n_variables} variables")
    print(f"CAFFEINE settings: population {settings.population_size}, "
          f"{settings.n_generations} generations, seed "
          f"{settings.random_seed}\n")
    callbacks = [ProgressPrinter()] if args.progress else []
    session = Session([problem], settings=settings,
                      column_cache_path=args.column_cache,
                      callbacks=callbacks,
                      checkpoint_path=args.checkpoint,
                      checkpoint_every=args.checkpoint_every)
    result = session.run(resume=args.resume).single()
    print(tradeoff_table(
        result.tradeoff,
        title=f"{problem.name}: error/complexity trade-off "
              f"({result.n_models} models, errors in %)"))
    if len(result.test_tradeoff) > 0:
        print()
        print(tradeoff_table(
            result.test_tradeoff,
            title=f"{problem.name}: testing-error trade-off "
                  f"({len(result.test_tradeoff)} models)"))
    best = result.best_model()
    print(f"\nBest model: {best.expression()}")
    save_front_path = (args.out if args.command == "freeze"
                       else args.save_front)
    if save_front_path:
        print()
        _save_front_file(result, save_front_path)
    return 0


def _serve_command(args: argparse.Namespace) -> int:
    from repro.serve import serve_front

    serve_front(args.artifact, host=args.host, port=args.port,
                quiet=not args.verbose)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv[:1] == ["lint"]:
        from repro.analysis.cli import main as lint_main

        return lint_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.command in ("run", "freeze"):
        return _run_csv_command(args)
    if args.command == "serve":
        return _serve_command(args)

    datasets = generate_ota_datasets(n_runs=args.runs)
    print(datasets.summary())
    if args.command == "datasets":
        return 0

    settings = settings_from_args(args)
    jobs = getattr(args, "jobs", 1)  # table2 has no --jobs (single run)
    print(f"\nCAFFEINE settings: population {settings.population_size}, "
          f"{settings.n_generations} generations, seed {settings.random_seed}"
          + (f", {jobs} jobs" if jobs > 1 else "") + "\n")

    checkpoint = getattr(args, "checkpoint", None)  # table2 has no sweep
    resume = getattr(args, "resume", False)
    sweep_result = None
    if args.command == "figure3":
        sweep_result = run_figure3(datasets, settings, targets=args.targets,
                                   column_cache_path=args.column_cache,
                                   jobs=jobs, checkpoint_path=checkpoint,
                                   resume=resume)
        print(sweep_result.render())
    elif args.command == "table1":
        sweep_result = run_table1(datasets, settings, targets=args.targets,
                                  column_cache_path=args.column_cache,
                                  jobs=jobs, checkpoint_path=checkpoint,
                                  resume=resume)
        print(sweep_result.render())
    elif args.command == "table2":
        print(run_table2(datasets, settings, target=args.target,
                         column_cache_path=args.column_cache).render())
    elif args.command == "figure4":
        sweep_result = run_figure4(datasets, settings, targets=args.targets,
                                   column_cache_path=args.column_cache,
                                   jobs=jobs, checkpoint_path=checkpoint,
                                   resume=resume)
        print(sweep_result.render())
    elif args.command == "ablation":
        print(run_ablation(datasets, settings, target=args.target,
                           column_cache_path=args.column_cache,
                           jobs=jobs, checkpoint_path=checkpoint,
                           resume=resume).render())
    if sweep_result is not None and getattr(args, "save_front", None):
        _save_front_directory(sweep_result.results, args.save_front)
    return 0


if __name__ == "__main__":
    sys.exit(main())
