"""PRESS statistic: closed-form leave-one-out cross-validation of linear fits.

The paper's simplification-after-generation step uses the Predicted REsidual
Sums of Squares (PRESS) statistic coupled with forward regression to prune
basis functions that harm *predictive* ability (as opposed to training fit).
For a linear model fitted by least squares, the leave-one-out residual at
sample ``t`` has the closed form ``e_t / (1 - h_tt)`` where ``e_t`` is the
ordinary residual and ``h_tt`` the t-th diagonal entry of the hat matrix
``H = X (X'X)^-1 X'`` -- no refitting needed.
"""

from __future__ import annotations

import numpy as np

from repro.regression.least_squares import design_matrix

__all__ = ["hat_matrix", "loo_residuals", "press_statistic", "press_rmse"]


def _solve_gram(design: np.ndarray, ridge: float) -> np.ndarray:
    """(X'X + ridge*I)^-1 X' with the intercept column unpenalized."""
    # repro-lint: allow[bit-identity] -- PRESS is a diagnostic statistic, outside the fit/predict bit-identity contract
    gram = design.T @ design
    penalty = np.eye(design.shape[1]) * ridge * max(1.0, float(np.trace(gram)))
    penalty[0, 0] = 0.0
    try:
        return np.linalg.solve(gram + penalty, design.T)
    except np.linalg.LinAlgError:
        return np.linalg.pinv(design)


def hat_matrix(basis_matrix: np.ndarray, include_intercept: bool = True,
               ridge: float = 1e-10) -> np.ndarray:
    """The hat (projection) matrix ``H = X (X'X)^-1 X'`` of a linear fit."""
    design = design_matrix(np.asarray(basis_matrix, dtype=float),
                           include_intercept)
    # repro-lint: allow[bit-identity] -- PRESS diagnostic, outside the bit-identity contract
    return design @ _solve_gram(design, ridge)


def loo_residuals(basis_matrix: np.ndarray, y: np.ndarray,
                  include_intercept: bool = True,
                  ridge: float = 1e-10) -> np.ndarray:
    """Leave-one-out residuals ``y_t - yhat_t^(-t)`` of the linear fit.

    Computed in closed form from the hat-matrix diagonal.  Diagonal entries
    numerically equal to 1 (a sample fitted exactly by its own basis column)
    are clipped so the result stays finite; such samples effectively carry a
    very large leave-one-out residual, which is the desired behaviour for
    model selection.
    """
    basis_matrix = np.asarray(basis_matrix, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    if basis_matrix.shape[0] != y.shape[0]:
        raise ValueError("basis_matrix and y disagree on the number of samples")
    design = design_matrix(basis_matrix, include_intercept)
    projector = _solve_gram(design, ridge)
    # repro-lint: allow[bit-identity] -- PRESS diagnostic, outside the bit-identity contract
    predictions = design @ (projector @ y)
    residuals = y - predictions
    # repro-lint: allow[bit-identity] -- PRESS diagnostic, outside the bit-identity contract
    leverage = np.einsum("ij,ji->i", design, projector)
    leverage = np.clip(leverage, 0.0, 1.0 - 1e-9)
    return residuals / (1.0 - leverage)


def press_statistic(basis_matrix: np.ndarray, y: np.ndarray,
                    include_intercept: bool = True,
                    ridge: float = 1e-10) -> float:
    """The PRESS statistic: sum of squared leave-one-out residuals."""
    loo = loo_residuals(basis_matrix, y, include_intercept, ridge)
    if not np.all(np.isfinite(loo)):
        return float("inf")
    # repro-lint: allow[bit-identity] -- PRESS diagnostic, outside the bit-identity contract
    return float(loo @ loo)


def press_rmse(basis_matrix: np.ndarray, y: np.ndarray,
               include_intercept: bool = True,
               ridge: float = 1e-10) -> float:
    """Root-mean PRESS, comparable in scale to an RMS prediction error."""
    press = press_statistic(basis_matrix, y, include_intercept, ridge)
    if not np.isfinite(press):
        return float("inf")
    return float(np.sqrt(press / np.asarray(y).size))
