"""Least-squares fitting of linearly weighted basis functions.

In CAFFEINE the overall expression is ``y = w0 + sum_j wj * basis_j(x)``:
the basis functions are evolved by GP, the weights ``wj`` and intercept
``w0`` are learned by linear least squares on the training data.  This module
implements that fit with the numerical safeguards needed when basis functions
are nearly collinear or badly scaled (a common occurrence for randomly
generated expressions): a tiny ridge term and column scaling.

Two entry points produce *bit-for-bit identical* fits:

* :func:`fit_linear` -- takes the basis matrix and computes its own normal
  equations;
* :func:`fit_linear_from_gram` -- takes precomputed raw cross-products (as
  cached and batched by the generation-level gram pool in
  :mod:`repro.core.evaluation`) and skips every per-fit pass over
  ``n_samples`` except the final prediction/residual step.

The identity holds because both paths share one canonical dot-product
recipe, :func:`pair_dots`: columns are stacked as *rows* of a C-contiguous
array and reduced along the contiguous axis, where NumPy's pairwise
summation depends only on the row's own data and length -- never on which
other rows share the batch.  (BLAS GEMM does *not* have this property: the
entries of ``P.T @ P`` change in the last ulp with the shape of ``P``, which
is why the gram pool cannot simply gather from one big matrix product.)

The same discipline applies on the *prediction* side.  A BLAS matvec
``B @ w`` reduces each sample's ``k`` terms in an implementation-chosen
order that may change with blocking, so predictions produced one individual
at a time and predictions produced in a stacked batch could disagree in the
last ulp.  :func:`predict_linear` therefore accumulates
``w0 + sum_j wj * col_j`` **left to right over the basis columns**: every
step is an elementwise multiply or add (exact per element, independent of
how many individuals share the batch), and there is no cross-sample or
cross-term reduction at all.  :func:`predict_linear_batch` runs the same
left-to-right accumulation over an ``(m, n, k)`` stack of same-width basis
matrices -- each output row is bit-for-bit the row :func:`predict_linear`
would produce alone, which is what lets the generation-batched residual
engine (``CaffeineSettings.residual_backend = "batched"``) replace
per-individual prediction/residual passes with one stacked pass per basis
width.  The residual reduction then goes through
:func:`repro.data.metrics.relative_rmse_rows`, a contiguous-last-axis
pairwise summation with the same row-independence property as
:func:`pair_dots`.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["LinearFit", "design_matrix", "fit_linear", "fit_linear_from_gram",
           "fit_linear_from_gram_batch", "pair_dots", "raw_normal_statistics",
           "predict_linear", "predict_linear_batch"]


@dataclasses.dataclass(frozen=True)
class LinearFit:
    """Result of fitting ``y ~ intercept + basis_matrix @ coefficients``."""

    intercept: float
    coefficients: np.ndarray
    residual_sum_of_squares: float
    rank: int
    singular: bool

    @property
    def n_terms(self) -> int:
        """Number of (non-intercept) basis functions in the fit."""
        return int(self.coefficients.shape[0])

    def predict(self, basis_matrix: np.ndarray) -> np.ndarray:
        """Predictions for a basis matrix with the same columns as the fit."""
        return predict_linear(self, basis_matrix)


def design_matrix(basis_matrix: np.ndarray, include_intercept: bool = True
                  ) -> np.ndarray:
    """Prepend an intercept column of ones to a basis matrix."""
    basis_matrix = np.asarray(basis_matrix, dtype=float)
    if basis_matrix.ndim != 2:
        raise ValueError("basis_matrix must be 2-D (n_samples, n_bases)")
    if not include_intercept:
        return basis_matrix
    ones = np.ones((basis_matrix.shape[0], 1))
    return np.hstack([ones, basis_matrix])


def pair_dots(rows_a: np.ndarray, rows_b: np.ndarray) -> np.ndarray:
    """Canonical columnwise dot products: ``sum(rows_a * rows_b, axis=1)``.

    ``rows_a`` / ``rows_b`` are ``(n_pairs, n_samples)`` C-contiguous stacks
    of basis columns *as rows*.  Reducing along the contiguous last axis uses
    NumPy's pairwise summation, whose result for each row depends only on
    that row's data and length -- so a dot product computed in a batch of
    3000 pairs is bit-for-bit the value computed alone.  Every normal-equation
    entry in this module (and in the gram pool of
    :mod:`repro.core.evaluation`) goes through this one recipe; that is the
    entire basis of the ``fit_linear`` == ``fit_linear_from_gram`` guarantee.
    """
    return (rows_a * rows_b).sum(axis=1)


def raw_normal_statistics(basis_matrix: np.ndarray, y: np.ndarray
                          ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Raw (unscaled, no-intercept) normal-equation blocks of one matrix.

    Returns ``(gram, colsums, ydots)`` where ``gram[i, j]`` is the canonical
    dot of columns ``i`` and ``j``, ``colsums`` the canonical column sums and
    ``ydots`` the canonical column--target dots.  Exactly the quantities the
    gram pool caches per column/pair, computed by the same recipe.
    """
    n_bases = basis_matrix.shape[1]
    rows = np.ascontiguousarray(basis_matrix.T)
    colsums = rows.sum(axis=1)
    ydots = (rows * y[None, :]).sum(axis=1)
    upper_i, upper_j = np.triu_indices(n_bases)
    dots = pair_dots(rows[upper_i], rows[upper_j])
    gram = np.empty((n_bases, n_bases))
    gram[upper_i, upper_j] = dots
    gram[upper_j, upper_i] = dots
    return gram, colsums, ydots


def _accumulate_predictions(intercept: float, coefficients: np.ndarray,
                            basis_matrix: np.ndarray) -> np.ndarray:
    """The canonical prediction recipe: ``w0 + sum_j wj * col_j``, left to
    right, purely elementwise -- shared by :func:`predict_linear`, both fit
    entry points and (stacked) :func:`predict_linear_batch`."""
    predictions = np.full(basis_matrix.shape[0], float(intercept))
    for j in range(basis_matrix.shape[1]):
        predictions += coefficients[j] * basis_matrix[:, j]
    return predictions


def _residual_sum_of_squares(residual_rows: np.ndarray) -> np.ndarray:
    """Canonical per-row squared residual norms via :func:`pair_dots`.

    ``residual_rows`` is an ``(m, n_samples)`` stack; each row's result is
    independent of the stack (contiguous-axis pairwise summation), so the
    scalar fits (``m == 1``) and the batched fit report identical
    ``residual_sum_of_squares`` values.
    """
    return pair_dots(residual_rows, residual_rows)


def _intercept_only_fit(y: np.ndarray, include_intercept: bool) -> LinearFit:
    """The zero-basis-function fit (shared by both entry points)."""
    intercept = float(np.mean(y)) if include_intercept else 0.0
    residuals = y - intercept
    rss = float(_residual_sum_of_squares(residuals[np.newaxis, :])[0])
    return LinearFit(intercept=intercept, coefficients=np.zeros(0),
                     residual_sum_of_squares=rss,
                     rank=1 if include_intercept else 0, singular=False)


def _solve_from_raw(gram: np.ndarray, colsums: np.ndarray, ydots: np.ndarray,
                    y_sum: float, basis_matrix: np.ndarray, y: np.ndarray,
                    ridge: float, include_intercept: bool
                    ) -> Optional[LinearFit]:
    """Shared solve: scale, ridge, solve/fallback, unscale, score.

    The raw blocks must come from :func:`raw_normal_statistics` or from the
    gram pool's per-pair cache -- both use :func:`pair_dots`, so this
    function cannot tell (and does not care) which path produced them.
    ``basis_matrix`` is still required: the singular fallback and the
    residual computation intentionally run on the full data so the reported
    error is the exact quantity the rest of the system has always used.
    """
    n_samples, n_bases = basis_matrix.shape
    # Scale columns to unit RMS so the ridge term acts uniformly.
    scales = np.sqrt(gram.diagonal() / n_samples)
    scales[scales < 1e-300] = 1.0

    if include_intercept:
        size = n_bases + 1
        full_scales = np.empty(size)
        full_scales[0] = 1.0
        full_scales[1:] = scales
        raw = np.empty((size, size))
        raw[0, 0] = float(n_samples)
        raw[0, 1:] = colsums
        raw[1:, 0] = colsums
        raw[1:, 1:] = gram
        raw_rhs = np.empty(size)
        raw_rhs[0] = y_sum
        raw_rhs[1:] = ydots
    else:
        size = n_bases
        full_scales = scales
        raw = gram
        raw_rhs = ydots
    scaled_gram = raw / (full_scales[:, None] * full_scales[None, :])
    rhs = raw_rhs / full_scales
    # The rank estimate needs the unpenalized gram; compute its spectrum
    # before the in-place ridge add below.  Informational metadata only --
    # matrix_rank's tolerance recipe on a symmetric eigendecomposition.
    try:
        spectrum = np.abs(np.linalg.eigvalsh(scaled_gram))
        tolerance = spectrum.max() * size * np.finfo(np.float64).eps
        rank = int(np.count_nonzero(spectrum > tolerance))
    except np.linalg.LinAlgError:  # pragma: no cover - non-finite gram
        rank = 0
    # Trace via an explicit diagonal gather + contiguous pairwise sum: the
    # one reduction recipe whose result is identical whether computed here
    # or as one row of the batched path's (m, size) diagonal stack.
    diagonal_indices = np.arange(size)
    ridge_term = ridge * max(
        1.0, float(scaled_gram[diagonal_indices, diagonal_indices].sum()))
    diagonal = scaled_gram.reshape(-1)[:: size + 1]
    if include_intercept:
        # The intercept is never penalized.
        diagonal[1:] += ridge_term
    else:
        diagonal += ridge_term
    try:
        solution = np.linalg.solve(scaled_gram, rhs)
        singular = False
    except np.linalg.LinAlgError:
        design = design_matrix(basis_matrix / scales, include_intercept)
        solution, *_ = np.linalg.lstsq(design, y, rcond=None)
        singular = True
    if not np.all(np.isfinite(solution)):
        return None

    if include_intercept:
        intercept = float(solution[0])
        coefficients = solution[1:] / scales
    else:
        intercept = 0.0
        coefficients = solution / scales

    coefficients = np.asarray(coefficients, dtype=float)
    # Canonical prediction + residual reduction (see the module docstring):
    # the same bits whether this fit is solved alone or as one row of the
    # batched path's stacked solve.
    predictions = _accumulate_predictions(intercept, coefficients, basis_matrix)
    residuals = y - predictions
    rss = float(_residual_sum_of_squares(residuals[None, :])[0])
    return LinearFit(intercept=intercept, coefficients=coefficients,
                     residual_sum_of_squares=rss,
                     rank=rank, singular=singular)


def fit_linear(basis_matrix: np.ndarray, y: np.ndarray,
               ridge: float = 1e-10,
               include_intercept: bool = True) -> Optional[LinearFit]:
    """Fit ``y ~ w0 + basis_matrix @ w`` by (slightly ridged) least squares.

    Parameters
    ----------
    basis_matrix:
        Array of shape ``(n_samples, n_bases)``; may have zero columns, in
        which case only the intercept is fitted.
    y:
        Target vector of length ``n_samples``.
    ridge:
        Small Tikhonov term added to the normal equations for numerical
        robustness against collinear evolved basis functions.  The intercept
        is never penalized.
    include_intercept:
        Whether to include the constant term ``w0``.

    Returns
    -------
    LinearFit or None
        ``None`` when the basis matrix contains non-finite entries (an
        evolved expression that overflows on the training data); the caller
        treats such individuals as infeasible.
    """
    basis_matrix = np.asarray(basis_matrix, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    if basis_matrix.ndim != 2:
        raise ValueError("basis_matrix must be 2-D (n_samples, n_bases)")
    if basis_matrix.shape[0] != y.shape[0]:
        raise ValueError("basis_matrix and y disagree on the number of samples")
    if y.size == 0:
        raise ValueError("cannot fit on an empty dataset")
    if not np.all(np.isfinite(basis_matrix)) or not np.all(np.isfinite(y)):
        return None

    if basis_matrix.shape[1] == 0:
        return _intercept_only_fit(y, include_intercept)

    gram, colsums, ydots = raw_normal_statistics(basis_matrix, y)
    return _solve_from_raw(gram, colsums, ydots, float(y.sum()),
                           basis_matrix, y, ridge, include_intercept)


def fit_linear_from_gram(gram: np.ndarray, colsums: np.ndarray,
                         ydots: np.ndarray, y_sum: float,
                         basis_matrix: np.ndarray, y: np.ndarray,
                         ridge: float = 1e-10,
                         include_intercept: bool = True
                         ) -> Optional[LinearFit]:
    """Fit from precomputed raw cross-products -- bit-for-bit ``fit_linear``.

    Parameters
    ----------
    gram, colsums, ydots:
        The raw normal-equation blocks of ``basis_matrix``: columnwise dot
        products, column sums and column--target dots, each computed by the
        canonical :func:`pair_dots` recipe (see
        :func:`raw_normal_statistics`; the gram pool in
        :mod:`repro.core.evaluation` caches exactly these scalars per basis
        column/pair and gathers them here without touching ``n_samples``).
    y_sum:
        ``float(y.sum())`` -- cached once per dataset by the pool.
    basis_matrix, y:
        Still needed for the singular-``lstsq`` fallback and the final
        residual pass.  The caller must have established finiteness of both
        (``fit_linear`` scans; the evaluator keeps per-column finite flags)
        -- this function assumes it, which is where the per-fit full-matrix
        ``isfinite`` scan is saved.
    """
    basis_matrix = np.asarray(basis_matrix, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    if basis_matrix.shape[1] == 0:
        return _intercept_only_fit(y, include_intercept)
    return _solve_from_raw(np.asarray(gram, dtype=float),
                           np.asarray(colsums, dtype=float),
                           np.asarray(ydots, dtype=float),
                           float(y_sum), basis_matrix, y, ridge,
                           include_intercept)


def fit_linear_from_gram_batch(grams: np.ndarray, colsums: np.ndarray,
                               ydots: np.ndarray, y_sum: float,
                               basis_matrices: Sequence[np.ndarray],
                               y: np.ndarray, ridge: float = 1e-10
                               ) -> List[Optional[LinearFit]]:
    """Batch of same-width :func:`fit_linear_from_gram` fits, one LAPACK call.

    ``grams`` is an ``(m, k, k)`` stack of raw grams, ``colsums``/``ydots``
    the matching ``(m, k)`` stacks, and ``basis_matrices`` the ``m``
    assembled matrices (needed, as always, for the prediction/residual
    pass); all items share the same ``y``.  Requires ``k >= 1`` and an
    intercept (the evaluator's case).

    Every per-item result is bit-for-bit what :func:`fit_linear_from_gram`
    returns: the scaling/ridge arithmetic is elementwise (batching cannot
    change it) and the stacked ``eigvalsh``/``solve`` gufuncs run the same
    LAPACK routine per item as the scalar calls.  A singular item aborts
    the whole stacked solve, so that (rare) case falls back to scalar fits
    item by item -- same results, just slower.
    """
    y = np.asarray(y, dtype=float).ravel()
    m, k = colsums.shape
    if k == 0:
        raise ValueError("batched gram fits require at least one basis column")
    n_samples = y.shape[0]
    size = k + 1

    def _scalar_fallback() -> List[Optional[LinearFit]]:
        return [fit_linear_from_gram(grams[i], colsums[i], ydots[i], y_sum,
                                     basis_matrices[i], y, ridge)
                for i in range(m)]

    base_indices = np.arange(k)
    scales = np.sqrt(grams[:, base_indices, base_indices] / n_samples)
    scales[scales < 1e-300] = 1.0
    full_scales = np.empty((m, size))
    full_scales[:, 0] = 1.0
    full_scales[:, 1:] = scales
    raw = np.empty((m, size, size))
    raw[:, 0, 0] = float(n_samples)
    raw[:, 0, 1:] = colsums
    raw[:, 1:, 0] = colsums
    raw[:, 1:, 1:] = grams
    raw_rhs = np.empty((m, size))
    raw_rhs[:, 0] = y_sum
    raw_rhs[:, 1:] = ydots
    scaled_gram = raw / (full_scales[:, :, None] * full_scales[:, None, :])
    rhs = raw_rhs / full_scales

    diagonal_indices = np.arange(size)
    try:
        spectra = np.abs(np.linalg.eigvalsh(scaled_gram))
    except np.linalg.LinAlgError:  # pragma: no cover - non-finite gram
        return _scalar_fallback()
    tolerances = spectra.max(axis=-1) * size * np.finfo(np.float64).eps
    ranks = np.count_nonzero(spectra > tolerances[:, None], axis=-1)
    traces = scaled_gram[:, diagonal_indices, diagonal_indices].sum(axis=1)
    ridge_terms = ridge * np.maximum(1.0, traces)
    scaled_gram[:, diagonal_indices[1:], diagonal_indices[1:]] += \
        ridge_terms[:, None]
    try:
        solutions = np.linalg.solve(scaled_gram, rhs[..., None])[..., 0]
    except np.linalg.LinAlgError:
        return _scalar_fallback()

    finite_rows = np.isfinite(solutions).all(axis=1)
    coefficient_rows = solutions[:, 1:] / scales
    finite_indices = np.flatnonzero(finite_rows)
    fits: List[Optional[LinearFit]] = [None] * m
    if finite_indices.size == 0:
        return fits
    # One stacked canonical prediction pass plus one row-stacked residual
    # reduction for the whole group -- each row bit-for-bit the scalar
    # path's value (see the module docstring), so the only remaining
    # per-fit n_samples-scaled work in this module is gone.
    stacked = np.stack([np.asarray(basis_matrices[i], dtype=float)
                        for i in finite_indices])
    predictions = predict_linear_batch(solutions[finite_indices, 0],
                                       coefficient_rows[finite_indices],
                                       stacked)
    residual_rows = y[None, :] - predictions
    rss_rows = _residual_sum_of_squares(residual_rows)
    for row, i in enumerate(finite_indices):
        fits[i] = LinearFit(
            intercept=float(solutions[i, 0]),
            coefficients=coefficient_rows[i],
            residual_sum_of_squares=float(rss_rows[row]),
            rank=int(ranks[i]), singular=False)
    return fits


def predict_linear(fit: LinearFit, basis_matrix: np.ndarray) -> np.ndarray:
    """Evaluate a :class:`LinearFit` on a new basis matrix.

    Uses the canonical left-to-right accumulation
    ``w0 + sum_j wj * basis_matrix[:, j]`` rather than a BLAS matvec: every
    step is elementwise, so the result is bit-for-bit independent of whether
    the prediction is computed alone or as one row of
    :func:`predict_linear_batch`'s stacked pass (see the module docstring's
    prediction-side batch-stability argument).
    """
    basis_matrix = np.asarray(basis_matrix, dtype=float)
    if basis_matrix.ndim != 2:
        raise ValueError("basis_matrix must be 2-D")
    if basis_matrix.shape[1] != fit.n_terms:
        raise ValueError(
            f"fit has {fit.n_terms} terms but basis matrix has "
            f"{basis_matrix.shape[1]} columns"
        )
    return _accumulate_predictions(fit.intercept, fit.coefficients,
                                   basis_matrix)


def predict_linear_batch(intercepts: np.ndarray, coefficient_rows: np.ndarray,
                         stacked_matrices: np.ndarray) -> np.ndarray:
    """Stacked same-width predictions, bit-for-bit :func:`predict_linear`.

    Parameters
    ----------
    intercepts:
        ``(m,)`` fitted intercepts, one per individual.
    coefficient_rows:
        ``(m, k)`` fitted coefficients (every individual has ``k`` basis
        functions -- callers group by width).
    stacked_matrices:
        ``(m, n_samples, k)`` stack of the individuals' basis matrices.

    Returns the ``(m, n_samples)`` prediction rows.  Row ``i`` is computed
    by exactly the floating-point operations of
    ``predict_linear(fit_i, stacked_matrices[i])``: the accumulation is
    left-to-right over the ``k`` columns and purely elementwise, so batch
    composition cannot change a single bit (no cross-term reduction exists
    for a batch shape to perturb -- the prediction-side analogue of
    :func:`pair_dots`).

    One precisely-scoped caveat: when an *addition meets two NaN operands
    with different payloads*, x86 SIMD lanes and scalar tails may propagate
    different payloads, so NaN bit patterns (payload/sign only -- never
    NaN-ness itself, nor any non-NaN value) can depend on array shape.
    Two-NaN additions require NaN *inputs*: with finite intercepts and
    coefficients (every successful fit -- non-finite solutions are
    rejected) and finite columns, products of finite operands can overflow
    to infinity but never to NaN, so at most one NaN operand ever reaches
    an addition and the guarantee is fully bit-for-bit.  Columns containing
    NaN (e.g. test-set blow-ups) yield NaN predictions in identical
    *positions* either way, and the downstream residual reduction
    (:func:`repro.data.metrics.relative_rmse_rows`) maps any NaN-bearing
    row to ``inf`` regardless of payload -- so reported errors are always
    bit-for-bit equal, which is the quantity the engine's equivalence
    guarantees cover (enforced in ``tests/test_core_residual.py``).
    """
    intercepts = np.asarray(intercepts, dtype=float)
    coefficient_rows = np.asarray(coefficient_rows, dtype=float)
    stacked = np.asarray(stacked_matrices, dtype=float)
    if stacked.ndim != 3:
        raise ValueError("stacked_matrices must be 3-D (m, n_samples, k)")
    m, n_samples, k = stacked.shape
    if coefficient_rows.shape != (m, k):
        raise ValueError("coefficient_rows must have shape (m, k)")
    if intercepts.shape != (m,):
        raise ValueError("intercepts must have shape (m,)")
    predictions = np.empty((m, n_samples))
    predictions[...] = intercepts[:, None]
    for j in range(k):
        predictions += coefficient_rows[:, j, None] * stacked[:, :, j]
    return predictions
