"""Least-squares fitting of linearly weighted basis functions.

In CAFFEINE the overall expression is ``y = w0 + sum_j wj * basis_j(x)``:
the basis functions are evolved by GP, the weights ``wj`` and intercept
``w0`` are learned by linear least squares on the training data.  This module
implements that fit with the numerical safeguards needed when basis functions
are nearly collinear or badly scaled (a common occurrence for randomly
generated expressions): a tiny ridge term and column scaling.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

__all__ = ["LinearFit", "design_matrix", "fit_linear", "predict_linear"]


@dataclasses.dataclass(frozen=True)
class LinearFit:
    """Result of fitting ``y ~ intercept + basis_matrix @ coefficients``."""

    intercept: float
    coefficients: np.ndarray
    residual_sum_of_squares: float
    rank: int
    singular: bool

    @property
    def n_terms(self) -> int:
        """Number of (non-intercept) basis functions in the fit."""
        return int(self.coefficients.shape[0])

    def predict(self, basis_matrix: np.ndarray) -> np.ndarray:
        """Predictions for a basis matrix with the same columns as the fit."""
        return predict_linear(self, basis_matrix)


def design_matrix(basis_matrix: np.ndarray, include_intercept: bool = True
                  ) -> np.ndarray:
    """Prepend an intercept column of ones to a basis matrix."""
    basis_matrix = np.asarray(basis_matrix, dtype=float)
    if basis_matrix.ndim != 2:
        raise ValueError("basis_matrix must be 2-D (n_samples, n_bases)")
    if not include_intercept:
        return basis_matrix
    ones = np.ones((basis_matrix.shape[0], 1))
    return np.hstack([ones, basis_matrix])


def fit_linear(basis_matrix: np.ndarray, y: np.ndarray,
               ridge: float = 1e-10,
               include_intercept: bool = True) -> Optional[LinearFit]:
    """Fit ``y ~ w0 + basis_matrix @ w`` by (slightly ridged) least squares.

    Parameters
    ----------
    basis_matrix:
        Array of shape ``(n_samples, n_bases)``; may have zero columns, in
        which case only the intercept is fitted.
    y:
        Target vector of length ``n_samples``.
    ridge:
        Small Tikhonov term added to the normal equations for numerical
        robustness against collinear evolved basis functions.  The intercept
        is never penalized.
    include_intercept:
        Whether to include the constant term ``w0``.

    Returns
    -------
    LinearFit or None
        ``None`` when the basis matrix contains non-finite entries (an
        evolved expression that overflows on the training data); the caller
        treats such individuals as infeasible.
    """
    basis_matrix = np.asarray(basis_matrix, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    if basis_matrix.ndim != 2:
        raise ValueError("basis_matrix must be 2-D (n_samples, n_bases)")
    if basis_matrix.shape[0] != y.shape[0]:
        raise ValueError("basis_matrix and y disagree on the number of samples")
    if y.size == 0:
        raise ValueError("cannot fit on an empty dataset")
    if not np.all(np.isfinite(basis_matrix)) or not np.all(np.isfinite(y)):
        return None

    n_samples, n_bases = basis_matrix.shape
    if n_bases == 0:
        intercept = float(np.mean(y)) if include_intercept else 0.0
        residuals = y - intercept
        return LinearFit(intercept=intercept, coefficients=np.zeros(0),
                         residual_sum_of_squares=float(residuals @ residuals),
                         rank=1 if include_intercept else 0, singular=False)

    # Scale columns to unit RMS so the ridge term acts uniformly.
    scales = np.sqrt(np.mean(basis_matrix ** 2, axis=0))
    scales[scales < 1e-300] = 1.0
    scaled = basis_matrix / scales

    design = design_matrix(scaled, include_intercept)
    gram = design.T @ design
    penalty = np.eye(design.shape[1]) * ridge * max(1.0, float(np.trace(gram)))
    if include_intercept:
        penalty[0, 0] = 0.0
    rhs = design.T @ y
    try:
        solution = np.linalg.solve(gram + penalty, rhs)
        singular = False
    except np.linalg.LinAlgError:
        solution, *_ = np.linalg.lstsq(design, y, rcond=None)
        singular = True
    if not np.all(np.isfinite(solution)):
        return None

    if include_intercept:
        intercept = float(solution[0])
        coefficients = solution[1:] / scales
    else:
        intercept = 0.0
        coefficients = solution / scales

    predictions = basis_matrix @ coefficients + intercept
    residuals = y - predictions
    # rank(A) == rank(A^T A); the gram matrix is (n_bases+1)^2 and already in
    # hand, so its SVD costs microseconds where the full design's SVD was the
    # single most expensive step of every fit.  Squaring the singular values
    # makes this estimate *less* tolerant: designs with condition number
    # beyond ~1/sqrt(eps) report rank-deficiency earlier than the full
    # design's SVD would.  The field is informational metadata only.
    rank = int(np.linalg.matrix_rank(gram))
    return LinearFit(intercept=intercept,
                     coefficients=np.asarray(coefficients, dtype=float),
                     residual_sum_of_squares=float(residuals @ residuals),
                     rank=rank, singular=singular)


def predict_linear(fit: LinearFit, basis_matrix: np.ndarray) -> np.ndarray:
    """Evaluate a :class:`LinearFit` on a new basis matrix."""
    basis_matrix = np.asarray(basis_matrix, dtype=float)
    if basis_matrix.ndim != 2:
        raise ValueError("basis_matrix must be 2-D")
    if basis_matrix.shape[1] != fit.n_terms:
        raise ValueError(
            f"fit has {fit.n_terms} terms but basis matrix has "
            f"{basis_matrix.shape[1]} columns"
        )
    if fit.n_terms == 0:
        return np.full(basis_matrix.shape[0], fit.intercept)
    return basis_matrix @ fit.coefficients + fit.intercept
