"""Linear-regression utilities shared by CAFFEINE and the posynomial baseline.

CAFFEINE's individuals are linear combinations of evolved basis functions;
the linear coefficients are learned with least squares
(:mod:`~repro.regression.least_squares`).  The post-processing step of the
paper ("simplification after generation") relies on the PRESS statistic --
a closed-form leave-one-out cross-validation of linear models
(:mod:`~repro.regression.press`) -- combined with forward regression
(:mod:`~repro.regression.forward_regression`).  The posynomial baseline uses
non-negative least squares (:mod:`~repro.regression.nnls`).
"""

from repro.regression.least_squares import (
    LinearFit,
    design_matrix,
    fit_linear,
    fit_linear_from_gram,
    pair_dots,
    predict_linear,
    predict_linear_batch,
    raw_normal_statistics,
)
from repro.regression.press import (
    hat_matrix,
    loo_residuals,
    press_statistic,
    press_rmse,
)
from repro.regression.forward_regression import (
    ForwardSelectionResult,
    forward_select,
)
from repro.regression.nnls import nonnegative_least_squares

__all__ = [
    "LinearFit",
    "design_matrix",
    "fit_linear",
    "fit_linear_from_gram",
    "pair_dots",
    "raw_normal_statistics",
    "predict_linear",
    "predict_linear_batch",
    "hat_matrix",
    "loo_residuals",
    "press_statistic",
    "press_rmse",
    "ForwardSelectionResult",
    "forward_select",
    "nonnegative_least_squares",
]
