"""Forward regression driven by the PRESS statistic.

Implements the robust nonlinear identification procedure the paper cites
(Hong, Sharkey, Warwick 2003) in the form CAFFEINE needs: given a pool of
candidate basis functions (columns), greedily add the column that most
improves the leave-one-out PRESS statistic, and stop when no candidate
improves it.  The selected subset is what survives "simplification after
generation"; basis functions that only help the training fit but hurt
prediction are pruned.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.regression.press import press_statistic

__all__ = ["ForwardSelectionResult", "forward_select"]


@dataclasses.dataclass(frozen=True)
class ForwardSelectionResult:
    """Outcome of a PRESS-driven forward-selection run."""

    selected_indices: Tuple[int, ...]
    press_values: Tuple[float, ...]
    baseline_press: float

    @property
    def n_selected(self) -> int:
        return len(self.selected_indices)

    @property
    def final_press(self) -> float:
        """PRESS of the selected subset (the intercept-only value if empty)."""
        if not self.press_values:
            return self.baseline_press
        return self.press_values[-1]


def forward_select(basis_matrix: np.ndarray, y: np.ndarray,
                   max_terms: Optional[int] = None,
                   min_relative_improvement: float = 0.0,
                   candidate_indices: Optional[Sequence[int]] = None,
                   ridge: float = 1e-10) -> ForwardSelectionResult:
    """Greedy forward selection of basis-function columns by PRESS.

    Parameters
    ----------
    basis_matrix:
        Candidate basis functions evaluated on the training data, shape
        ``(n_samples, n_candidates)``.
    y:
        Training targets.
    max_terms:
        Optional cap on the number of selected columns.
    min_relative_improvement:
        A candidate is only accepted when it reduces PRESS by at least this
        fraction of the current value (0.0 accepts any strict improvement).
    candidate_indices:
        Restrict the candidate pool to these column indices.

    Returns
    -------
    ForwardSelectionResult
        Selected column indices in selection order, the PRESS value after
        each acceptance, and the intercept-only baseline PRESS.
    """
    basis_matrix = np.asarray(basis_matrix, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    if basis_matrix.ndim != 2:
        raise ValueError("basis_matrix must be 2-D")
    if basis_matrix.shape[0] != y.shape[0]:
        raise ValueError("basis_matrix and y disagree on the number of samples")
    n_candidates = basis_matrix.shape[1]
    if max_terms is None:
        max_terms = n_candidates
    if max_terms < 0:
        raise ValueError("max_terms must be >= 0")
    if min_relative_improvement < 0:
        raise ValueError("min_relative_improvement must be >= 0")

    pool: List[int] = (list(range(n_candidates)) if candidate_indices is None
                       else [int(i) for i in candidate_indices])
    for index in pool:
        if index < 0 or index >= n_candidates:
            raise IndexError(f"candidate index {index} out of range")
    # Drop candidates with non-finite values up front; they can never help.
    pool = [i for i in pool if np.all(np.isfinite(basis_matrix[:, i]))]

    empty = np.zeros((y.shape[0], 0))
    baseline = press_statistic(empty, y, ridge=ridge)

    selected: List[int] = []
    press_trace: List[float] = []
    current_press = baseline

    while pool and len(selected) < max_terms:
        best_index = None
        best_press = current_press
        for index in pool:
            trial = basis_matrix[:, selected + [index]]
            trial_press = press_statistic(trial, y, ridge=ridge)
            if trial_press < best_press:
                best_press = trial_press
                best_index = index
        if best_index is None:
            break
        improvement = (current_press - best_press) / max(current_press, 1e-300)
        if selected and improvement < min_relative_improvement:
            break
        selected.append(best_index)
        pool.remove(best_index)
        press_trace.append(best_press)
        current_press = best_press

    return ForwardSelectionResult(
        selected_indices=tuple(selected),
        press_values=tuple(press_trace),
        baseline_press=baseline,
    )
