"""Non-negative least squares, used by the posynomial baseline.

A posynomial is a sum of monomials with *non-negative* coefficients.  Fitting
the coefficients of a fixed monomial template to data is therefore a
non-negative least-squares (NNLS) problem.  SciPy provides a reliable active
set solver; this wrapper adds the intercept handling and the column scaling
used elsewhere in the package.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy.optimize import nnls as scipy_nnls

__all__ = ["nonnegative_least_squares"]


def nonnegative_least_squares(features: np.ndarray, y: np.ndarray,
                              include_intercept: bool = False
                              ) -> Tuple[np.ndarray, float]:
    """Solve ``min ||features @ c - y||`` subject to ``c >= 0``.

    Parameters
    ----------
    features:
        Monomial feature matrix of shape ``(n_samples, n_features)``.
    y:
        Target vector.
    include_intercept:
        When True, an unconstrained intercept is handled by centering: the
        intercept is ``mean(y - features @ c)`` after solving the constrained
        problem on centered data.  (A posynomial proper has a non-negative
        constant; the baseline of Daems et al. allows a free constant term,
        which this option reproduces.)

    Returns
    -------
    (coefficients, intercept)
    """
    features = np.asarray(features, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    if features.ndim != 2:
        raise ValueError("features must be 2-D")
    if features.shape[0] != y.shape[0]:
        raise ValueError("features and y disagree on the number of samples")
    if not np.all(np.isfinite(features)) or not np.all(np.isfinite(y)):
        raise ValueError("features and y must be finite")

    scales = np.sqrt(np.mean(features ** 2, axis=0))
    scales[scales < 1e-300] = 1.0
    scaled = features / scales

    if include_intercept:
        # Alternate between the unconstrained intercept and the NNLS solve a
        # few times; this converges very quickly in practice.
        intercept = float(np.mean(y))
        coefficients = np.zeros(features.shape[1])
        for _ in range(20):
            solution, _ = scipy_nnls(scaled, y - intercept)
            # repro-lint: allow[bit-identity] -- NNLS baseline rides on scipy's solver; outside the bit-identity contract
            new_intercept = float(np.mean(y - scaled @ solution))
            converged = abs(new_intercept - intercept) <= 1e-12 * max(1.0, abs(intercept))
            intercept = new_intercept
            coefficients = solution
            if converged:
                break
        return coefficients / scales, intercept

    solution, _ = scipy_nnls(scaled, y)
    return solution / scales, 0.0
