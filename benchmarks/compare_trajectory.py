"""Compare fresh benchmark reports against the committed baselines.

CI runs the performance-tracking benchmarks (``bench_evaluation.py``,
``bench_pareto.py``), then invokes this script to compare the fresh JSON
reports in ``benchmarks/output/`` against the baselines committed at the
repository root (``BENCH_evaluation.json``, ``BENCH_pareto.json``).  The
result is a markdown table -- printed to stdout and appended to
``$GITHUB_STEP_SUMMARY`` when set -- showing every tracked metric
(speedups, wall-clock seconds, hit rates) next to its baseline.

Per the noisy-runner note in ``benchmarks/README.md``, wall-clock deltas
are **reported, never gated**: shared CI runners make hard ratio thresholds
flaky.  The script fails (exit 1) only on bit-for-bit *equivalence*
violations -- a fresh report whose ``equivalence.verified`` flag is not
true, or a missing/unreadable report, means a fast path no longer
reproduces the reference results exactly, which is a correctness bug
regardless of machine load.  For ``bench_evaluation.json`` specifically,
the required equivalence keys (``REQUIRED_EQUIVALENCE_KEYS``) must also
*exist* and hold -- the residual-backend, population-1000,
shared-vs-deepcopy genome and frozen-artifact round-trip verdicts cannot
silently drop out of the report -- and the ``population_1000``,
``selection_variation`` and ``serving`` sections are summarized in their
own blocks so the n=1000 trajectory, the genome-backend head-to-head and
the serving latency percentiles stay visible in every step summary.

To refresh the baselines after an intentional change, run the benchmarks
locally and copy the outputs over the committed files::

    PYTHONPATH=src python -m pytest benchmarks/bench_evaluation.py \\
        benchmarks/bench_pareto.py -q
    cp benchmarks/output/bench_evaluation.json BENCH_evaluation.json
    cp benchmarks/output/bench_pareto.json BENCH_pareto.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

#: (baseline file at the repo root, fresh file under benchmarks/output/).
REPORT_PAIRS = (
    ("BENCH_evaluation.json", "bench_evaluation.json"),
    ("BENCH_pareto.json", "bench_pareto.json"),
)

#: Numeric leaves worth tabulating (suffix match on the flattened key).
TRACKED_SUFFIXES = (
    "speedup",
    "_seconds",
    "_ms",
    "hit_rate",
    "per_second",
    "store_bytes",
    "store_entries",
)

#: Equivalence verdicts that must be present *and* true in a fresh
#: bench_evaluation.json: "verified" aggregates whatever keys the report
#: happens to contain, so a section silently dropping out of the benchmark
#: would otherwise pass the gate unnoticed.
REQUIRED_EQUIVALENCE_KEYS = {
    "bench_evaluation.json": (
        "residual_scalar_vs_batched",
        "population_1000_scalar_vs_batched",
        "genome_shared_vs_deepcopy",
        "artifact_roundtrip",
    ),
}

#: Sections surfaced as their own summary block (key prefix on the
#: flattened metrics), so headline scaling numbers are readable without
#: scanning the full table.
HIGHLIGHT_SECTIONS = {
    "bench_evaluation.json": ("population_1000", "selection_variation", "serving"),
}


def flatten(document, prefix=""):
    """Flatten nested dicts/lists to ``dotted.path -> leaf`` pairs."""
    if isinstance(document, dict):
        for key, value in document.items():
            yield from flatten(value, f"{prefix}{key}.")
    elif isinstance(document, list):
        for index, value in enumerate(document):
            yield from flatten(value, f"{prefix}{index}.")
    else:
        yield prefix.rstrip("."), document


def tracked_metrics(document):
    """The flattened numeric metrics a trajectory table should show."""
    metrics = {}
    for key, value in flatten(document):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        if any(key.endswith(suffix) for suffix in TRACKED_SUFFIXES):
            metrics[key] = value
    return metrics


def load_report(path: Path):
    """The parsed JSON report, or ``None`` when missing/unreadable."""
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


def format_value(value):
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_delta(baseline, fresh):
    if baseline == 0:
        return "n/a"
    change = (fresh - baseline) / abs(baseline)
    return f"{change:+.1%}"


def compare_pair(baseline_path: Path, fresh_path: Path):
    """Markdown lines plus the pair's equivalence verdict (None = missing)."""
    lines = [f"### `{fresh_path.name}` vs baseline `{baseline_path.name}`", ""]
    fresh = load_report(fresh_path)
    if fresh is None:
        lines.append(f"**missing or unreadable fresh report** at `{fresh_path}`")
        return lines, None
    equivalence = fresh.get("equivalence", {})
    verified = bool(equivalence.get("verified", False))
    missing_required = [
        key
        for key in REQUIRED_EQUIVALENCE_KEYS.get(fresh_path.name, ())
        if equivalence.get(key) is not True
    ]
    if missing_required:
        verified = False
        lines.append(
            "required equivalence keys missing or false: "
            + ", ".join(f"`{key}`" for key in missing_required)
        )
    state = "verified" if verified else "**VIOLATED**"
    lines.append(f"bit-for-bit equivalence: {state}")
    lines.append("")

    for section in HIGHLIGHT_SECTIONS.get(fresh_path.name, ()):
        body = fresh.get(section)
        if not isinstance(body, dict):
            lines.append(
                f"**missing `{section}` section** -- the scaling numbers "
                "dropped out of the report"
            )
            lines.append("")
            continue
        highlights = ", ".join(
            f"{key}={format_value(value)}"
            for key, value in body.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        )
        lines.append(f"**`{section}`**: {highlights}")
        lines.append("")

    baseline = load_report(baseline_path)
    if baseline is None:
        lines.append(
            f"no committed baseline at `{baseline_path}` -- copy the fresh "
            "report there to start the trajectory"
        )
        return lines, verified

    baseline_metrics = tracked_metrics(baseline)
    fresh_metrics = tracked_metrics(fresh)
    lines.append("| metric | baseline | fresh | delta |")
    lines.append("|---|---:|---:|---:|")
    for key in sorted(set(baseline_metrics) | set(fresh_metrics)):
        old = baseline_metrics.get(key)
        new = fresh_metrics.get(key)
        if old is None or new is None:
            old_text = format_value(old) if old is not None else "--"
            new_text = format_value(new) if new is not None else "--"
            lines.append(f"| `{key}` | {old_text} | {new_text} | n/a |")
        else:
            lines.append(
                f"| `{key}` | {format_value(old)} | {format_value(new)} "
                f"| {format_delta(old, new)} |"
            )
    return lines, verified


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--baseline-dir",
        default=str(Path(__file__).resolve().parent.parent),
        help="directory holding the committed BENCH_*.json baselines",
    )
    parser.add_argument(
        "--fresh-dir",
        default=str(Path(__file__).resolve().parent / "output"),
        help="directory holding the fresh bench_*.json reports",
    )
    parser.add_argument(
        "--summary",
        default=os.environ.get("GITHUB_STEP_SUMMARY", ""),
        help="markdown file to append the table to (default: "
        "$GITHUB_STEP_SUMMARY when set)",
    )
    arguments = parser.parse_args(argv)

    lines = ["## Benchmark trajectory", ""]
    lines.append(
        "Wall-clock deltas are informational (shared runners are noisy); "
        "only equivalence violations fail this step."
    )
    lines.append("")
    failures = []
    for baseline_name, fresh_name in REPORT_PAIRS:
        pair_lines, verified = compare_pair(
            Path(arguments.baseline_dir) / baseline_name,
            Path(arguments.fresh_dir) / fresh_name,
        )
        lines.extend(pair_lines)
        lines.append("")
        if verified is None:
            failures.append(f"{fresh_name}: fresh report missing or unreadable")
        elif not verified:
            failures.append(f"{fresh_name}: bit-for-bit equivalence violated")

    if failures:
        lines.append("### FAILURES")
        lines.extend(f"- {failure}" for failure in failures)
        lines.append("")

    text = "\n".join(lines)
    print(text)
    if arguments.summary:
        with open(arguments.summary, "a", encoding="utf-8") as handle:
            handle.write(text + "\n")

    if failures:
        print("bench-trajectory gate FAILED:", "; ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
