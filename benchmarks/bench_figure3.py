"""Figure 3 benchmark: error/complexity trade-off curves for all performances.

Regenerates, for each of the six OTA performances, the trade-off of training
error (qwc), testing error (qtc) and number of basis functions vs complexity,
plus the filtered testing-error trade-off (the rightmost column of the
paper's Figure 3).  The rendered series are written to
``benchmarks/output/figure3.txt``.

The timed section is one NSGA-II generation of the CAFFEINE engine on the PM
dataset -- the unit of work whose repetition makes up a full Figure 3 run.
"""

from __future__ import annotations


from repro.core.engine import CaffeineEngine
from repro.core.settings import CaffeineSettings
from repro.experiments.figure3 import Figure3Result, _series_from_result

from conftest import ALL_TARGETS, write_output


def test_figure3_tradeoffs(benchmark, bench_datasets, bench_results,
                           bench_settings):
    # ------------------------------------------------------------------
    # Regenerate the Figure 3 series from the shared CAFFEINE runs.
    # ------------------------------------------------------------------
    series = {target: _series_from_result(target, bench_results[target])
              for target in ALL_TARGETS}
    figure3 = Figure3Result(series=series, results=bench_results,
                            settings=bench_settings)
    write_output("figure3.txt", figure3.render())

    # Qualitative shape checks mirroring the paper's discussion.
    for target in ALL_TARGETS:
        data = series[target]
        assert data.n_models >= 3, f"{target}: too few models in the trade-off"
        # The least complex model has the highest training error; the most
        # complex models reach the lowest.
        assert data.constant_model_train_error == max(data.train_error)
        assert data.best_train_error == data.train_error[-1]
        # Testing error is not monotone, so the test trade-off is a strict
        # subset for at least one performance overall.
    assert any(len(s.test_tradeoff_indices) < s.n_models for s in series.values())

    # ------------------------------------------------------------------
    # Timed section: one evolutionary generation on the PM data.
    # ------------------------------------------------------------------
    train, test = bench_datasets.for_target("PM")
    step_settings = CaffeineSettings(population_size=40, n_generations=1,
                                     random_seed=0)
    engine = CaffeineEngine(train, test=test, settings=step_settings)
    engine.initialize_population()

    generation_counter = {"value": 0}

    def one_generation():
        generation_counter["value"] += 1
        engine.step(generation_counter["value"])

    benchmark(one_generation)
