"""Figure 4 benchmark: CAFFEINE vs posynomial prediction quality.

Regenerates the paper's Figure 4 -- for each performance, the testing (and
training) error of the posynomial baseline against the CAFFEINE model picked
at matching training error -- and writes it to
``benchmarks/output/figure4.txt``.

The timed section is one posynomial fit (template evaluation + non-negative
least squares) on the ALF dataset, the baseline's unit of work.
"""

from __future__ import annotations


from repro.experiments.figure4 import Figure4Result, Figure4Row, select_caffeine_model
from repro.posynomial.model import fit_posynomial

from conftest import ALL_TARGETS, write_output


def test_figure4_comparison(benchmark, bench_datasets, bench_results):
    # ------------------------------------------------------------------
    # Regenerate the comparison rows from the shared CAFFEINE runs.
    # ------------------------------------------------------------------
    rows = []
    for target in ALL_TARGETS:
        train, test = bench_datasets.for_target(target)
        posynomial = fit_posynomial(train, test)
        caffeine_model = select_caffeine_model(bench_results[target], posynomial)
        rows.append(Figure4Row(target=target, caffeine_model=caffeine_model,
                               posynomial_model=posynomial))
    figure4 = Figure4Result(rows=tuple(rows), results=bench_results)
    write_output("figure4.txt", figure4.render())

    # Shape checks mirroring the paper's findings.
    wins = figure4.caffeine_wins()
    assert len(wins) >= 3, f"CAFFEINE should win on most performances, got {wins}"
    # CAFFEINE models are far more compact than the posynomial templates.
    for row in rows:
        assert row.caffeine_model.n_bases <= 15
        assert row.posynomial_model.n_terms >= row.caffeine_model.n_bases
    # On this interpolative test set CAFFEINE's testing error stays close to
    # (and often below) its training error for most performances.
    close_or_below = sum(1 for row in rows
                         if row.caffeine_test <= row.caffeine_train * 1.5)
    assert close_or_below >= 4

    # ------------------------------------------------------------------
    # Timed section: one posynomial fit on ALF.
    # ------------------------------------------------------------------
    train, test = bench_datasets.for_target("ALF")
    benchmark(lambda: fit_posynomial(train, test))
