"""Shared fixtures for the benchmark harness.

The expensive artifacts (the OTA datasets and one CAFFEINE run per
performance) are computed once per session with a reduced-but-representative
budget; each ``bench_*`` module then regenerates its table or figure from
them, prints it, writes it to ``benchmarks/output/`` and benchmarks a
representative piece of the computation.

The budgets here are deliberately far below the paper's (population 200 x
5000 generations, ~12 h per performance); the goal is to reproduce the shape
of every result in minutes on a laptop.  Pass the full budgets through
``CaffeineSettings.paper_settings()`` if you want to spend the hours.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.core.settings import CaffeineSettings
from repro.experiments.setup import generate_ota_datasets, run_caffeine_for_target

#: Output directory for the rendered tables/figures.
OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

#: Evolutionary budget used by the benchmark harness.
BENCH_SETTINGS = CaffeineSettings(
    population_size=80,
    n_generations=30,
    max_basis_functions=15,
    random_seed=2005,
)

#: All six performances of the paper's experiments.
ALL_TARGETS = ("ALF", "fu", "PM", "voffset", "SRp", "SRn")


def write_output(name: str, text: str) -> None:
    """Persist a rendered table/figure and echo it to stdout."""
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    path = OUTPUT_DIR / name
    path.write_text(text + "\n")
    print(f"\n# --- {name} ---")
    print(text)


@pytest.fixture(scope="session")
def bench_settings() -> CaffeineSettings:
    return BENCH_SETTINGS


@pytest.fixture(scope="session")
def bench_datasets():
    """The paper's 243-sample train (dx=0.10) / test (dx=0.03) datasets."""
    return generate_ota_datasets()


@pytest.fixture(scope="session")
def bench_results(bench_datasets, bench_settings):
    """One CAFFEINE run per performance goal, shared by all benchmarks."""
    return {target: run_caffeine_for_target(bench_datasets, target, bench_settings)
            for target in ALL_TARGETS}
