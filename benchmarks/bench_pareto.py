"""Pareto-kernel benchmark: vectorized vs. pure-Python NSGA-II ranking.

``fast_nondominated_sort`` was the engine's hottest remaining pure-Python
path (O(N^2) ``dominates`` calls per generation); the vectorized backend in
:mod:`repro.core.pareto` builds the domination matrix with NumPy
broadcasting instead.  This benchmark measures full NSGA-II ranking (sort +
per-front crowding, i.e. ``rank_population``) at population scales 100, 500
and 2000 on objective vectors shaped like the engine's (a 2-D
error/complexity cloud including duplicate points and ``inf`` markers for
infeasible individuals).

Both backends are verified to produce identical fronts and crowding values
before any number is reported.  Emits
``benchmarks/output/bench_pareto.json`` (schema in ``benchmarks/README.md``)
recording sorts/sec per backend and scale.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from typing import Tuple

import numpy as np

from repro.core.nsga2 import rank_population
from repro.core.pareto import crowding_distances, fast_nondominated_sort

from conftest import write_output

#: Population scales at which sort throughput is recorded.
POPULATION_SIZES = (100, 500, 2000)

#: The vectorized backend must never lose to pure Python at engine scales.
#: ``BENCH_RELAX_SPEEDUP_GATES=1`` (CI's shared noisy runners) disables the
#: wall-clock gate; the identical-results checks always hold.
MIN_SPEEDUP = 0.0 if os.environ.get("BENCH_RELAX_SPEEDUP_GATES") == "1" \
    else 1.0


@dataclasses.dataclass
class _Point:
    objectives: Tuple[float, float]


def _engine_like_vectors(n: int, rng: np.random.Generator):
    """A 2-objective population shaped like the engine's: a correlated
    error/complexity cloud, some exact duplicates (clones) and some
    infeasible (infinite-error) individuals."""
    complexity = rng.integers(1, 16, size=n) * 10.0 + \
        rng.integers(0, 8, size=n) * 0.25
    error = np.exp(rng.normal(-2.0, 1.0, size=n)) + 0.001 * complexity
    vectors = [(float(e), float(c)) for e, c in zip(error, complexity, strict=True)]
    for index in rng.integers(0, n, size=n // 10):  # clones
        vectors[int(index)] = vectors[0]
    for index in rng.integers(0, n, size=n // 20):  # infeasible
        vectors[int(index)] = (float("inf"), vectors[int(index)][1])
    return vectors


def _time_callable(function, repeats: int) -> float:
    start = time.perf_counter()
    for _ in range(repeats):
        function()
    return (time.perf_counter() - start) / repeats


def test_pareto_sort_throughput(benchmark):
    rng = np.random.default_rng(2005)
    report = {"workload": "error/complexity cloud with duplicates and inf",
              "scales": []}
    identical_per_scale = []
    for n in POPULATION_SIZES:
        vectors = _engine_like_vectors(n, rng)
        population = [_Point(v) for v in vectors]

        # Identical results before any timing is believed; the outcome is
        # recorded in the report (for the CI trajectory gate) and asserted
        # after the JSON is written.
        python_fronts = fast_nondominated_sort(vectors, backend="python")
        numpy_fronts = fast_nondominated_sort(vectors, backend="numpy")
        identical = numpy_fronts == python_fronts
        for front in python_fronts:
            front_vectors = [vectors[i] for i in front]
            identical = identical and \
                crowding_distances(front_vectors, backend="numpy") == \
                crowding_distances(front_vectors, backend="python")
        identical_per_scale.append(identical)

        repeats = max(1, 2000 // n)
        python_seconds = _time_callable(
            lambda: rank_population(population, backend="python"), repeats)
        numpy_seconds = _time_callable(
            lambda: rank_population(population, backend="numpy"), repeats)
        entry = {
            "population_size": n,
            "n_fronts": len(python_fronts),
            "python_seconds": round(python_seconds, 6),
            "python_sorts_per_second": round(1.0 / python_seconds, 2),
            "numpy_seconds": round(numpy_seconds, 6),
            "numpy_sorts_per_second": round(1.0 / numpy_seconds, 2),
            "speedup": round(python_seconds / numpy_seconds, 2),
        }
        report["scales"].append(entry)

    report["equivalence"] = {"verified": all(identical_per_scale)}
    write_output("bench_pareto.json", json.dumps(report, indent=2))

    assert report["equivalence"]["verified"], \
        "vectorized NSGA-II kernels diverged from the pure-Python reference"
    for entry in report["scales"]:
        assert entry["speedup"] >= MIN_SPEEDUP, \
            (f"vectorized ranking lost to pure Python at "
             f"n={entry['population_size']}: "
             f"{entry['speedup']}x < {MIN_SPEEDUP}x")

    # Timed section: one full NSGA-II ranking at the largest scale.
    largest = [_Point(v)
               for v in _engine_like_vectors(POPULATION_SIZES[-1], rng)]

    def rank_largest():
        rank_population(largest, backend="numpy")

    benchmark(rank_largest)
