"""Ablation benchmark (extension): grammar and search-pressure ablations.

Beyond the paper's own evaluation, this benchmark quantifies what the two
key design choices buy on the OTA data:

* the canonical-form grammar vs an unrestricted plain-GP baseline;
* the full function set vs rational-only and polynomial-only restrictions.

Results are written to ``benchmarks/output/ablation.txt``.  The timed section
is one plain-GP run (the baseline's unit of work) on the SRp dataset.
"""

from __future__ import annotations

from repro.core.settings import CaffeineSettings
from repro.experiments.ablation import run_ablation
from repro.gp.regression import PlainGPSettings, run_plain_gp

from conftest import write_output


def test_ablation_grammar_and_baseline(benchmark, bench_datasets):
    settings = CaffeineSettings(population_size=40, n_generations=12,
                                random_seed=7)
    ablation = run_ablation(bench_datasets, settings, target="SRp",
                            include_single_objective=True)
    write_output("ablation.txt", ablation.render())

    full = ablation.entry("CAFFEINE (full grammar)")
    plain = ablation.entry("plain GP (no grammar)")
    rationals = ablation.entry("CAFFEINE (rationals)")

    # The grammar-constrained search must be at least as accurate on unseen
    # data as unrestricted GP at a comparable budget.
    assert full.test_error <= plain.test_error * 1.5
    # Restricting to rationals keeps SRp accuracy (its ground truth is
    # rational), demonstrating the "turn off rules" workflow.
    assert rationals.test_error <= 0.25

    # Timed section: one plain-GP baseline run.
    train, test = bench_datasets.for_target("SRp")
    gp_settings = PlainGPSettings(population_size=30, n_generations=5,
                                  random_seed=0)
    benchmark(lambda: run_plain_gp(train, test, gp_settings))
