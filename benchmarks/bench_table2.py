"""Table II benchmark: the phase-margin model sequence.

Regenerates the paper's Table II -- CAFFEINE-generated models of PM in order
of decreasing error and increasing complexity -- and writes it to
``benchmarks/output/table2.txt``.

The timed section is the Table II construction (ordering and filtering the
models of the PM run, including the testing-error trade-off filtering).
"""

from __future__ import annotations

from repro.experiments.table2 import run_table2

from conftest import write_output


def test_table2_pm_sequence(benchmark, bench_results):
    result = bench_results["PM"]

    table2 = benchmark(lambda: run_table2(result=result, target="PM"))

    write_output("table2.txt", table2.render())

    # Shape checks mirroring the paper's Table II discussion.
    assert table2.n_models >= 3, "expected a sequence of PM models"
    assert table2.errors_decrease_with_complexity()
    # The simplest model is (nearly) a constant around 90 degrees: few bases
    # and an intercept in the right range.
    simplest = table2.models[0]
    assert simplest.n_bases <= 2
    assert 80.0 < simplest.fit.intercept < 100.0
    # The most complex listed model is the most accurate on training data.
    assert table2.models[-1].train_error == min(m.train_error
                                                for m in table2.models)
