"""Table I benchmark: compact models under 10 % train and test error.

Regenerates the paper's Table I -- for each performance, the simplest
CAFFEINE model with less than 10 % error on both training and testing data --
and writes it to ``benchmarks/output/table1.txt``.

The timed section is the Table I selection step (filtering the trade-off and
picking the simplest eligible model) across all six performances.
"""

from __future__ import annotations

from repro.experiments.table1 import Table1Result, Table1Row, select_table1_model

from conftest import ALL_TARGETS, write_output

ERROR_TARGET = 0.10


def test_table1_models(benchmark, bench_results):
    def build_rows():
        rows = []
        for target in ALL_TARGETS:
            model = select_table1_model(bench_results[target], ERROR_TARGET)
            rows.append(Table1Row(target=target, error_target=ERROR_TARGET,
                                  model=model))
        return rows

    rows = benchmark(build_rows)

    table1 = Table1Result(rows=tuple(rows), results=bench_results,
                          error_target=ERROR_TARGET)
    write_output("table1.txt", table1.render())

    satisfied = [row.target for row in rows if row.satisfied]
    # The paper reports a <10% model for every performance; at the reduced
    # benchmark budget we require it for a clear majority.
    assert len(satisfied) >= 4, f"only {satisfied} met the 10% target"
    # Those models must be compact (the paper: at most 4 bases + constant for
    # the 10% band; we allow a little slack at the reduced budget).
    for row in rows:
        if row.satisfied:
            assert row.n_bases <= 8
            assert row.model.train_error <= ERROR_TARGET
            assert row.model.test_error <= ERROR_TARGET
