"""Population-evaluation benchmark: cached subsystem vs. naive re-evaluation.

Measures the Figure-3 workload (the PM dataset, population 100) through the
batch evaluation subsystem of :mod:`repro.core.evaluation` and through the
naive per-individual path it replaced, on **two** honestly labeled workloads:

* ``offspring`` -- the engine's actual evaluation stream (initial population
  plus every generation's fresh offspring).  Fresh individuals need fresh
  linear fits, so here the gains come from the basis-column cache only:
  offspring share most basis functions with their parents.
* ``reevaluation`` -- re-evaluating each generation's post-selection
  population, the shape of simplification passes, test-set sweeps and
  repeated analysis.  Survivors recur across generations, so the
  individual-level fit cache dominates and the speedup is large.

Emits machine-readable JSON (``benchmarks/output/bench_evaluation.json``)
with evaluations/sec, speedups and cache hit rates for both workloads, so
future PRs can track the performance trajectory of the hot loop.  Both paths
are verified to produce bit-for-bit identical errors before any number is
reported.
"""

from __future__ import annotations

import json
import time

from repro.core.engine import CaffeineEngine
from repro.core.evaluation import PopulationEvaluator, evaluate_individual_inplace
from repro.core.settings import CaffeineSettings

from conftest import write_output

#: Regression gates, set below the reference-machine numbers (~3.5x and
#: ~1.2x respectively) to absorb CI noise while failing loudly if the caches
#: stop helping.
MIN_REEVALUATION_SPEEDUP = 2.5
MIN_OFFSPRING_SPEEDUP = 1.0

#: Figure-3 workload scale: population 100 over the benchmark generation
#: budget used by the shared harness (see conftest.BENCH_SETTINGS).
WORKLOAD_SETTINGS = CaffeineSettings(
    population_size=100,
    n_generations=30,
    max_basis_functions=15,
    random_seed=2005,
)


def _capture_workloads(train):
    """Run one engine; capture its true evaluation stream and its
    per-generation populations."""
    engine = CaffeineEngine(train, settings=WORKLOAD_SETTINGS)
    offspring_batches = []
    original = engine.evaluator.evaluate_population

    def capturing(individuals):
        offspring_batches.append([ind.clone() for ind in individuals])
        return original(individuals)

    engine.evaluator.evaluate_population = capturing
    population_batches = []
    engine.initialize_population()
    population_batches.append([ind.clone() for ind in engine.population])
    for generation in range(WORKLOAD_SETTINGS.n_generations):
        engine.step(generation)
        population_batches.append([ind.clone() for ind in engine.population])
    engine.evaluator.evaluate_population = original
    return engine, offspring_batches, population_batches


def _measure(engine, batches):
    """Time naive vs. cached evaluation of the batches; verify equivalence."""
    n_evaluations = sum(len(batch) for batch in batches)

    naive = [[ind.clone() for ind in batch] for batch in batches]
    start = time.perf_counter()
    for batch in naive:
        for individual in batch:
            evaluate_individual_inplace(individual, engine.train.X,
                                        engine.train.y, WORKLOAD_SETTINGS)
    naive_seconds = time.perf_counter() - start

    cached = [[ind.clone() for ind in batch] for batch in batches]
    evaluator = PopulationEvaluator(engine.train.X, engine.train.y,
                                    WORKLOAD_SETTINGS)
    start = time.perf_counter()
    for batch in cached:
        evaluator.evaluate_population(batch)
    cached_seconds = time.perf_counter() - start

    # Bit-for-bit equivalence of the two paths, before believing any timing.
    for naive_batch, cached_batch in zip(naive, cached):
        for a, b in zip(naive_batch, cached_batch):
            assert a.error == b.error
            assert a.complexity == b.complexity

    return {
        "n_evaluations": n_evaluations,
        "naive_seconds": round(naive_seconds, 4),
        "cached_seconds": round(cached_seconds, 4),
        "naive_evaluations_per_second": round(n_evaluations / naive_seconds, 1),
        "cached_evaluations_per_second": round(n_evaluations / cached_seconds, 1),
        "speedup": round(naive_seconds / cached_seconds, 2),
        "column_cache_hit_rate": round(evaluator.column_hit_rate, 4),
        "fit_cache_hit_rate": round(evaluator.fit_hit_rate, 4),
        "column_cache_entries": len(evaluator.cache),
    }, evaluator


def test_population_evaluation_throughput(benchmark, bench_datasets):
    train, _ = bench_datasets.for_target("PM")
    engine, offspring_batches, population_batches = _capture_workloads(train)

    offspring_report, _ = _measure(engine, offspring_batches)
    reevaluation_report, evaluator = _measure(engine, population_batches)

    report = {
        "workload": "figure3-PM",
        "population_size": WORKLOAD_SETTINGS.population_size,
        "n_generations": WORKLOAD_SETTINGS.n_generations,
        "offspring": offspring_report,
        "reevaluation": reevaluation_report,
    }
    write_output("bench_evaluation.json", json.dumps(report, indent=2))

    assert reevaluation_report["speedup"] >= MIN_REEVALUATION_SPEEDUP, \
        (f"re-evaluation speedup regressed: "
         f"{reevaluation_report['speedup']}x < {MIN_REEVALUATION_SPEEDUP}x")
    assert offspring_report["speedup"] >= MIN_OFFSPRING_SPEEDUP, \
        (f"offspring-stream speedup regressed: "
         f"{offspring_report['speedup']}x < {MIN_OFFSPRING_SPEEDUP}x")
    # Offspring reuse parental basis functions even though their fits are
    # fresh; survivors recur wholesale.
    assert offspring_report["column_cache_hit_rate"] > 0.5
    assert reevaluation_report["fit_cache_hit_rate"] > 0.5

    # ------------------------------------------------------------------
    # Timed section: one warm-cache population evaluation (the unit of work
    # the evolutionary loop repeats every generation).
    # ------------------------------------------------------------------
    final_batch = population_batches[-1]

    def evaluate_final_population():
        evaluator.evaluate_population([ind.clone() for ind in final_batch])

    benchmark(evaluate_final_population)
