"""Population-evaluation benchmark: cached subsystems vs. naive re-evaluation.

Measures the Figure-3 workload (the PM dataset, population 100) through the
batch evaluation subsystem of :mod:`repro.core.evaluation` and through the
naive per-individual path it replaced, on **two** honestly labeled workloads:

* ``offspring`` -- the engine's actual evaluation stream (initial population
  plus every generation's fresh offspring).  Fresh individuals need fresh
  linear fits, so here the gains come from the basis-column cache plus --
  since the gram pool -- from fits that gather cached normal-equation
  scalars instead of re-reducing ``n_samples``-long columns.
* ``reevaluation`` -- re-evaluating each generation's post-selection
  population, the shape of simplification passes, test-set sweeps and
  repeated analysis.  Survivors recur across generations, so the
  individual-level fit cache dominates and the speedup is large.

Each workload is measured under both fit backends (``direct`` =
per-individual ``fit_linear``, ``gram`` = pooled gather-and-solve), and the
report includes fits/sec per backend.  Further sections isolate individual
levers on the offspring stream: ``column_backend`` (compiled tapes vs the
tree interpreter on the cache-miss path, see :mod:`repro.core.compile`;
reports the *end-to-end* speedup and the *warm-miss* speedup -- a warmed
kernel cache with cleared column/fit caches -- as separate, self-consistent
ratios of their own reported wall-clocks), ``residual_backend`` (the
generation-batched prediction/residual pass vs per-individual scoring) and
``persistent_cache`` (a cold start vs one warm-started from a
:class:`~repro.core.cache_store.ColumnCacheStore` file).  The
``population_1000`` section runs the engine at population 1000 (the
ROADMAP's scaling item): per-phase wall-clocks (generation, evaluation,
selection), evaluations/sec, every cache hit rate, the size-adaptive
budgets actually resolved, and a scalar-vs-batched residual equivalence
check at that scale.  The ``selection_variation`` section puts the
structure-sharing genome backend head to head against its deepcopy
reference (per-operator child cost, node clones per offspring,
population-1000 phase seconds for both) and contributes the
``genome_shared_vs_deepcopy`` bit-identity verdict.  The ``serving``
section freezes a fixed-seed run with :func:`~repro.core.artifact.save_front`
and serves it through :mod:`repro.serve`: artifact size, cold-load
milliseconds, ``/predict`` latency percentiles and rows/sec per batch
size (1/100/10000), and the ``artifact_roundtrip`` verdict -- frozen and
served predictions bit-identical to the originating run.  NSGA-II ranking
time is reported *separately* (it is selection, not evaluation) in a
``pareto_sort`` section -- and at larger population scales in
``bench_pareto.json``.

Emits machine-readable JSON (``benchmarks/output/bench_evaluation.json``;
schema documented in ``benchmarks/README.md``) so future PRs can track the
performance trajectory of the hot loop.  Every fast path is verified to
produce bit-for-bit identical errors; the outcome is recorded in the
report's ``equivalence`` block *before* the assertions fire, so the CI
trajectory gate (``benchmarks/compare_trajectory.py``) can see a violation
even in the uploaded artifact of a failed run.
"""

from __future__ import annotations

import json
import os
import time

from repro.core.cache_store import ColumnCacheStore
from repro.core.engine import CaffeineEngine
from repro.core.evaluation import (
    PopulationEvaluator,
    evaluate_individual_inplace,
)
from repro.core.nsga2 import rank_population
from repro.core.settings import CaffeineSettings

from conftest import write_output

#: Regression gates.  The gram backend must deliver the PR-2 tentpole's
#: promised >= 2x on the fresh-offspring stream; the direct backend keeps
#: PR 1's column-cache-only gate; the re-evaluation path is fit-cache
#: dominated; compiled columns and a warm persistent cache must never lose
#: to their baselines.  ``BENCH_RELAX_SPEEDUP_GATES=1`` (set by CI's shared
#: noisy runners) disables only the wall-clock ratio gates; the bit-for-bit
#: equivalence checks always hold.
_GATES_RELAXED = os.environ.get("BENCH_RELAX_SPEEDUP_GATES") == "1"
MIN_REEVALUATION_SPEEDUP = 0.0 if _GATES_RELAXED else 2.5
MIN_OFFSPRING_SPEEDUP_DIRECT = 0.0 if _GATES_RELAXED else 1.0
MIN_OFFSPRING_SPEEDUP_GRAM = 0.0 if _GATES_RELAXED else 2.0
#: The compiled-column effect is real but small (~1.1x end to end, the
#: column share of an offspring evaluation); gate at 0.9 so run-to-run
#: noise cannot flip it while a genuine slowdown (a backend that loses
#: outright) still fails.
MIN_COMPILED_COLUMN_SPEEDUP = 0.0 if _GATES_RELAXED else 0.9
MIN_WARM_CACHE_SPEEDUP = 0.0 if _GATES_RELAXED else 1.0
#: The batched residual pass saves per-individual NumPy call overhead; a
#: backend that loses outright to scalar scoring would be a bug.
MIN_RESIDUAL_SPEEDUP = 0.0 if _GATES_RELAXED else 0.9
#: Acceptance gate for the population-1000 scaling work: canonical factor
#: ordering plus the size-adaptive kernel budget must lift the compiled
#: backend's kernel hit rate above the ~25% the ROADMAP flagged.
#: Deterministic (fixed seed), so never relaxed.
MIN_POPULATION_1000_KERNEL_HIT_RATE = 0.25
#: The structure-sharing genome must never lose to the deepcopy reference
#: on the population-1000 variation phase (it shares every untouched
#: subtree instead of cloning the whole parent per child).
MIN_SHARED_VARIATION_SPEEDUP = 0.0 if _GATES_RELAXED else 1.0

#: Figure-3 workload scale: population 100 over the benchmark generation
#: budget used by the shared harness (see conftest.BENCH_SETTINGS).
WORKLOAD_SETTINGS = CaffeineSettings(
    population_size=100,
    n_generations=30,
    max_basis_functions=15,
    random_seed=2005,
)


def _capture_workloads(train):
    """Run one engine; capture its true evaluation stream and its
    per-generation populations."""
    engine = CaffeineEngine(train, settings=WORKLOAD_SETTINGS)
    offspring_batches = []
    original = engine.evaluator.evaluate_population

    def capturing(individuals):
        offspring_batches.append([ind.clone() for ind in individuals])
        return original(individuals)

    engine.evaluator.evaluate_population = capturing
    population_batches = []
    engine.initialize_population()
    population_batches.append([ind.clone() for ind in engine.population])
    for generation in range(WORKLOAD_SETTINGS.n_generations):
        engine.step(generation)
        population_batches.append([ind.clone() for ind in engine.population])
    engine.evaluator.evaluate_population = original
    return engine, offspring_batches, population_batches


#: Timing rounds; every round times the compared paths back to back
#: (round-robin), and each path reports its best round.  Interleaving means
#: background load (the rest of the benchmark suite, CI neighbours) hits all
#: paths alike instead of skewing whichever ran while the machine was busy,
#: which is what keeps the speedup gates stable.
TIMING_ROUNDS = 3


def _run_naive(engine, batches):
    """Naive per-individual evaluation (tree re-evaluation + direct fit)."""
    clones = [[ind.clone() for ind in batch] for batch in batches]
    start = time.perf_counter()
    for batch in clones:
        for individual in batch:
            evaluate_individual_inplace(individual, engine.train.X,
                                        engine.train.y, WORKLOAD_SETTINGS)
    return time.perf_counter() - start, clones


def _run_cached(engine, batches, cache=None, **overrides):
    """Batch evaluation through a fresh evaluator (cold unless given a cache).

    Every round starts from the same cache state, so hit rates and work
    counters are identical across rounds (they are deterministic); only
    wall-clock varies.
    """
    clones = [[ind.clone() for ind in batch] for batch in batches]
    evaluator = PopulationEvaluator(engine.train.X, engine.train.y,
                                    WORKLOAD_SETTINGS.copy(**overrides),
                                    cache=cache)
    start = time.perf_counter()
    for batch in clones:
        evaluator.evaluate_population(batch)
    return time.perf_counter() - start, clones, evaluator


def _batches_equal(left, right) -> bool:
    """Bit-for-bit agreement of two evaluated copies of the same stream."""
    for left_batch, right_batch in zip(left, right, strict=True):
        for a, b in zip(left_batch, right_batch, strict=True):
            if a.error != b.error or a.complexity != b.complexity:
                return False
    return True


def _paired_speedup(baseline_rounds, candidate_rounds) -> float:
    """Best load-matched ratio: each round's candidate time is compared
    against the baseline time of the *same* round (they run back to back, so
    machine load hits both alike).  Comparing independent bests instead
    would let one lucky baseline round on a drifting machine mask a
    genuinely faster candidate."""
    return max(baseline / candidate for baseline, candidate
               in zip(baseline_rounds, candidate_rounds, strict=True))


def _measure(engine, batches):
    """Time naive vs. both cached fit backends; check bit-for-bit equality."""
    n_evaluations = sum(len(batch) for batch in batches)
    seconds_by_path = {"naive": [], "direct": [], "gram": []}
    first_results = {}
    evaluators = {}
    for _round in range(TIMING_ROUNDS):
        seconds, naive = _run_naive(engine, batches)
        seconds_by_path["naive"].append(seconds)
        first_results.setdefault("naive", naive)
        for fit_backend in ("direct", "gram"):
            seconds, cached, evaluator = _run_cached(engine, batches,
                                                     fit_backend=fit_backend)
            seconds_by_path[fit_backend].append(seconds)
            first_results.setdefault(fit_backend, cached)
            evaluators.setdefault(fit_backend, evaluator)

    best_naive = min(seconds_by_path["naive"])
    backends = {}
    equivalence = {}
    for fit_backend in ("direct", "gram"):
        equivalence[fit_backend] = _batches_equal(first_results["naive"],
                                                  first_results[fit_backend])
        seconds = min(seconds_by_path[fit_backend])
        evaluator = evaluators[fit_backend]
        entry = {
            "seconds": round(seconds, 4),
            "evaluations_per_second": round(n_evaluations / seconds, 1),
            "fits_per_second": round(evaluator.n_fits_computed / seconds, 1),
            "n_fits_computed": evaluator.n_fits_computed,
            "speedup": round(_paired_speedup(seconds_by_path["naive"],
                                             seconds_by_path[fit_backend]), 2),
            "column_cache_hit_rate": round(evaluator.column_hit_rate, 4),
            "fit_cache_hit_rate": round(evaluator.fit_hit_rate, 4),
            "column_cache_entries": len(evaluator.cache),
        }
        if evaluator.gram_pool is not None:
            entry["gram_pair_hit_rate"] = round(
                evaluator.gram_pool.pair_hit_rate, 4)
            entry["gram_pairs_computed"] = evaluator.gram_pool.n_pairs_computed
            entry["gram_pool_entries"] = len(evaluator.gram_pool)
        backends[fit_backend] = entry

    report = {
        "n_evaluations": n_evaluations,
        "naive_seconds": round(best_naive, 4),
        "naive_evaluations_per_second": round(n_evaluations / best_naive, 1),
        "backends": backends,
    }
    return report, equivalence


def _measure_column_backend(engine, batches):
    """Compiled tapes vs the tree interpreter on the offspring miss path.

    Both evaluators run the shipped gram fit backend from a cold column
    cache, so the only difference is how cache *misses* evaluate their
    trees.  Two speedups are reported, each the ratio of its *own* reported
    wall-clocks (the committed PR-3 baseline mixed a load-paired ratio with
    independent best-round seconds, making the JSON self-inconsistent):

    * ``end_to_end_speedup`` -- cold kernel cache, the whole offspring
      stream (compilation warmup included);
    * ``warm_miss_speedup`` -- the kernel cache stays warm but the column
      and fit caches are cleared before every round, isolating the steady
      state where every miss re-runs a known skeleton (the regime a long
      run or a shared-cache sweep lives in).
    """
    seconds_by_path = {"interp": [], "compiled": []}
    first_results = {}
    compilers = {}
    # Extra rounds here: the compared effect is the smallest in the module,
    # so the best ratio needs more samples to stabilize.
    for _round in range(max(TIMING_ROUNDS, 5)):
        for column_backend in ("interp", "compiled"):
            seconds, cached, evaluator = _run_cached(
                engine, batches, column_backend=column_backend)
            seconds_by_path[column_backend].append(seconds)
            first_results.setdefault(column_backend, cached)
            if evaluator._compiler is not None:
                compilers.setdefault(column_backend, evaluator._compiler)

    # Warm-miss pass: one persistent evaluator per backend, warmed over the
    # whole stream once; every timed round then clears the column/fit/
    # complexity caches (but not the kernel cache or gram pool -- both
    # backends keep their warm gram pool, so the comparison stays paired)
    # and replays the stream as pure miss traffic.
    warm_seconds = {"interp": [], "compiled": []}
    for column_backend in ("interp", "compiled"):
        evaluator = PopulationEvaluator(
            engine.train.X, engine.train.y,
            WORKLOAD_SETTINGS.copy(column_backend=column_backend))
        warmup = [[ind.clone() for ind in batch] for batch in batches]
        for batch in warmup:
            evaluator.evaluate_population(batch)
        for _round in range(max(TIMING_ROUNDS, 5)):
            evaluator.cache.clear()
            evaluator._fit_cache.clear()
            evaluator._complexity_cache.clear()
            clones = [[ind.clone() for ind in batch] for batch in batches]
            start = time.perf_counter()
            for batch in clones:
                evaluator.evaluate_population(batch)
            warm_seconds[column_backend].append(time.perf_counter() - start)

    equal = _batches_equal(first_results["interp"], first_results["compiled"])
    compiler = compilers["compiled"]
    interp_seconds = min(seconds_by_path["interp"])
    compiled_seconds = min(seconds_by_path["compiled"])
    interp_warm = min(warm_seconds["interp"])
    compiled_warm = min(warm_seconds["compiled"])
    report = {
        "workload": "offspring stream, gram fits, cold column cache",
        "interp_seconds": round(interp_seconds, 4),
        "compiled_seconds": round(compiled_seconds, 4),
        "end_to_end_speedup": round(interp_seconds / compiled_seconds, 2),
        "interp_warm_miss_seconds": round(interp_warm, 4),
        "compiled_warm_miss_seconds": round(compiled_warm, 4),
        "warm_miss_speedup": round(interp_warm / compiled_warm, 2),
        "kernel_hit_rate": round(compiler.kernel_hit_rate, 4),
        "kernels_compiled": compiler.n_compiled,
        "first_sightings_interpreted": compiler.n_interpreted,
        "kernel_requests": compiler.n_kernel_requests,
    }
    return report, equal


def _measure_residual_backend(engine, batches):
    """Generation-batched vs per-individual prediction/residual pass.

    Both evaluators run gram fits over compiled columns from a cold cache;
    the only difference is whether each same-width group's post-fit scoring
    runs as one stacked pass or one individual at a time.  The speedup is
    the ratio of the two reported wall-clocks (self-consistent by
    construction).
    """
    seconds_by_path = {"scalar": [], "batched": []}
    first_results = {}
    backends = {}
    for _round in range(max(TIMING_ROUNDS, 5)):
        for residual_backend in ("scalar", "batched"):
            seconds, cached, evaluator = _run_cached(
                engine, batches, residual_backend=residual_backend)
            seconds_by_path[residual_backend].append(seconds)
            first_results.setdefault(residual_backend, cached)
            backends.setdefault(residual_backend, evaluator.residual_backend)

    equal = _batches_equal(first_results["scalar"], first_results["batched"])
    scalar_seconds = min(seconds_by_path["scalar"])
    batched_seconds = min(seconds_by_path["batched"])
    report = {
        "workload": "offspring stream, gram fits, cold column cache",
        "scalar_seconds": round(scalar_seconds, 4),
        "batched_seconds": round(batched_seconds, 4),
        "offspring_stream_speedup": round(scalar_seconds / batched_seconds, 2),
        "batched_passes": backends["batched"].n_batched_passes,
        "batched_fits": backends["batched"].n_batched_fits,
    }
    return report, equal


#: population_1000 budget: enough generations for the caches/kernels to
#: reach their steady state (the first generations are JIT warmup -- every
#: fresh skeleton is interpreted once before it can ever hit) without
#: pricing the section out of bench smoke.
POPULATION_1000_SETTINGS = CaffeineSettings(
    population_size=1000,
    n_generations=5,
    max_basis_functions=15,
    random_seed=2005,
)


def _run_population_1000(train, genome_backend):
    """One fixed-seed population-1000 engine loop with per-phase timers.

    Mirrors :meth:`CaffeineEngine.step` exactly (array-native ranking,
    batched tournament draws, ``select_and_rerank`` survivor selection) so
    the phase timers measure the code the engine actually runs; the loop is
    unrolled here only to put ``time.perf_counter()`` fences between the
    phases.  Returns the phase wall-clocks, the engine (for cache/counter
    inspection), the first offspring batch (for residual equivalence) and a
    bit-level snapshot of the final population (errors, complexities and
    per-basis structural keys) for the shared-vs-deepcopy verdict.
    """
    import numpy as np

    from repro.core.expression import structural_key
    from repro.core.individual import Individual
    from repro.core.nsga2 import (rank_population_arrays, select_and_rerank,
                                  tournament_winner)

    settings = POPULATION_1000_SETTINGS.copy(genome_backend=genome_backend)
    engine = CaffeineEngine(train, settings=settings)
    phase = {"generation": 0.0, "evaluation": 0.0, "selection": 0.0}
    captured_offspring = None
    n = settings.population_size
    bounds = np.array([n, n - 1, n, n - 1], dtype=np.int64)

    start = time.perf_counter()
    population = [Individual(bases=engine.generator.random_basis_functions())
                  for _ in range(n)]
    phase["generation"] += time.perf_counter() - start
    start = time.perf_counter()
    engine.evaluator.evaluate_population(population)
    phase["evaluation"] += time.perf_counter() - start
    engine.population = population

    start = time.perf_counter()
    ranked = rank_population_arrays(engine.population,
                                    backend=settings.pareto_backend)
    selection_seconds = time.perf_counter() - start
    for _generation in range(settings.n_generations):
        start = time.perf_counter()
        offspring = []
        for _ in range(n):
            draws = engine.rng.integers(0, bounds)
            parent_a = engine.population[
                tournament_winner(ranked, draws[0], draws[1])]
            parent_b = engine.population[
                tournament_winner(ranked, draws[2], draws[3])]
            offspring.append(engine.operators.vary(parent_a, parent_b))
        phase["generation"] += time.perf_counter() - start
        if captured_offspring is None:
            captured_offspring = [ind.clone() for ind in offspring]
        start = time.perf_counter()
        engine.evaluator.evaluate_population(offspring)
        phase["evaluation"] += time.perf_counter() - start
        start = time.perf_counter()
        engine.population, ranked = select_and_rerank(
            engine.population + offspring, n,
            backend=settings.pareto_backend)
        phase["selection"] += selection_seconds \
            + (time.perf_counter() - start)
        selection_seconds = 0.0

    final_snapshot = [
        (repr(ind.error), repr(ind.complexity),
         tuple(repr(structural_key(basis)) for basis in ind.bases))
        for ind in engine.population]
    return phase, engine, captured_offspring, final_snapshot


def _measure_population_1000(train):
    """The ROADMAP's population >= 1000 scaling item, measured end to end.

    Runs the real engine loop at population 1000 with per-phase timers
    (generation = RNG-driven variation, evaluation = the batch evaluator,
    selection = NSGA-II ranking + environmental selection), then reports
    throughput, every cache hit rate, the size-adaptive budgets the run
    resolved, and a scalar-vs-batched residual equivalence verdict on this
    scale's first offspring batch.
    """
    settings = POPULATION_1000_SETTINGS
    phase, engine, captured_offspring, final_snapshot = \
        _run_population_1000(train, settings.genome_backend)

    evaluator = engine.evaluator
    compiler = evaluator._compiler
    n_evaluations = evaluator.n_evaluated

    # Residual equivalence at this scale: the first real offspring batch,
    # re-evaluated through fresh scalar and batched evaluators.
    results = {}
    for residual_backend in ("scalar", "batched"):
        fresh = PopulationEvaluator(
            engine.train.X, engine.train.y,
            settings.copy(residual_backend=residual_backend))
        clones = [ind.clone() for ind in captured_offspring]
        fresh.evaluate_population(clones)
        results[residual_backend] = clones
    equal = _batches_equal([results["scalar"]], [results["batched"]])

    report = {
        "workload": "figure3-PM engine loop at population 1000",
        "population_size": settings.population_size,
        "n_generations": settings.n_generations,
        "genome_backend": settings.genome_backend,
        "n_evaluations": n_evaluations,
        "evaluations_per_second": round(
            n_evaluations / phase["evaluation"], 1),
        "generation_seconds": round(phase["generation"], 4),
        "evaluation_seconds": round(phase["evaluation"], 4),
        "selection_seconds": round(phase["selection"], 4),
        "column_cache_hit_rate": round(evaluator.column_hit_rate, 4),
        "fit_cache_hit_rate": round(evaluator.fit_hit_rate, 4),
        "gram_pair_hit_rate": round(evaluator.gram_pool.pair_hit_rate, 4),
        "kernel_hit_rate": round(compiler.kernel_hit_rate, 4),
        "kernels_compiled": compiler.n_compiled,
        "column_cache_entries": len(evaluator.cache),
        "gram_pool_entries": len(evaluator.gram_pool),
        "resolved_basis_cache_size": settings.resolved_basis_cache_size(),
        "resolved_gram_pool_size": settings.resolved_gram_pool_size(),
        "resolved_kernel_cache_size": settings.resolved_kernel_cache_size(),
    }
    return report, equal, final_snapshot


#: Node classes whose ``clone`` calls the clones-per-offspring probe counts.
_CLONABLE_NODE_CLASSES = ("ProductTerm", "UnaryOpTerm", "BinaryOpTerm",
                          "ConditionalOpTerm", "WeightedSum", "WeightedTerm")


def _count_node_clones(run_once, n_calls):
    """Average expression-node ``clone()`` calls per invocation of
    ``run_once``, counted by temporarily wrapping every node class."""
    import repro.core.expression as expression_module

    counter = [0]
    originals = {}

    def counting(original):
        def wrapper(self):
            counter[0] += 1
            return original(self)
        return wrapper

    for class_name in _CLONABLE_NODE_CLASSES:
        node_class = getattr(expression_module, class_name)
        originals[node_class] = node_class.clone
        node_class.clone = counting(node_class.clone)
    try:
        for _ in range(n_calls):
            run_once()
    finally:
        for node_class, original in originals.items():
            node_class.clone = original
    return counter[0] / n_calls


def _measure_selection_variation(train, shared_population_1000_report,
                                 shared_final_snapshot):
    """The structure-sharing genome vs the deepcopy reference, head to head.

    Three views of the same tentpole:

    * ``per_operator_child_microseconds`` -- each variation operator timed
      in isolation on identical fixed-seed parents under both genome
      backends (path-copying shares untouched subtrees; the reference
      deep-clones a parent per child);
    * ``clones_per_offspring`` -- expression-node ``clone()`` calls per
      ``vary`` call under each backend (the structural measure the timing
      follows);
    * population-1000 phase seconds for the deepcopy backend next to the
      shared run's (copied from the ``population_1000`` section so the pair
      is read side by side), plus the combined selection+variation
      per-generation seconds the PR's acceptance gate tracks.

    Also produces the ``genome_shared_vs_deepcopy`` equivalence verdict:
    the deepcopy population-1000 run must reach a bit-identical final
    population (errors, complexities, structural keys), and a fixed-seed
    Figure-3 workload must yield bit-identical Pareto fronts through
    ``run_caffeine`` under both backends.
    """
    import numpy as np

    from repro.core.engine import run_caffeine
    from repro.core.generator import ExpressionGenerator
    from repro.core.individual import Individual
    from repro.core.operators import VariationOperators

    unary = ("parameter_mutation", "vc_mutation", "subtree_mutation",
             "basis_delete", "basis_add")
    binary = ("vc_crossover", "subtree_crossover", "basis_crossover",
              "basis_copy")
    per_operator = {name: {} for name in unary + binary}
    clones_per_offspring = {}

    for genome_backend in ("shared", "deepcopy"):
        settings = WORKLOAD_SETTINGS.copy(genome_backend=genome_backend)
        generator = ExpressionGenerator(train.X.shape[1], settings,
                                        rng=np.random.default_rng(7))
        operators = VariationOperators(generator, settings,
                                       rng=np.random.default_rng(8))
        parent_a = Individual(bases=generator.random_basis_functions(6))
        parent_b = Individual(bases=generator.random_basis_functions(6))

        best = {name: float("inf") for name in per_operator}
        repeats = 200
        for _round in range(TIMING_ROUNDS):
            for name in unary + binary:
                operator = getattr(operators, name)
                start = time.perf_counter()
                if name in unary:
                    for _ in range(repeats):
                        operator(parent_a)
                else:
                    for _ in range(repeats):
                        operator(parent_a, parent_b)
                seconds = time.perf_counter() - start
                best[name] = min(best[name], seconds)
        for name, seconds in best.items():
            per_operator[name][genome_backend] = round(
                seconds / repeats * 1e6, 2)

        clones_per_offspring[genome_backend] = round(_count_node_clones(
            lambda: operators.vary(parent_a, parent_b), 300), 2)

    for _name, entry in per_operator.items():
        entry["speedup"] = round(
            entry["deepcopy"] / max(entry["shared"], 1e-9), 2)

    # Deepcopy reference at population 1000 + the bit-identity verdict.
    deepcopy_phase, _engine, _offspring, deepcopy_snapshot = \
        _run_population_1000(train, "deepcopy")
    population_1000_equal = deepcopy_snapshot == shared_final_snapshot

    figure3_settings = WORKLOAD_SETTINGS.copy(n_generations=5)
    fronts = {}
    for genome_backend in ("shared", "deepcopy"):
        result = run_caffeine(train, settings=figure3_settings.copy(
            genome_backend=genome_backend))
        fronts[genome_backend] = [
            (repr(model.train_error), repr(model.complexity),
             model.expression()) for model in result.tradeoff]
    figure3_equal = fronts["shared"] == fronts["deepcopy"]

    shared = shared_population_1000_report
    report = {
        "workload": "figure3-PM variation + selection, shared vs deepcopy",
        "per_operator_child_microseconds": per_operator,
        "clones_per_offspring": clones_per_offspring,
        "population_1000_shared_generation_seconds":
            shared["generation_seconds"],
        "population_1000_shared_selection_seconds":
            shared["selection_seconds"],
        "population_1000_deepcopy_generation_seconds":
            round(deepcopy_phase["generation"], 4),
        "population_1000_deepcopy_selection_seconds":
            round(deepcopy_phase["selection"], 4),
        "population_1000_selection_plus_generation_seconds": round(
            shared["generation_seconds"] + shared["selection_seconds"], 4),
    }
    return report, population_1000_equal and figure3_equal


def _measure_persistent_cache(engine, batches, tmp_path):
    """Cold start vs a ColumnCacheStore-warmed start on the offspring stream.

    The store is produced by one cold pass (exactly what a previous sweep or
    CI run would have left behind), then each warm round reloads it into a
    fresh cache.  Load/save costs are reported separately -- they are paid
    once per process, not per generation.
    """
    store = ColumnCacheStore(os.path.join(tmp_path, "bench-columns.cache"))
    _seconds, cold_reference, cold_evaluator = _run_cached(engine, batches)
    save_start = time.perf_counter()
    store_entries = store.save(cold_evaluator.cache)
    save_seconds = time.perf_counter() - save_start

    load_start = time.perf_counter()
    store.load(WORKLOAD_SETTINGS.resolved_basis_cache_size())
    load_seconds = time.perf_counter() - load_start

    seconds_by_path = {"cold": [], "warm": []}
    first_results = {"cold": cold_reference}
    warm_evaluator = None
    for _round in range(TIMING_ROUNDS):
        seconds, _cold, _evaluator = _run_cached(engine, batches)
        seconds_by_path["cold"].append(seconds)
        warm_cache = store.load(WORKLOAD_SETTINGS.resolved_basis_cache_size())
        seconds, warm, evaluator = _run_cached(engine, batches,
                                               cache=warm_cache)
        seconds_by_path["warm"].append(seconds)
        first_results.setdefault("warm", warm)
        warm_evaluator = warm_evaluator or evaluator

    equal = _batches_equal(first_results["cold"], first_results["warm"])
    report = {
        "workload": "offspring stream, gram fits, compiled columns",
        "cold_seconds": round(min(seconds_by_path["cold"]), 4),
        "warm_seconds": round(min(seconds_by_path["warm"]), 4),
        "speedup": round(_paired_speedup(seconds_by_path["cold"],
                                         seconds_by_path["warm"]), 2),
        "store_entries": store_entries,
        "store_bytes": os.path.getsize(store.path),
        "save_seconds": round(save_seconds, 4),
        "load_seconds": round(load_seconds, 4),
        "cold_columns_computed": cold_evaluator.n_columns_computed,
        "warm_columns_computed": warm_evaluator.n_columns_computed,
        "warm_column_hit_rate": round(warm_evaluator.column_hit_rate, 4),
    }
    return report, equal


def _measure_session_api(train):
    """Legacy ``run_caffeine`` shim vs the Problem/Session path, PR 4's API.

    Both run the same small fixed-seed workload; the section records wall
    clocks and -- the part the trajectory gate cares about -- whether the
    resulting Pareto fronts are bit-for-bit identical, which is the
    guarantee the deprecation shims advertise.
    """
    from repro.core.engine import run_caffeine
    from repro.core.problem import Problem
    from repro.core.session import Session

    settings = WORKLOAD_SETTINGS.copy(n_generations=5)

    legacy_start = time.perf_counter()
    legacy = run_caffeine(train, settings=settings)
    legacy_seconds = time.perf_counter() - legacy_start

    session_start = time.perf_counter()
    session = Session([Problem(train=train)], settings=settings).run().single()
    session_seconds = time.perf_counter() - session_start

    def front(result):
        return [(m.train_error, m.complexity, m.expression())
                for m in result.tradeoff]

    equal = front(legacy) == front(session)
    report = {
        "workload": "figure3-PM, 5 generations, fixed seed",
        "legacy_run_caffeine_seconds": round(legacy_seconds, 4),
        "session_seconds": round(session_seconds, 4),
        "n_models": legacy.n_models,
    }
    return report, equal


def _measure_serving(train, tmp_path):
    """Frozen-front artifact round trip plus served-prediction latency.

    Freezes a fixed-seed Figure-3 run with :func:`save_front`, loads it
    back with :func:`load_front`, and produces the ``artifact_roundtrip``
    verdict: the frozen front's ``predict_all``/``rescore`` and the
    responses served over HTTP must be bit-for-bit identical to the
    originating run's models and to
    :func:`~repro.core.report.rescore_models`.  The report is the
    trajectory's ``serving`` section: artifact size, save/cold-load
    wall-clocks, and -- per batch size 1/100/10000 -- the ``/predict``
    latency percentiles and throughput from the server's own
    :class:`~repro.serve.RequestProfiler` (swapped fresh per batch size so
    the percentiles are not mixed across scales).  Latency numbers are
    informational, never gated (noisy-runner rule); only the bit identity
    is asserted.
    """
    import threading
    import urllib.request

    import numpy as np

    from repro.core.artifact import load_front, save_front
    from repro.core.engine import run_caffeine
    from repro.core.report import rescore_models
    from repro.serve import RequestProfiler, make_server

    result = run_caffeine(train,
                          settings=WORKLOAD_SETTINGS.copy(n_generations=5))
    path = os.path.join(tmp_path, "bench-front.caffeine")
    save_start = time.perf_counter()
    n_models = save_front(result, path)
    save_seconds = time.perf_counter() - save_start

    # Offline round trip: bit identity against the originating run.
    front = load_front(path)
    models = list(result.tradeoff)
    X, y = train.X, train.y
    stacked = front.predict_all(X)
    equal = all(np.array_equal(row, model.predict(X))
                for row, model in zip(stacked, models, strict=True))
    equal = equal and np.array_equal(
        np.asarray(front.rescore(X, y)),
        np.asarray(rescore_models(models, X, y)), equal_nan=True)

    server = make_server(path)
    cold_load_ms = server.profiler.snapshot()["metrics"]["cold_load_ms"]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    report = {
        "workload": "figure3-PM front frozen + served over HTTP",
        "n_models": n_models,
        "artifact_bytes": os.path.getsize(path),
        "save_seconds": round(save_seconds, 4),
        "cold_load_ms": round(cold_load_ms, 3),
    }
    try:
        def post_predict(payload):
            request = urllib.request.Request(
                server.url + "/predict", data=payload,
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request, timeout=60) as response:
                return json.loads(response.read())

        # Served bit identity: one probe batch vs the frozen predictions
        # (the server maps non-finite values to JSON null).
        rng = np.random.default_rng(2005)
        probe = X[rng.integers(0, X.shape[0], size=100)]
        served = np.array(
            [np.nan if value is None else value
             for value in post_predict(
                 json.dumps({"X": probe.tolist()}).encode())["predictions"]])
        equal = equal and np.array_equal(served, front.predict(probe),
                                         equal_nan=True)

        for batch_size, n_requests in ((1, 50), (100, 20), (10000, 5)):
            batch = X[rng.integers(0, X.shape[0], size=batch_size)]
            payload = json.dumps({"X": batch.tolist()}).encode()
            server.profiler = RequestProfiler()
            for _request in range(n_requests):
                post_predict(payload)
            snapshot = server.profiler.snapshot()["steps"]["predict"]
            report[f"batch_{batch_size}"] = {
                "requests": n_requests,
                "p50_ms": round(snapshot["p50_ms"], 3),
                "p95_ms": round(snapshot["p95_ms"], 3),
                "p99_ms": round(snapshot["p99_ms"], 3),
                "rows_per_second": round(snapshot["rows_per_second"], 1),
            }
    finally:
        server.shutdown()
        server.server_close()
    return report, equal


def _measure_concurrent_store(tmp_path):
    """Two simultaneous ``ColumnCacheStore.save`` cycles on one path.

    The stores' advisory lock serializes the read-merge-write cycles, so
    the union of both writers' entries must survive -- the PR-4 fix for
    the last-writer-wins hazard.  Two threads with separate store
    instances exercise the same flock exclusion as two processes (each
    ``save`` opens the lock file independently), at bench-smoke cost.
    """
    import threading

    from repro.core.evaluation import BasisColumnCache

    import numpy as np

    path = os.path.join(tmp_path, "concurrent-columns.cache")
    n_entries = 200
    barrier = threading.Barrier(2)
    durations = {}

    def writer(worker_id):
        cache = BasisColumnCache(10000)
        for index in range(n_entries):
            cache.put((f"ds-{worker_id}", ("col", index)),
                      np.full(8, worker_id * 1000.0 + index))
        barrier.wait(timeout=30)
        start = time.perf_counter()
        ColumnCacheStore(path).save(cache)
        durations[worker_id] = time.perf_counter() - start

    threads = [threading.Thread(target=writer, args=(worker_id,))
               for worker_id in (1, 2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    merged = ColumnCacheStore(path).load(max_entries=10000)
    stored = {key for key, _column in merged.items()}
    expected = {(f"ds-{worker_id}", ("col", index))
                for worker_id in (1, 2) for index in range(n_entries)}
    no_lost_entries = expected <= stored
    report = {
        "entries_per_writer": n_entries,
        "stored_entries": len(merged),
        "first_save_seconds": round(min(durations.values()), 4),
        "second_save_seconds": round(max(durations.values()), 4),
    }
    return report, no_lost_entries


def _measure_sort(population):
    """NSGA-II ranking time on one realistic population, per backend."""
    report = {"population_size": len(population)}
    for backend in ("python", "numpy"):
        repeats = 5
        start = time.perf_counter()
        for _ in range(repeats):
            rank_population(population, backend=backend)
        seconds = (time.perf_counter() - start) / repeats
        report[f"{backend}_seconds"] = round(seconds, 6)
    report["speedup"] = round(report["python_seconds"]
                              / max(report["numpy_seconds"], 1e-12), 2)
    return report


def test_population_evaluation_throughput(benchmark, bench_datasets,
                                          tmp_path):
    train, _ = bench_datasets.for_target("PM")
    engine, offspring_batches, population_batches = _capture_workloads(train)

    offspring_report, offspring_equal = _measure(engine, offspring_batches)
    reevaluation_report, reevaluation_equal = _measure(engine,
                                                       population_batches)
    column_report, column_equal = _measure_column_backend(engine,
                                                          offspring_batches)
    residual_report, residual_equal = _measure_residual_backend(
        engine, offspring_batches)
    cache_report, cache_equal = _measure_persistent_cache(
        engine, offspring_batches, str(tmp_path))
    population_1000_report, population_1000_equal, shared_final_snapshot = \
        _measure_population_1000(train)
    selection_variation_report, genome_backends_equal = \
        _measure_selection_variation(train, population_1000_report,
                                     shared_final_snapshot)
    sort_report = _measure_sort(population_batches[-1])
    session_report, session_equal = _measure_session_api(train)
    serving_report, artifact_equal = _measure_serving(train, str(tmp_path))
    concurrent_report, concurrent_ok = _measure_concurrent_store(
        str(tmp_path))

    equivalence = {
        "offspring_naive_vs_direct": offspring_equal["direct"],
        "offspring_naive_vs_gram": offspring_equal["gram"],
        "reevaluation_naive_vs_direct": reevaluation_equal["direct"],
        "reevaluation_naive_vs_gram": reevaluation_equal["gram"],
        "interp_vs_compiled": column_equal,
        "residual_scalar_vs_batched": residual_equal,
        "population_1000_scalar_vs_batched": population_1000_equal,
        "genome_shared_vs_deepcopy": genome_backends_equal,
        "cold_vs_warm_cache": cache_equal,
        "legacy_shim_vs_session": session_equal,
        "artifact_roundtrip": artifact_equal,
        "concurrent_store_writers_lose_nothing": concurrent_ok,
    }
    equivalence["verified"] = all(equivalence.values())

    report = {
        "workload": "figure3-PM",
        "population_size": WORKLOAD_SETTINGS.population_size,
        "n_generations": WORKLOAD_SETTINGS.n_generations,
        "offspring": offspring_report,
        "reevaluation": reevaluation_report,
        "column_backend": column_report,
        "residual_backend": residual_report,
        "persistent_cache": cache_report,
        "population_1000": population_1000_report,
        "selection_variation": selection_variation_report,
        "pareto_sort": sort_report,
        "session_api": session_report,
        "serving": serving_report,
        "concurrent_store": concurrent_report,
        "equivalence": equivalence,
    }
    write_output("bench_evaluation.json", json.dumps(report, indent=2))

    # Bit-for-bit equivalence is non-negotiable (never relaxed in CI).
    assert equivalence["verified"], \
        f"fast paths are not bit-for-bit identical: {equivalence}"

    gram_offspring = offspring_report["backends"]["gram"]
    direct_offspring = offspring_report["backends"]["direct"]
    gram_reevaluation = reevaluation_report["backends"]["gram"]
    assert gram_reevaluation["speedup"] >= MIN_REEVALUATION_SPEEDUP, \
        (f"re-evaluation speedup regressed: "
         f"{gram_reevaluation['speedup']}x < {MIN_REEVALUATION_SPEEDUP}x")
    assert gram_offspring["speedup"] >= MIN_OFFSPRING_SPEEDUP_GRAM, \
        (f"gram offspring-stream speedup regressed: "
         f"{gram_offspring['speedup']}x < {MIN_OFFSPRING_SPEEDUP_GRAM}x")
    assert direct_offspring["speedup"] >= MIN_OFFSPRING_SPEEDUP_DIRECT, \
        (f"direct offspring-stream speedup regressed: "
         f"{direct_offspring['speedup']}x < {MIN_OFFSPRING_SPEEDUP_DIRECT}x")
    assert column_report["end_to_end_speedup"] >= MIN_COMPILED_COLUMN_SPEEDUP, \
        (f"compiled column backend lost to the interpreter: "
         f"{column_report['end_to_end_speedup']}x < "
         f"{MIN_COMPILED_COLUMN_SPEEDUP}x")
    assert residual_report["offspring_stream_speedup"] >= \
        MIN_RESIDUAL_SPEEDUP, \
        (f"batched residual pass lost to scalar scoring: "
         f"{residual_report['offspring_stream_speedup']}x < "
         f"{MIN_RESIDUAL_SPEEDUP}x")
    assert cache_report["speedup"] >= MIN_WARM_CACHE_SPEEDUP, \
        (f"warm persistent cache lost to a cold start: "
         f"{cache_report['speedup']}x < {MIN_WARM_CACHE_SPEEDUP}x")
    assert population_1000_report["kernel_hit_rate"] > \
        MIN_POPULATION_1000_KERNEL_HIT_RATE, \
        (f"population-1000 kernel hit rate regressed: "
         f"{population_1000_report['kernel_hit_rate']} <= "
         f"{MIN_POPULATION_1000_KERNEL_HIT_RATE}")
    shared_generation = selection_variation_report[
        "population_1000_shared_generation_seconds"]
    deepcopy_generation = selection_variation_report[
        "population_1000_deepcopy_generation_seconds"]
    assert deepcopy_generation / shared_generation >= \
        MIN_SHARED_VARIATION_SPEEDUP, \
        (f"shared-genome variation lost to the deepcopy reference: "
         f"{deepcopy_generation / shared_generation:.2f}x < "
         f"{MIN_SHARED_VARIATION_SPEEDUP}x")
    # Offspring reuse parental basis functions even though their fits are
    # fresh; survivors recur wholesale; offspring grams are mostly gathers;
    # a store-warmed cache serves nearly every column from disk.
    assert gram_offspring["column_cache_hit_rate"] > 0.5
    assert gram_reevaluation["fit_cache_hit_rate"] > 0.5
    assert gram_offspring["gram_pair_hit_rate"] > 0.5
    assert cache_report["warm_column_hit_rate"] > 0.9

    # ------------------------------------------------------------------
    # Timed section: one warm-cache population evaluation (the unit of work
    # the evolutionary loop repeats every generation).
    # ------------------------------------------------------------------
    final_batch = population_batches[-1]
    evaluator = PopulationEvaluator(engine.train.X, engine.train.y,
                                    WORKLOAD_SETTINGS)
    evaluator.evaluate_population([ind.clone() for ind in final_batch])

    def evaluate_final_population():
        evaluator.evaluate_population([ind.clone() for ind in final_batch])

    benchmark(evaluate_final_population)
