"""Population-evaluation benchmark: cached subsystems vs. naive re-evaluation.

Measures the Figure-3 workload (the PM dataset, population 100) through the
batch evaluation subsystem of :mod:`repro.core.evaluation` and through the
naive per-individual path it replaced, on **two** honestly labeled workloads:

* ``offspring`` -- the engine's actual evaluation stream (initial population
  plus every generation's fresh offspring).  Fresh individuals need fresh
  linear fits, so here the gains come from the basis-column cache plus --
  since the gram pool -- from fits that gather cached normal-equation
  scalars instead of re-reducing ``n_samples``-long columns.
* ``reevaluation`` -- re-evaluating each generation's post-selection
  population, the shape of simplification passes, test-set sweeps and
  repeated analysis.  Survivors recur across generations, so the
  individual-level fit cache dominates and the speedup is large.

Each workload is measured under both fit backends (``direct`` =
per-individual ``fit_linear``, ``gram`` = pooled gather-and-solve), and the
report includes fits/sec per backend.  NSGA-II ranking time is reported
*separately* (it is selection, not evaluation) in a ``pareto_sort`` section
-- and at larger population scales in ``bench_pareto.json``.

Emits machine-readable JSON (``benchmarks/output/bench_evaluation.json``;
schema documented in ``benchmarks/README.md``) so future PRs can track the
performance trajectory of the hot loop.  All paths are verified to produce
bit-for-bit identical errors before any number is reported.
"""

from __future__ import annotations

import json
import os
import time

from repro.core.engine import CaffeineEngine
from repro.core.evaluation import PopulationEvaluator, evaluate_individual_inplace
from repro.core.nsga2 import rank_population
from repro.core.settings import CaffeineSettings

from conftest import write_output

#: Regression gates.  The gram backend must deliver the tentpole's promised
#: >= 2x on the fresh-offspring stream; the direct backend keeps PR 1's
#: column-cache-only gate; the re-evaluation path is fit-cache dominated.
#: ``BENCH_RELAX_SPEEDUP_GATES=1`` (set by CI's shared noisy runners)
#: disables only the wall-clock ratio gates; the bit-for-bit equivalence
#: checks always hold.
_GATES_RELAXED = os.environ.get("BENCH_RELAX_SPEEDUP_GATES") == "1"
MIN_REEVALUATION_SPEEDUP = 0.0 if _GATES_RELAXED else 2.5
MIN_OFFSPRING_SPEEDUP_DIRECT = 0.0 if _GATES_RELAXED else 1.0
MIN_OFFSPRING_SPEEDUP_GRAM = 0.0 if _GATES_RELAXED else 2.0

#: Figure-3 workload scale: population 100 over the benchmark generation
#: budget used by the shared harness (see conftest.BENCH_SETTINGS).
WORKLOAD_SETTINGS = CaffeineSettings(
    population_size=100,
    n_generations=30,
    max_basis_functions=15,
    random_seed=2005,
)


def _capture_workloads(train):
    """Run one engine; capture its true evaluation stream and its
    per-generation populations."""
    engine = CaffeineEngine(train, settings=WORKLOAD_SETTINGS)
    offspring_batches = []
    original = engine.evaluator.evaluate_population

    def capturing(individuals):
        offspring_batches.append([ind.clone() for ind in individuals])
        return original(individuals)

    engine.evaluator.evaluate_population = capturing
    population_batches = []
    engine.initialize_population()
    population_batches.append([ind.clone() for ind in engine.population])
    for generation in range(WORKLOAD_SETTINGS.n_generations):
        engine.step(generation)
        population_batches.append([ind.clone() for ind in engine.population])
    engine.evaluator.evaluate_population = original
    return engine, offspring_batches, population_batches


#: Timing rounds; every round times naive, direct and gram back to back
#: (round-robin), and each path reports its best round.  Interleaving means
#: background load (the rest of the benchmark suite, CI neighbours) hits all
#: three paths alike instead of skewing whichever ran while the machine was
#: busy, which is what keeps the speedup gates stable.
TIMING_ROUNDS = 3


def _run_naive(engine, batches):
    """Naive per-individual evaluation (tree re-evaluation + direct fit)."""
    clones = [[ind.clone() for ind in batch] for batch in batches]
    start = time.perf_counter()
    for batch in clones:
        for individual in batch:
            evaluate_individual_inplace(individual, engine.train.X,
                                        engine.train.y, WORKLOAD_SETTINGS)
    return time.perf_counter() - start, clones


def _run_cached(engine, batches, fit_backend):
    """Batch evaluation through a fresh (cold-cache) evaluator.

    Every round starts cold, so cache hit rates and work counters are
    identical across rounds (they are deterministic); only wall-clock
    varies.
    """
    clones = [[ind.clone() for ind in batch] for batch in batches]
    evaluator = PopulationEvaluator(
        engine.train.X, engine.train.y,
        WORKLOAD_SETTINGS.copy(fit_backend=fit_backend))
    start = time.perf_counter()
    for batch in clones:
        evaluator.evaluate_population(batch)
    return time.perf_counter() - start, clones, evaluator


def _measure(engine, batches):
    """Time naive vs. both cached backends; verify bit-for-bit equivalence.

    Speedups are **paired**: each round's cached time is compared against
    the naive time of the *same* round (they run back to back, so machine
    load hits both alike) and the best load-matched ratio is reported.
    Comparing independent bests instead would let one lucky naive round on
    a drifting machine mask a genuinely faster cached path.
    """
    n_evaluations = sum(len(batch) for batch in batches)
    seconds_by_path = {"naive": [], "direct": [], "gram": []}
    first_results = {}
    evaluators = {}
    for _round in range(TIMING_ROUNDS):
        seconds, naive = _run_naive(engine, batches)
        seconds_by_path["naive"].append(seconds)
        first_results.setdefault("naive", naive)
        for fit_backend in ("direct", "gram"):
            seconds, cached, evaluator = _run_cached(engine, batches,
                                                     fit_backend)
            seconds_by_path[fit_backend].append(seconds)
            first_results.setdefault(fit_backend, cached)
            evaluators.setdefault(fit_backend, evaluator)

    best_naive = min(seconds_by_path["naive"])
    backends = {}
    for fit_backend in ("direct", "gram"):
        # Bit-for-bit equivalence before believing any timing.
        for naive_batch, cached_batch in zip(first_results["naive"],
                                             first_results[fit_backend]):
            for a, b in zip(naive_batch, cached_batch):
                assert a.error == b.error, fit_backend
                assert a.complexity == b.complexity, fit_backend
        seconds = min(seconds_by_path[fit_backend])
        speedup = max(naive_seconds / cached_seconds
                      for naive_seconds, cached_seconds
                      in zip(seconds_by_path["naive"],
                             seconds_by_path[fit_backend]))
        evaluator = evaluators[fit_backend]
        entry = {
            "seconds": round(seconds, 4),
            "evaluations_per_second": round(n_evaluations / seconds, 1),
            "fits_per_second": round(evaluator.n_fits_computed / seconds, 1),
            "n_fits_computed": evaluator.n_fits_computed,
            "speedup": round(speedup, 2),
            "column_cache_hit_rate": round(evaluator.column_hit_rate, 4),
            "fit_cache_hit_rate": round(evaluator.fit_hit_rate, 4),
            "column_cache_entries": len(evaluator.cache),
        }
        if evaluator.gram_pool is not None:
            entry["gram_pair_hit_rate"] = round(
                evaluator.gram_pool.pair_hit_rate, 4)
            entry["gram_pairs_computed"] = evaluator.gram_pool.n_pairs_computed
            entry["gram_pool_entries"] = len(evaluator.gram_pool)
        backends[fit_backend] = entry

    return {
        "n_evaluations": n_evaluations,
        "naive_seconds": round(best_naive, 4),
        "naive_evaluations_per_second": round(n_evaluations / best_naive, 1),
        "backends": backends,
    }


def _measure_sort(population):
    """NSGA-II ranking time on one realistic population, per backend."""
    report = {"population_size": len(population)}
    for backend in ("python", "numpy"):
        repeats = 5
        start = time.perf_counter()
        for _ in range(repeats):
            rank_population(population, backend=backend)
        seconds = (time.perf_counter() - start) / repeats
        report[f"{backend}_seconds"] = round(seconds, 6)
    report["speedup"] = round(report["python_seconds"]
                              / max(report["numpy_seconds"], 1e-12), 2)
    return report


def test_population_evaluation_throughput(benchmark, bench_datasets):
    train, _ = bench_datasets.for_target("PM")
    engine, offspring_batches, population_batches = _capture_workloads(train)

    offspring_report = _measure(engine, offspring_batches)
    reevaluation_report = _measure(engine, population_batches)
    sort_report = _measure_sort(population_batches[-1])

    report = {
        "workload": "figure3-PM",
        "population_size": WORKLOAD_SETTINGS.population_size,
        "n_generations": WORKLOAD_SETTINGS.n_generations,
        "offspring": offspring_report,
        "reevaluation": reevaluation_report,
        "pareto_sort": sort_report,
    }
    write_output("bench_evaluation.json", json.dumps(report, indent=2))

    gram_offspring = offspring_report["backends"]["gram"]
    direct_offspring = offspring_report["backends"]["direct"]
    gram_reevaluation = reevaluation_report["backends"]["gram"]
    assert gram_reevaluation["speedup"] >= MIN_REEVALUATION_SPEEDUP, \
        (f"re-evaluation speedup regressed: "
         f"{gram_reevaluation['speedup']}x < {MIN_REEVALUATION_SPEEDUP}x")
    assert gram_offspring["speedup"] >= MIN_OFFSPRING_SPEEDUP_GRAM, \
        (f"gram offspring-stream speedup regressed: "
         f"{gram_offspring['speedup']}x < {MIN_OFFSPRING_SPEEDUP_GRAM}x")
    assert direct_offspring["speedup"] >= MIN_OFFSPRING_SPEEDUP_DIRECT, \
        (f"direct offspring-stream speedup regressed: "
         f"{direct_offspring['speedup']}x < {MIN_OFFSPRING_SPEEDUP_DIRECT}x")
    # Offspring reuse parental basis functions even though their fits are
    # fresh; survivors recur wholesale; offspring grams are mostly gathers.
    assert gram_offspring["column_cache_hit_rate"] > 0.5
    assert gram_reevaluation["fit_cache_hit_rate"] > 0.5
    assert gram_offspring["gram_pair_hit_rate"] > 0.5

    # ------------------------------------------------------------------
    # Timed section: one warm-cache population evaluation (the unit of work
    # the evolutionary loop repeats every generation).
    # ------------------------------------------------------------------
    final_batch = population_batches[-1]
    evaluator = PopulationEvaluator(engine.train.X, engine.train.y,
                                    WORKLOAD_SETTINGS)
    evaluator.evaluate_population([ind.clone() for ind in final_batch])

    def evaluate_final_population():
        evaluator.evaluate_population([ind.clone() for ind in final_batch])

    benchmark(evaluate_final_population)
