"""Crash-safe checkpoint/resume: bit-identity, durability, lock survival.

The contract under test: a run interrupted at generation *k* and resumed
from its checkpoint produces a final front **byte-for-byte identical** to
the uninterrupted run; a SIGKILL at any instant -- including mid-save --
leaves the previous checkpoint version readable; and a lock holder's death
releases the lock for the next writer.
"""

from __future__ import annotations

import multiprocessing
import os
import signal

import numpy as np
import pytest

from repro.core import faults
from repro.core.cache_store import FileLock, RunCheckpointStore
from repro.core.engine import CaffeineEngine, run_caffeine
from repro.core.problem import Problem
from repro.core.session import Session, SessionCallback
from repro.core.settings import CaffeineSettings
from repro.data.dataset import Dataset

SETTINGS = CaffeineSettings(population_size=20, n_generations=5,
                            random_seed=7)


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear()
    yield
    faults.clear()


def _datasets(seed: int = 0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0.5, 2.0, size=(40, 3))
    Xt = rng.uniform(0.6, 1.9, size=(30, 3))
    names = ("a", "b", "c")

    def target(M):
        return 3.0 + 2.0 * M[:, 0] / M[:, 1] + 0.5 * M[:, 2]

    train = Dataset(X, target(X), names, target_name="y")
    test = Dataset(Xt, target(Xt), names, target_name="y")
    return train, test


def _front(result):
    return [(m.train_error,
             None if np.isnan(m.test_error) else m.test_error,
             m.complexity, m.expression())
            for m in result.tradeoff]


class _InterruptAt:
    """A progress callable that raises KeyboardInterrupt at generation k."""

    def __init__(self, generation: int):
        self.generation = generation

    def __call__(self, generation, stats):
        if generation == self.generation:
            raise KeyboardInterrupt


class _CountGenerations(SessionCallback):
    def __init__(self):
        self.count = 0

    def on_generation(self, problem, generation, stats):
        self.count += 1


class TestRunCheckpointStore:
    def test_slot_roundtrip_and_discard(self, tmp_path):
        store = RunCheckpointStore(tmp_path / "run.ckpt")
        assert store.load_state("a") is None
        store.save_state("a", {"v": 1})
        store.save_state("b", {"v": 2})
        assert store.load_state("a") == {"v": 1}
        assert store.slot_names() == ("a", "b")
        assert store.discard("a")
        assert not store.discard("a")  # already gone
        assert store.load_state("a") is None
        assert store.load_state("b") == {"v": 2}  # merge, not overwrite


class TestEngineResume:
    @pytest.mark.parametrize("genome_backend", ["shared", "deepcopy"])
    def test_interrupted_resume_is_bit_identical(self, tmp_path,
                                                 genome_backend):
        train, test = _datasets()
        settings = SETTINGS.copy(genome_backend=genome_backend)
        reference = CaffeineEngine(train, test=test, settings=settings).run()

        path = tmp_path / "run.ckpt"
        engine = CaffeineEngine(train, test=test, settings=settings)
        with pytest.raises(KeyboardInterrupt):
            engine.run(progress=_InterruptAt(2), checkpoint=path)
        state = RunCheckpointStore(path).load_state("y")
        assert state["kind"] == "generation"
        assert 0 < state["generation"] < settings.n_generations

        resumed = CaffeineEngine(train, test=test, settings=settings).run(
            checkpoint=path, resume=True)
        assert _front(resumed) == _front(reference)

    def test_checkpoint_every_controls_cadence(self, tmp_path):
        train, test = _datasets()
        path = tmp_path / "run.ckpt"
        engine = CaffeineEngine(train, test=test, settings=SETTINGS)
        # Interrupt during generation 3: with cadence 2 only the gen-2
        # boundary was persisted on the way (then the KI handler saves the
        # last completed boundary, gen 3).
        with pytest.raises(KeyboardInterrupt):
            engine.run(progress=_InterruptAt(3), checkpoint=path,
                       checkpoint_every=2)
        state = RunCheckpointStore(path).load_state("y")
        assert state["generation"] == 3
        resumed = CaffeineEngine(train, test=test, settings=SETTINGS).run(
            checkpoint=path, checkpoint_every=2, resume=True)
        reference = CaffeineEngine(train, test=test, settings=SETTINGS).run()
        assert _front(resumed) == _front(reference)

    def test_result_slot_short_circuits_rerun(self, tmp_path):
        train, test = _datasets()
        path = tmp_path / "run.ckpt"
        first = CaffeineEngine(train, test=test, settings=SETTINGS).run(
            checkpoint=path)
        assert RunCheckpointStore(path).load_state("y")["kind"] == "result"

        generations = []
        second = CaffeineEngine(train, test=test, settings=SETTINGS).run(
            progress=lambda g, s: generations.append(g),
            checkpoint=path, resume=True)
        assert generations == []  # returned the stored result, no re-run
        assert _front(second) == _front(first)

    def test_incompatible_checkpoint_warns_and_cold_starts(self, tmp_path):
        train, test = _datasets()
        path = tmp_path / "run.ckpt"
        with pytest.raises(KeyboardInterrupt):
            CaffeineEngine(train, test=test, settings=SETTINGS).run(
                progress=_InterruptAt(2), checkpoint=path)

        other = SETTINGS.copy(random_seed=8)
        with pytest.warns(RuntimeWarning, match="starting cold"):
            resumed = CaffeineEngine(train, test=test, settings=other).run(
                checkpoint=path, resume=True)
        reference = CaffeineEngine(train, test=test, settings=other).run()
        assert _front(resumed) == _front(reference)

    def test_restore_run_state_raises_on_mismatch(self, tmp_path):
        train, test = _datasets()
        engine = CaffeineEngine(train, test=test, settings=SETTINGS)
        engine.initialize_population()
        engine.step(0)
        state = engine.capture_run_state(1)

        other = CaffeineEngine(train, test=test,
                               settings=SETTINGS.copy(population_size=24))
        with pytest.raises(ValueError, match="fingerprint"):
            other.restore_run_state(state)

    def test_result_neutral_settings_share_fingerprints(self):
        train, test = _datasets()
        base = CaffeineEngine(train, test=test, settings=SETTINGS)
        tweaked = CaffeineEngine(
            train, test=test,
            settings=SETTINGS.copy(genome_backend="deepcopy",
                                   basis_cache_size=7,
                                   fault_injection="lock.timeout:times=1"))
        # Backends/caches never change results, so their checkpoints are
        # mutually resumable by design.
        assert base.checkpoint_fingerprint() == \
            tweaked.checkpoint_fingerprint()
        assert SETTINGS.fingerprint() != \
            SETTINGS.copy(population_size=24).fingerprint()


class TestLegacyShimCheckpoint:
    def test_run_caffeine_checkpoint_and_resume(self, tmp_path):
        train, test = _datasets()
        path = str(tmp_path / "run.ckpt")
        reference = run_caffeine(train, test, settings=SETTINGS)
        first = run_caffeine(train, test, settings=SETTINGS,
                             checkpoint_path=path)
        assert _front(first) == _front(reference)
        # Second call resumes straight from the stored result slot.
        again = run_caffeine(train, test, settings=SETTINGS,
                             checkpoint_path=path)
        assert _front(again) == _front(reference)


class TestSessionResume:
    def _problems(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(0.5, 2.0, size=(40, 3))
        names = ("a", "b", "c")
        return [Problem(train=Dataset(X, 3 + 2 * X[:, 0] / X[:, 1], names,
                                      target_name="t1")),
                Problem(train=Dataset(X, X[:, 2] ** 2 + X[:, 0], names,
                                      target_name="t2"))]

    def test_resume_requires_checkpoint_path(self):
        session = Session(self._problems(), settings=SETTINGS)
        with pytest.raises(ValueError, match="checkpoint_path"):
            session.run(resume=True)

    def test_interrupted_sweep_resumes_bit_identically(self, tmp_path):
        problems = self._problems()
        clean = Session(problems, settings=SETTINGS).run()

        class _KI(SessionCallback):
            def on_generation(self, problem, generation, stats):
                if problem.name == "t2" and generation == 2:
                    raise KeyboardInterrupt

        path = str(tmp_path / "sweep.ckpt")
        partial = Session(problems, settings=SETTINGS, checkpoint_path=path,
                          callbacks=[_KI()]).run()
        assert partial.interrupted
        assert not partial.complete
        assert set(partial.results) == {"t1"}
        assert partial.failures["t2"].phase == "interrupted"

        counter = _CountGenerations()
        resumed = Session(problems, settings=SETTINGS, checkpoint_path=path,
                          callbacks=[counter]).resume()
        assert resumed.complete
        # t1 came from its result slot (no generations re-run); t2 resumed
        # from its generation-2 boundary, not from scratch.
        assert counter.count < SETTINGS.n_generations
        for name in ("t1", "t2"):
            assert _front(resumed[name]) == _front(clean[name])

    def test_parallel_sweep_resumes_result_slots(self, tmp_path):
        problems = self._problems()
        path = str(tmp_path / "sweep.ckpt")
        first = Session(problems, settings=SETTINGS, jobs=2,
                        checkpoint_path=path).run()
        assert first.complete
        store = RunCheckpointStore(path)
        assert sorted(store.slot_names()) == ["t1", "t2"]
        resumed = Session(problems, settings=SETTINGS, jobs=2,
                          checkpoint_path=path).resume()
        for name in ("t1", "t2"):
            assert _front(resumed[name]) == _front(first[name])

    def test_figure3_workload_interrupt_resume(self, tmp_path):
        """The acceptance workload: interrupt a figure3-style OTA sweep at
        generation k, resume, and match the uninterrupted front."""
        from repro.experiments.figure3 import run_figure3
        from repro.experiments.setup import (
            generate_ota_datasets,
            session_for_targets,
        )

        datasets = generate_ota_datasets(n_runs=27)
        settings = CaffeineSettings(population_size=16, n_generations=4,
                                    random_seed=3)
        reference = run_figure3(datasets, settings, targets=("PM",))

        class _KI(SessionCallback):
            def on_generation(self, problem, generation, stats):
                if generation == 1:
                    raise KeyboardInterrupt

        path = str(tmp_path / "figure3.ckpt")
        partial = session_for_targets(datasets, ("PM",), settings,
                                      checkpoint_path=path,
                                      callbacks=[_KI()]).run()
        assert partial.interrupted

        resumed = run_figure3(datasets, settings, targets=("PM",),
                              checkpoint_path=path, resume=True)
        assert _front(resumed.results["PM"]) == \
            _front(reference.results["PM"])


def _kill_mid_save_child(path):
    from repro.core import faults as child_faults
    child_faults.install("store.kill-mid-save")
    RunCheckpointStore(path).save_state("s", {"version": 2})


def _kill_mid_column_save_child(path):
    from repro.core import faults as child_faults
    from repro.core.cache_store import ColumnCacheStore
    from repro.core.evaluation import BasisColumnCache
    child_faults.install("store.kill-mid-save")
    ColumnCacheStore(path).save(BasisColumnCache(4))


def _lock_holder_child(path):
    lock = FileLock(path, timeout=5.0)
    lock.acquire()
    os.kill(os.getpid(), signal.SIGKILL)


class TestCrashDurability:
    def test_sigkill_mid_save_keeps_previous_version(self, tmp_path):
        path = tmp_path / "run.ckpt"
        store = RunCheckpointStore(path)
        store.save_state("s", {"version": 1})

        ctx = multiprocessing.get_context("fork")
        child = ctx.Process(target=_kill_mid_save_child, args=(path,))
        child.start()
        child.join(30)
        assert child.exitcode == -signal.SIGKILL

        # The kill landed between writing the temp file and os.replace:
        # the store still reads the previous version, with no warning.
        import warnings as warnings_module
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            assert RunCheckpointStore(path).load_state("s") == {"version": 1}

    def test_sigkill_mid_column_cache_save_keeps_previous(self, tmp_path):
        from repro.core.cache_store import ColumnCacheStore
        from repro.core.evaluation import BasisColumnCache

        path = tmp_path / "columns.cache"
        ColumnCacheStore(path).save(BasisColumnCache(4))
        before = path.read_bytes()

        ctx = multiprocessing.get_context("fork")
        child = ctx.Process(target=_kill_mid_column_save_child, args=(path,))
        child.start()
        child.join(30)
        assert child.exitcode == -signal.SIGKILL
        assert path.read_bytes() == before  # atomic replace never ran

        import warnings as warnings_module
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            ColumnCacheStore(path).load()

    def test_lock_released_when_holder_dies(self, tmp_path):
        path = tmp_path / "x.lock"
        ctx = multiprocessing.get_context("fork")
        child = ctx.Process(target=_lock_holder_child, args=(path,))
        child.start()
        child.join(30)
        assert child.exitcode == -signal.SIGKILL

        # flock dies with its process: the next writer proceeds instead of
        # deadlocking on a lock no one will ever release.
        survivor = FileLock(path, timeout=2.0, poll_interval=0.01)
        survivor.acquire()
        survivor.release()


class TestFileLock:
    def test_timeout_message_reports_effective_budget(self, tmp_path):
        path = tmp_path / "x.lock"
        holder = FileLock(path, timeout=5.0)
        holder.acquire()
        try:
            waiter = FileLock(path, timeout=0.2, poll_interval=0.01)
            with pytest.raises(TimeoutError,
                               match=r"of a 0\.2 s budget"):
                waiter.acquire()
        finally:
            holder.release()

    def test_lock_timeout_fault_point(self, tmp_path):
        faults.install("lock.timeout")
        lock = FileLock(tmp_path / "x.lock", timeout=5.0)
        with pytest.raises(TimeoutError, match="injected timeout"):
            lock.acquire()
        lock.acquire()  # fault budget spent: normal operation resumes
        lock.release()
